"""Wire protocol: message encoding, compression, delta encoding.

Payload sizes are what the mobile experiments measure, so this module
does real work: payloads are serialised to canonical JSON and (by
default) zlib-compressed — the byte counts the network model charges
are the actual compressed sizes, not estimates.

Delta encoding is the protocol-level "novel mechanism": when the client
already holds a payload, the server ships only the difference (added /
removed / changed keys), which for small viewport moves is a fraction
of a full render.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any

from repro.errors import MobileError

#: Marker distinguishing full payloads from deltas on the wire.
KIND_FULL = "full"
KIND_DELTA = "delta"


def encode_payload(payload: dict[str, Any],
                   compress: bool = True) -> bytes:
    """Serialise a payload to wire bytes (canonical JSON, optional zlib)."""
    try:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise MobileError(f"payload is not JSON-serialisable: {exc}") \
            from None
    raw = text.encode("utf-8")
    return zlib.compress(raw, level=6) if compress else raw


def decode_payload(data: bytes, compressed: bool = True) -> dict[str, Any]:
    """Inverse of :func:`encode_payload`."""
    try:
        raw = zlib.decompress(data) if compressed else data
        payload = json.loads(raw.decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MobileError(f"bad wire payload: {exc}") from None
    if not isinstance(payload, dict):
        raise MobileError("wire payload must be a JSON object")
    return payload


@dataclass(frozen=True)
class Message:
    """One framed server→client message."""

    kind: str  # KIND_FULL | KIND_DELTA
    data: bytes
    compressed: bool = True

    def __post_init__(self) -> None:
        if self.kind not in (KIND_FULL, KIND_DELTA):
            raise MobileError(f"unknown message kind {self.kind!r}")

    @property
    def wire_bytes(self) -> int:
        # kind marker + 4-byte length frame + body
        return len(self.data) + 5

    def payload(self) -> dict[str, Any]:
        return decode_payload(self.data, self.compressed)


def full_message(payload: dict[str, Any],
                 compress: bool = True) -> Message:
    return Message(KIND_FULL, encode_payload(payload, compress), compress)


def delta_message(previous: dict[str, Any], current: dict[str, Any],
                  compress: bool = True) -> Message:
    """Encode *current* as a delta against *previous*."""
    delta = compute_delta(previous, current)
    return Message(KIND_DELTA, encode_payload(delta, compress), compress)


def compute_delta(previous: dict[str, Any],
                  current: dict[str, Any]) -> dict[str, Any]:
    """Key-level difference between two payload dicts.

    Nested dicts one level deep (e.g. ``nodes`` keyed by node id) are
    diffed per entry, which is where viewport moves save their bytes.
    """
    delta: dict[str, Any] = {"set": {}, "drop": []}
    for key, value in current.items():
        if key not in previous:
            delta["set"][key] = value
            continue
        old = previous[key]
        if old == value:
            continue
        if isinstance(old, dict) and isinstance(value, dict):
            inner_set = {
                inner_key: inner_value
                for inner_key, inner_value in value.items()
                if inner_key not in old or old[inner_key] != inner_value
            }
            inner_drop = [k for k in old if k not in value]
            delta["set"][key] = {"__patch__": inner_set,
                                 "__drop__": inner_drop}
        else:
            delta["set"][key] = value
    delta["drop"] = [key for key in previous if key not in current]
    return delta


def apply_delta(previous: dict[str, Any],
                delta: dict[str, Any]) -> dict[str, Any]:
    """Reconstruct the current payload from *previous* and a delta."""
    if "set" not in delta or "drop" not in delta:
        raise MobileError("malformed delta payload")
    current = dict(previous)
    for key in delta["drop"]:
        current.pop(key, None)
    for key, value in delta["set"].items():
        if isinstance(value, dict) and "__patch__" in value:
            base = dict(current.get(key) or {})
            for inner_key in value.get("__drop__", []):
                base.pop(inner_key, None)
            base.update(value["__patch__"])
            current[key] = base
        else:
            current[key] = value
    return current
