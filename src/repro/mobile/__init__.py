"""Mobile interaction substrate: network, protocol, LOD, client/server.

Simulates the "mobile" half of the paper's title: a phone-class client
navigating the DrugTree over 2013-era networks, with level-of-detail
rendering and delta encoding keeping interactions responsive.
"""

from repro.mobile.client import ClientState, Interaction, MobileClient
from repro.mobile.lod import expandable_nodes, render_full, render_viewport
from repro.mobile.network import (
    PROFILES,
    LinkStats,
    NetworkLink,
    NetworkProfile,
    get_profile,
)
from repro.mobile.protocol import (
    KIND_DELTA,
    KIND_FULL,
    Message,
    apply_delta,
    compute_delta,
    decode_payload,
    delta_message,
    encode_payload,
    full_message,
)
from repro.mobile.server import DrugTreeServer, ServerConfig, ServerResponse
from repro.mobile.workload import (
    DEFAULT_TRANSITIONS,
    GESTURES,
    GestureSession,
    plan_session,
    replay_session,
)

__all__ = [
    "DEFAULT_TRANSITIONS",
    "GESTURES",
    "KIND_DELTA",
    "KIND_FULL",
    "PROFILES",
    "ClientState",
    "DrugTreeServer",
    "GestureSession",
    "Interaction",
    "LinkStats",
    "Message",
    "MobileClient",
    "NetworkLink",
    "NetworkProfile",
    "ServerConfig",
    "ServerResponse",
    "apply_delta",
    "compute_delta",
    "decode_payload",
    "delta_message",
    "encode_payload",
    "expandable_nodes",
    "full_message",
    "get_profile",
    "plan_session",
    "render_full",
    "render_viewport",
    "replay_session",
]
