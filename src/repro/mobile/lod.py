"""Level-of-detail tree rendering.

A phone never needs the whole tree: the viewport shows one focus node a
few levels deep. :func:`render_viewport` walks from the focus node down
to ``max_depth``, collapsing everything deeper into *summary nodes*
that carry the materialized clade statistics (leaf count, binding
count, mean/max affinity) — so a collapsed clade is still informative,
just cheap.

:func:`render_full` is the baseline the payload experiment compares
against: the entire tree plus per-leaf binding statistics in one
payload.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.bio.tree import PhyloNode
from repro.core.drugtree import DrugTree
from repro.errors import MobileError


def _node_key(drugtree: DrugTree, node: PhyloNode) -> str:
    """Stable wire identifier: the preorder number of the node."""
    return f"n{drugtree.labeling.label_of_node(node).pre}"


def _find_named(drugtree: DrugTree, name: str) -> PhyloNode:
    for node in drugtree.tree.preorder():
        if node.name == name:
            return node
    raise MobileError(f"no tree node named {name!r}")


def _base_entry(drugtree: DrugTree, node: PhyloNode) -> dict[str, Any]:
    label = drugtree.labeling.label_of_node(node)
    return {
        "name": node.name,
        "branch_length": round(node.branch_length, 6),
        "leaf": node.is_leaf,
        "leaves": label.leaf_count,
        "depth": label.depth,
    }


def _clade_summary(drugtree: DrugTree, node: PhyloNode) -> dict[str, Any]:
    stats = drugtree.clade_aggregates.stats_for(node)
    return {
        "bindings": int(stats["count"]),
        "mean_p_affinity": round(stats["mean"], 3),
        "max_p_affinity": round(stats["max"], 3),
        "potent_fraction": round(stats["potent_fraction"], 3),
    }


def render_viewport(drugtree: DrugTree, focus: str,
                    max_depth: int = 3,
                    max_nodes: int = 200) -> dict[str, Any]:
    """Render the subtree under *focus* to a bounded LOD payload.

    Children beyond *max_depth* (or once *max_nodes* is reached) become
    collapsed summary nodes with clade statistics; expanded leaves get
    their binding statistics inline.
    """
    if max_depth < 0:
        raise MobileError("max_depth must be non-negative")
    if max_nodes < 1:
        raise MobileError("max_nodes must be positive")
    focus_node = _find_named(drugtree, focus)
    nodes: dict[str, Any] = {}
    edges: list[tuple[str, str]] = []
    queue: deque[tuple[PhyloNode, int]] = deque([(focus_node, 0)])
    while queue:
        node, depth = queue.popleft()
        key = _node_key(drugtree, node)
        entry = _base_entry(drugtree, node)
        collapse = (
            not node.is_leaf
            and (depth >= max_depth or len(nodes) >= max_nodes)
        )
        if collapse:
            entry["collapsed"] = True
            entry["summary"] = _clade_summary(drugtree, node)
        else:
            entry["collapsed"] = False
            if node.is_leaf:
                entry["summary"] = _clade_summary(drugtree, node)
            for child in node.children:
                edges.append((key, _node_key(drugtree, child)))
                queue.append((child, depth + 1))
        nodes[key] = entry
    return {
        "focus": focus,
        "mode": "lod",
        "nodes": nodes,
        "edges": [list(edge) for edge in edges],
    }


def render_full(drugtree: DrugTree,
                include_bindings: bool = True) -> dict[str, Any]:
    """Render the whole tree (the no-LOD baseline payload)."""
    nodes: dict[str, Any] = {}
    edges: list[tuple[str, str]] = []
    for node in drugtree.tree.preorder():
        key = _node_key(drugtree, node)
        entry = _base_entry(drugtree, node)
        entry["collapsed"] = False
        if include_bindings and node.is_leaf:
            entry["summary"] = _clade_summary(drugtree, node)
            entry["bindings"] = [
                {
                    "ligand_id": row["ligand_id"],
                    "p_affinity": round(row["p_affinity"], 3),
                    "activity_type": row["activity_type"],
                }
                for row in drugtree.bindings_for_protein(node.name)
            ]
        for child in node.children:
            edges.append((key, _node_key(drugtree, child)))
        nodes[key] = entry
    return {
        "focus": drugtree.tree.root.name or "root",
        "mode": "full",
        "nodes": nodes,
        "edges": [list(edge) for edge in edges],
    }


def expandable_nodes(payload: dict[str, Any]) -> list[str]:
    """Names of collapsed nodes in a payload (the tap targets)."""
    return [
        entry["name"]
        for entry in payload.get("nodes", {}).values()
        if entry.get("collapsed") and entry.get("name")
    ]
