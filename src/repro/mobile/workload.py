"""Gesture workloads: how a scientist actually drives the tree.

A first-order Markov model over gesture kinds generates realistic
navigation sessions: mostly drill-downs into collapsed clades, some
pans between siblings, occasional clade queries. Replaying a gesture
session against a client produces the latency distributions experiment
E5 reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import MobileError
from repro.mobile.client import Interaction, MobileClient
from repro.mobile.lod import expandable_nodes

#: Gesture kinds and the default Markov transition rows.
GESTURES = ("expand", "pan", "query")

DEFAULT_TRANSITIONS: dict[str, dict[str, float]] = {
    "start": {"expand": 0.7, "pan": 0.2, "query": 0.1},
    "expand": {"expand": 0.6, "pan": 0.2, "query": 0.2},
    "pan": {"expand": 0.5, "pan": 0.3, "query": 0.2},
    "query": {"expand": 0.6, "pan": 0.3, "query": 0.1},
}


@dataclass(frozen=True)
class GestureSession:
    """A planned sequence of gesture kinds (targets resolved live)."""

    kinds: tuple[str, ...]
    seed: int


def plan_session(steps: int, seed: int = 0,
                 transitions: dict[str, dict[str, float]] | None = None,
                 ) -> GestureSession:
    """Draw a gesture-kind sequence from the Markov model."""
    if steps < 1:
        raise MobileError("session needs at least one step")
    table = transitions or DEFAULT_TRANSITIONS
    rng = random.Random(seed)
    state = "start"
    kinds: list[str] = []
    for _ in range(steps):
        row = table.get(state) or table["start"]
        choices, weights = zip(*row.items())
        state = rng.choices(choices, weights=weights, k=1)[0]
        kinds.append(state)
    return GestureSession(tuple(kinds), seed)


def replay_session(client: MobileClient, session: GestureSession,
                   clade_names: list[str]) -> list[Interaction]:
    """Execute a planned session against a live client.

    Targets are resolved from the client's *current* view: expands pick
    a collapsed node on screen, pans pick any named node, queries ask
    for the focused clade's strong binders. Falls back gracefully when
    a gesture has no valid target (e.g. nothing left to expand).
    """
    if not clade_names:
        raise MobileError("need clade names for gesture targets")
    rng = random.Random(session.seed + 1)
    interactions: list[Interaction] = []
    for kind in session.kinds:
        if kind == "expand":
            targets = expandable_nodes(client.state.payload)
            if not targets:
                kind = "pan"  # nothing collapsed: degrade to a pan
        if kind == "expand":
            interactions.append(client.tap_expand(rng.choice(targets)))
        elif kind == "pan":
            interactions.append(client.pan_to(rng.choice(clade_names)))
        else:
            clade = rng.choice(clade_names)
            threshold = round(rng.uniform(5.0, 7.5), 1)
            dtql = (
                "SELECT count(*), mean(p_affinity), max(p_affinity) "
                f"IN SUBTREE '{clade}'"
            )
            if rng.random() < 0.5:
                dtql = (
                    "SELECT ligand_id, p_affinity FROM bindings "
                    f"WHERE p_affinity >= {threshold} "
                    f"IN SUBTREE '{clade}' "
                    "ORDER BY p_affinity DESC LIMIT 10"
                )
            interactions.append(client.run_query(dtql))
    return interactions
