"""The simulated mobile client.

A :class:`MobileClient` talks to a :class:`DrugTreeServer` over a
:class:`~repro.mobile.network.NetworkLink`. Every gesture becomes one
request/response exchange whose *experienced latency* is the sum of

* the network transfer (virtual seconds, from the link model), and
* the server compute (real wall seconds).

The client maintains its local payload state by applying deltas, and
verifies it can actually decode what it received — the protocol tests
ride on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import MobileError
from repro.mobile.network import NetworkLink
from repro.mobile.protocol import KIND_DELTA, apply_delta
from repro.mobile.server import DrugTreeServer, ServerResponse

#: Approximate uplink size of one gesture request (JSON command).
REQUEST_BYTES = 160


@dataclass
class Interaction:
    """One completed client gesture and its cost breakdown."""

    kind: str
    target: str
    bytes_down: int
    network_s: float
    server_wall_s: float
    rows: int = 0

    @property
    def experienced_latency_s(self) -> float:
        """What the user waits: transfer plus server compute."""
        return self.network_s + self.server_wall_s


@dataclass
class ClientState:
    """The client's reconstructed view of the server payload."""

    payload: dict[str, Any] = field(default_factory=dict)


class MobileClient:
    """A phone-side session over a simulated link."""

    def __init__(self, server: DrugTreeServer, link: NetworkLink) -> None:
        self.server = server
        self.link = link
        self.state = ClientState()
        self.interactions: list[Interaction] = []
        self.session_id, response = server.open_session()
        self._receive("open", "root", response)

    # -- gestures ---------------------------------------------------------------

    def tap_expand(self, node_name: str) -> Interaction:
        """Tap a collapsed clade to focus and expand it."""
        response = self.server.navigate(self.session_id, node_name)
        return self._receive("expand", node_name, response)

    def pan_to(self, node_name: str) -> Interaction:
        """Pan the viewport to a (sibling/ancestor) node."""
        response = self.server.navigate(self.session_id, node_name)
        return self._receive("pan", node_name, response)

    def run_query(self, dtql: str) -> Interaction:
        """Issue a DTQL query from the device."""
        response = self.server.query(self.session_id, dtql)
        return self._receive("query", dtql[:40], response,
                             is_view=False)

    def search_sequence(self, residues: str,
                        top_k: int = 5) -> Interaction:
        """Paste a sequence and ask where it belongs in the tree."""
        response = self.server.search_sequence(self.session_id,
                                               residues, top_k=top_k)
        return self._receive("sequence_search", residues[:20],
                             response, is_view=False)

    # -- bookkeeping ---------------------------------------------------------------

    def _receive(self, kind: str, target: str,
                 response: ServerResponse,
                 is_view: bool = True) -> Interaction:
        network_s = self.link.exchange(REQUEST_BYTES,
                                       response.message.wire_bytes)
        payload = response.message.payload()
        if is_view:
            if response.message.kind == KIND_DELTA:
                if not self.state.payload:
                    raise MobileError("received a delta with no base state")
                self.state.payload = apply_delta(self.state.payload,
                                                 payload)
            else:
                self.state.payload = payload
        interaction = Interaction(
            kind=kind,
            target=target,
            bytes_down=response.message.wire_bytes,
            network_s=network_s,
            server_wall_s=response.server_wall_s,
            rows=response.payload_rows,
        )
        self.interactions.append(interaction)
        return interaction

    # -- reporting -------------------------------------------------------------------

    @property
    def total_bytes_down(self) -> int:
        return sum(i.bytes_down for i in self.interactions)

    @property
    def total_experienced_latency_s(self) -> float:
        return sum(i.experienced_latency_s for i in self.interactions)

    def latencies(self) -> list[float]:
        return [i.experienced_latency_s for i in self.interactions]

    def visible_nodes(self) -> dict[str, Any]:
        return dict(self.state.payload.get("nodes", {}))
