"""Mobile network models (2013-era profiles).

A :class:`NetworkLink` charges virtual time for each request/response
exchange: one round-trip of latency plus serialisation time at the
profile's bandwidth, inflated by packet loss (lost packets are
retransmitted, costing extra round trips). Everything is charged to the
shared :class:`~repro.sources.clock.SimulatedClock`, so mobile transfer
time and remote-source latency add up in the same virtual timeline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import MobileError
from repro.sources.clock import SimulatedClock

#: Path MTU used for loss-inflation accounting.
PACKET_BYTES = 1500


@dataclass(frozen=True)
class NetworkProfile:
    """Bandwidth/latency/loss characteristics of one network class."""

    name: str
    downlink_bps: float
    uplink_bps: float
    rtt_s: float
    loss_rate: float = 0.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise MobileError("bandwidth must be positive")
        if self.rtt_s < 0:
            raise MobileError("RTT must be non-negative")
        if not 0.0 <= self.loss_rate < 0.5:
            raise MobileError("loss rate must be in [0, 0.5)")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise MobileError("jitter fraction must be in [0, 1)")


#: The network classes a 2013 mobile deployment saw in the field.
PROFILES: dict[str, NetworkProfile] = {
    "edge": NetworkProfile("edge", downlink_bps=120_000,
                           uplink_bps=60_000, rtt_s=0.60,
                           loss_rate=0.02),
    "3g": NetworkProfile("3g", downlink_bps=1_000_000,
                         uplink_bps=300_000, rtt_s=0.30,
                         loss_rate=0.01),
    "hspa": NetworkProfile("hspa", downlink_bps=4_000_000,
                           uplink_bps=1_000_000, rtt_s=0.15,
                           loss_rate=0.005),
    "lte": NetworkProfile("lte", downlink_bps=12_000_000,
                          uplink_bps=5_000_000, rtt_s=0.07,
                          loss_rate=0.002),
    "wifi": NetworkProfile("wifi", downlink_bps=20_000_000,
                           uplink_bps=8_000_000, rtt_s=0.03,
                           loss_rate=0.001),
}


def get_profile(name: str) -> NetworkProfile:
    try:
        return PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise MobileError(
            f"unknown network profile {name!r} (known: {known})"
        ) from None


@dataclass
class LinkStats:
    """Traffic meter of one link."""

    requests: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    transfer_time_s: float = 0.0
    retransmitted_packets: int = 0


class NetworkLink:
    """One client's connection, charging virtual time per exchange."""

    def __init__(self, profile: NetworkProfile, clock: SimulatedClock,
                 seed: int = 0) -> None:
        self.profile = profile
        self.clock = clock
        self.stats = LinkStats()
        self._rng = random.Random(seed)

    def exchange(self, request_bytes: int, response_bytes: int) -> float:
        """Charge one request/response exchange; returns seconds spent."""
        if request_bytes < 0 or response_bytes < 0:
            raise MobileError("byte counts must be non-negative")
        elapsed = self.profile.rtt_s
        elapsed += self._serialize(request_bytes, self.profile.uplink_bps)
        elapsed += self._serialize(response_bytes,
                                   self.profile.downlink_bps)
        elapsed += self._loss_inflation(request_bytes + response_bytes)
        if self.profile.jitter_fraction:
            spread = elapsed * self.profile.jitter_fraction
            elapsed = max(0.0, elapsed
                          + self._rng.uniform(-spread, spread))
        self.clock.advance(elapsed)
        self.stats.requests += 1
        self.stats.bytes_up += request_bytes
        self.stats.bytes_down += response_bytes
        self.stats.transfer_time_s += elapsed
        return elapsed

    @staticmethod
    def _serialize(byte_count: int, bandwidth_bps: float) -> float:
        return byte_count * 8.0 / bandwidth_bps

    def _loss_inflation(self, byte_count: int) -> float:
        """Extra time from retransmitting lost packets.

        Each lost packet costs one extra RTT (its retransmission rides
        the recovery round-trip); losses are drawn per packet.
        """
        if self.profile.loss_rate <= 0 or byte_count == 0:
            return 0.0
        packets = max(1, math.ceil(byte_count / PACKET_BYTES))
        lost = sum(
            self._rng.random() < self.profile.loss_rate
            for _ in range(packets)
        )
        self.stats.retransmitted_packets += lost
        return lost * self.profile.rtt_s
