"""Embedded storage layer: tables, indexes, statistics, matviews.

The integrator lands federated records in these tables; the query
optimizer plans against their indexes and statistics.
"""

from repro.storage.columnar import ColumnStore
from repro.storage.durable import (
    Database,
    DurableTableAdapter,
    StorageConfig,
)
from repro.storage.index import HashIndex, Index, SortedIndex
from repro.storage.matview import AGGREGATES, MaterializedAggregate
from repro.storage.schema import (
    Column,
    ColumnType,
    Schema,
    bool_column,
    float_column,
    int_column,
    string_column,
)
from repro.storage.statistics import (
    ColumnStatistics,
    Histogram,
    TableStatistics,
    analyze,
)
from repro.storage.table import Table

__all__ = [
    "AGGREGATES",
    "Column",
    "ColumnStatistics",
    "ColumnStore",
    "ColumnType",
    "Database",
    "DurableTableAdapter",
    "HashIndex",
    "Histogram",
    "Index",
    "MaterializedAggregate",
    "Schema",
    "SortedIndex",
    "StorageConfig",
    "Table",
    "TableStatistics",
    "analyze",
    "bool_column",
    "float_column",
    "int_column",
    "string_column",
]
