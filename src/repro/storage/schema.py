"""Typed table schemas for the embedded store.

The integrator lands federated records in local tables; a
:class:`Schema` gives every table a fixed, typed column layout so the
query layer can plan against column positions instead of dict lookups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"

    def accepts(self, value: Any) -> bool:
        if value is None:
            return True  # nullability checked separately
        if self is ColumnType.STRING:
            return isinstance(value, str)
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return (isinstance(value, float)
                    or (isinstance(value, int)
                        and not isinstance(value, bool)))
        return isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        """Normalise accepted values (ints become floats in FLOAT cols)."""
        if value is None:
            return None
        if self is ColumnType.FLOAT and isinstance(value, int):
            return float(value)
        return value


@dataclass(frozen=True)
class Column:
    """One column of a schema."""

    name: str
    type: ColumnType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"bad column name {self.name!r}")


class Schema:
    """An ordered, named set of typed columns."""

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise SchemaError("schema needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names")
        self.columns = tuple(columns)
        self._index = {column.name: i for i, column in enumerate(columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of the named column; raises SchemaError if unknown."""
        try:
            return self._index[name]
        except KeyError:
            known = ", ".join(self.column_names)
            raise SchemaError(
                f"unknown column {name!r} (columns: {known})"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def validate_row(self, values: dict[str, Any]) -> tuple[Any, ...]:
        """Check *values* against the schema, returning an ordered tuple.

        Unknown keys, missing non-nullable columns, and type mismatches
        all raise :class:`~repro.errors.SchemaError`.
        """
        unknown = set(values) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        row: list[Any] = []
        for column in self.columns:
            value = values.get(column.name)
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"column {column.name!r} is not nullable"
                    )
                row.append(None)
                continue
            if not column.type.accepts(value):
                raise SchemaError(
                    f"column {column.name!r} expects {column.type.value}, "
                    f"got {type(value).__name__} ({value!r})"
                )
            row.append(column.type.coerce(value))
        return tuple(row)

    def row_as_dict(self, row: tuple[Any, ...]) -> dict[str, Any]:
        return dict(zip(self.column_names, row))

    def project(self, names: list[str]) -> "Schema":
        """A new schema keeping only *names*, in the given order."""
        return Schema([self.column(name) for name in names])

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{column.name}:{column.type.value}" for column in self.columns
        )
        return f"Schema({cols})"


def string_column(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.STRING, nullable)


def int_column(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.INT, nullable)


def float_column(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.FLOAT, nullable)


def bool_column(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.BOOL, nullable)
