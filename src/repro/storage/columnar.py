"""Columnar projection of a row-store table.

A :class:`ColumnStore` mirrors one :class:`~repro.storage.table.Table`
as dense per-column Python lists, kept in sync through the table's
insert/delete change listeners — the same contract secondary indexes
and materialized views already use, so the row store stays the single
source of truth and E10's write-amplification accounting extends to it
naturally (every insert now also appends one value per column).

Layout
------
All columns share one positional axis: position ``p`` of every column
buffer holds the values of the same row, whose row id is
``row_ids[p]``. Buffers are append-only; a delete marks the position in
a tombstone set instead of shifting the arrays, which keeps live
positions in *insertion order* — the exact order ``Table.scan_rows``
yields — so the vectorized engine emits rows in the same order as the
row engine. When tombstones pile past :attr:`compact_threshold`, the
buffers are rebuilt dense in one pass.

Numeric columns (int/float/bool) could use ``array.array``; Python
lists are used uniformly because overlay columns are nullable (NULL is
``None``) and mixed-width, and because gathers (``buffer[p]``) cost the
same either way in CPython.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.table import Table


class ColumnStore:
    """Per-column buffers over one table, listener-maintained."""

    #: Compact once tombstones exceed this count *and* half the buffer.
    MIN_COMPACT_TOMBSTONES = 64

    def __init__(self, table: "Table") -> None:
        self.table = table
        self.column_names: tuple[str, ...] = tuple(
            table.schema.column_names
        )
        self._positions = tuple(range(len(self.column_names)))
        self._columns: dict[str, list[Any]] = {}
        self._row_ids: list[int] = []
        self._position_of: dict[int, int] = {}
        self._dead: set[int] = set()
        # Maintenance accounting (surfaced by docs/VECTORIZED.md tests).
        self.appends = 0
        self.tombstones = 0
        self.compactions = 0
        self._rebuild()
        table.add_insert_listener(self._on_insert)
        table.add_delete_listener(self._on_delete)

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        """Live row count."""
        return len(self._row_ids) - len(self._dead)

    @property
    def buffer_length(self) -> int:
        """Physical buffer length, tombstones included."""
        return len(self._row_ids)

    def column(self, name: str) -> list[Any]:
        """The raw buffer of one column (positions may be dead)."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.table.name!r} has no column {name!r}"
            ) from None

    def live_positions(self) -> range | list[int]:
        """Live buffer positions in insertion order.

        Dense stores answer with a ``range`` so iteration costs no
        allocation; tombstoned stores filter once.
        """
        if not self._dead:
            return range(len(self._row_ids))
        dead = self._dead
        return [p for p in range(len(self._row_ids)) if p not in dead]

    def position_of(self, row_id: int) -> int:
        """Buffer position of a live row id."""
        try:
            return self._position_of[row_id]
        except KeyError:
            raise StorageError(
                f"table {self.table.name!r}: no live row {row_id} in "
                "column store"
            ) from None

    def positions_in_row_id_ranges(
        self, intervals: list[tuple[int, int]],
    ) -> list[int]:
        """Live positions whose row ids fall inside any interval.

        *intervals* are inclusive ``(low, high)`` row-id ranges — the
        durable engine's non-pruned segment intervals plus the
        memtable's. Relies on ``_row_ids`` being ascending, which holds
        for append-only tables whose ids are assigned monotonically
        (true for every overlay table: inserts take increasing ids,
        recovery replays in id order, deletes only tombstone). Ranges
        are merged and walked in ascending order, so the result keeps
        insertion order — the order scans must emit.
        """
        row_ids = self._row_ids
        dead = self._dead
        positions: list[int] = []
        previous_end = 0
        for low, high in sorted(intervals):
            start = bisect_left(row_ids, low)
            end = bisect_right(row_ids, high)
            start = max(start, previous_end)  # overlapping ranges
            if end <= start:
                continue
            previous_end = end
            if dead:
                positions.extend(p for p in range(start, end)
                                 if p not in dead)
            else:
                positions.extend(range(start, end))
        return positions

    def gather(self, name: str, positions: list[int]) -> list[Any]:
        buffer = self.column(name)
        return [buffer[p] for p in positions]

    def row_at(self, position: int) -> dict[str, Any]:
        return {name: self._columns[name][position]
                for name in self.column_names}

    # -- maintenance -------------------------------------------------------

    @property
    def compact_threshold(self) -> int:
        return max(self.MIN_COMPACT_TOMBSTONES, len(self._row_ids) // 2)

    def _on_insert(self, row_id: int, row: tuple[Any, ...]) -> None:
        position = len(self._row_ids)
        self._row_ids.append(row_id)
        self._position_of[row_id] = position
        for name, value_index in zip(self.column_names, self._positions):
            self._columns[name].append(row[value_index])
        self.appends += 1

    def _on_delete(self, row_id: int, row: tuple[Any, ...]) -> None:
        position = self._position_of.pop(row_id, None)
        if position is None:
            return  # never materialized here; nothing to tombstone
        self._dead.add(position)
        self.tombstones += 1
        if len(self._dead) > self.compact_threshold:
            self.compact()

    def compact(self) -> None:
        """Rebuild dense buffers, dropping tombstones, keeping order."""
        if not self._dead:
            return
        dead = self._dead
        keep = [p for p in range(len(self._row_ids)) if p not in dead]
        for name in self.column_names:
            buffer = self._columns[name]
            self._columns[name] = [buffer[p] for p in keep]
        self._row_ids = [self._row_ids[p] for p in keep]
        self._position_of = {
            row_id: position
            for position, row_id in enumerate(self._row_ids)
        }
        self._dead = set()
        self.compactions += 1

    def _rebuild(self) -> None:
        """Backfill from the row store (construction or repair)."""
        self._columns = {name: [] for name in self.column_names}
        self._row_ids = []
        self._position_of = {}
        self._dead = set()
        for row_id, row in self.table.scan():
            position = len(self._row_ids)
            self._row_ids.append(row_id)
            self._position_of[row_id] = position
            for name, value_index in zip(self.column_names,
                                         self._positions):
                self._columns[name].append(row[value_index])

    def verify_against_rows(self) -> bool:
        """True when every live position mirrors the row store.

        A consistency probe for tests; the listeners keep this
        invariant without it.
        """
        live = [self._row_ids[p] for p in self.live_positions()]
        if live != [row_id for row_id, _ in self.table.scan()]:
            return False
        for row_id, row in self.table.scan():
            position = self._position_of[row_id]
            for name, value_index in zip(self.column_names,
                                         self._positions):
                if self._columns[name][position] != row[value_index]:
                    return False
        return True

    def chunks(self, batch_size: int) -> Iterator[list[int]]:
        """Live positions in insertion order, *batch_size* at a time."""
        positions = self.live_positions()
        for start in range(0, len(positions), batch_size):
            chunk = positions[start:start + batch_size]
            yield chunk if isinstance(chunk, list) else list(chunk)

    def __repr__(self) -> str:
        return (
            f"ColumnStore({self.table.name!r}, live={len(self)}, "
            f"tombstones={len(self._dead)})"
        )
