"""Table statistics for cardinality estimation.

An ``ANALYZE``-style pass over a table collects per-column row counts,
distinct-value counts, min/max, most-common values and an equi-depth
histogram. The optimizer's cardinality estimator
(:mod:`repro.core.query.cards`) consumes these to choose access paths
and join orders.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StorageError
from repro.storage.table import Table

DEFAULT_HISTOGRAM_BUCKETS = 64
DEFAULT_MCV_COUNT = 12


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over a numeric column.

    ``bounds`` are the bucket upper edges (ascending); each bucket holds
    roughly the same number of rows.
    """

    bounds: tuple[float, ...]
    total: int

    def selectivity_below(self, value: float,
                          inclusive: bool = True) -> float:
        """Estimated fraction of rows with column <= value (or <)."""
        if not self.bounds or self.total == 0:
            return 0.5
        if inclusive:
            position = bisect.bisect_right(self.bounds, value)
        else:
            position = bisect.bisect_left(self.bounds, value)
        return min(1.0, position / len(self.bounds))

    def selectivity_range(self, low: float | None, high: float | None,
                          include_low: bool = True,
                          include_high: bool = True) -> float:
        upper = (self.selectivity_below(high, include_high)
                 if high is not None else 1.0)
        lower = (self.selectivity_below(low, not include_low)
                 if low is not None else 0.0)
        return max(0.0, upper - lower)


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics of one column."""

    name: str
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    most_common: tuple[tuple[Any, int], ...] = field(default_factory=tuple)
    histogram: Histogram | None = None

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def equality_selectivity(self, value: Any) -> float:
        """Estimated fraction of rows equal to *value*."""
        if self.row_count == 0:
            return 0.0
        for candidate, count in self.most_common:
            if candidate == value:
                return count / self.row_count
        if self.distinct_count <= 0:
            return 1.0 / self.row_count
        # Mass not covered by the MCV list, spread over remaining values.
        mcv_rows = sum(count for _, count in self.most_common)
        remaining_rows = max(self.row_count - self.null_count - mcv_rows, 0)
        remaining_values = max(self.distinct_count - len(self.most_common), 1)
        return max(remaining_rows / remaining_values / self.row_count,
                   1.0 / (10 * max(self.row_count, 1)))

    def range_selectivity(self, low: Any = None, high: Any = None,
                          include_low: bool = True,
                          include_high: bool = True) -> float:
        if self.histogram is not None:
            return self.histogram.selectivity_range(
                low, high, include_low, include_high,
            )
        # No histogram (non-numeric column): fall back to a fixed guess.
        return 0.33


@dataclass(frozen=True)
class TableStatistics:
    """Statistics of a whole table, keyed by column name."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(
                f"no statistics for column {name!r} of "
                f"table {self.table_name!r}"
            ) from None


def analyze(table: Table,
            histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
            mcv_count: int = DEFAULT_MCV_COUNT) -> TableStatistics:
    """Collect statistics for every column of *table*."""
    if histogram_buckets < 1:
        raise StorageError("need at least one histogram bucket")
    row_count = table.row_count
    columns: dict[str, ColumnStatistics] = {}
    for position, column in enumerate(table.schema.columns):
        values = [row[position] for row in table.scan_rows()]
        non_null = [value for value in values if value is not None]
        counts: dict[Any, int] = {}
        for value in non_null:
            counts[value] = counts.get(value, 0) + 1
        most_common = tuple(sorted(
            counts.items(), key=lambda item: (-item[1], str(item[0])),
        )[:mcv_count])
        histogram = None
        numeric = non_null and all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in non_null
        )
        if numeric:
            histogram = _equi_depth(sorted(non_null), histogram_buckets)
        columns[column.name] = ColumnStatistics(
            name=column.name,
            row_count=row_count,
            null_count=row_count - len(non_null),
            distinct_count=len(counts),
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            most_common=most_common,
            histogram=histogram,
        )
    return TableStatistics(table.name, row_count, columns)


def _equi_depth(sorted_values: list[float], buckets: int) -> Histogram:
    total = len(sorted_values)
    if total == 0:
        return Histogram((), 0)
    buckets = min(buckets, total)
    bounds = []
    for bucket in range(1, buckets + 1):
        position = min(total - 1, round(bucket * total / buckets) - 1)
        bounds.append(float(sorted_values[position]))
    return Histogram(tuple(bounds), total)
