"""Row-store tables with index maintenance and change listeners.

Tables hold tuples in schema order under integer row ids. Secondary
indexes and materialized views register as listeners and are maintained
synchronously on every insert/delete — the behaviour the ablation
experiment (E2) toggles.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError
from repro.storage.index import HashIndex, Index, SortedIndex
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.durable.db import DurableTableAdapter

#: Change listeners receive (row_id, row_tuple).
ChangeListener = Callable[[int, tuple[Any, ...]], None]


class Table:
    """An in-memory row store with typed schema and secondary indexes.

    With a :class:`~repro.storage.durable.db.DurableTableAdapter`
    attached, every mutation is logged to the write-ahead log *before*
    it touches the in-memory state — so what recovery replays is
    exactly what the listeners saw. Without one (the default), nothing
    changes: the table is purely in-memory, as before.
    """

    def __init__(self, name: str, schema: Schema,
                 durable: "DurableTableAdapter | None" = None) -> None:
        if not name:
            raise StorageError("table needs a name")
        self.name = name
        self.schema = schema
        self.durable = durable
        self._rows: dict[int, tuple[Any, ...]] = {}
        self._next_row_id = 0
        self._indexes: dict[str, Index] = {}
        self._on_insert: list[ChangeListener] = []
        self._on_delete: list[ChangeListener] = []
        self._column_store = None

    # -- rows -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def insert(self, values: dict[str, Any]) -> int:
        """Validate and insert one row; returns its row id.

        In durable mode the row hits the WAL before any in-memory
        structure: a crash between the two leaves the committed (WAL)
        state a superset of memory, never the reverse, and recovery
        replays the difference.
        """
        row = self.schema.validate_row(values)
        row_id = self._next_row_id
        if self.durable is not None:
            self.durable.log_insert(row_id, row)
        self._next_row_id = row_id + 1
        self._rows[row_id] = row
        for index in self._indexes.values():
            index.insert(self._key_for(index, row), row_id)
        for listener in self._on_insert:
            listener(row_id, row)
        return row_id

    def insert_many(self, rows: list[dict[str, Any]]) -> list[int]:
        return [self.insert(values) for values in rows]

    def delete(self, row_id: int) -> None:
        row = self._rows.get(row_id)
        if row is None:
            raise StorageError(
                f"table {self.name!r}: no row {row_id}"
            )
        if self.durable is not None:
            self.durable.log_delete(row_id, self._next_row_id)
        del self._rows[row_id]
        for index in self._indexes.values():
            index.delete(self._key_for(index, row), row_id)
        for listener in self._on_delete:
            listener(row_id, row)

    def restore_row(self, row_id: int, row: tuple[Any, ...]) -> None:
        """Re-apply one recovered row, bypassing the WAL.

        The recovery path's insert: the row was already committed, so
        logging it again would double it. Indexes and listeners fire
        exactly as on a live insert, which is how column stores and
        materialized aggregates rebuild themselves on reopen.
        """
        if row_id in self._rows:
            raise StorageError(
                f"table {self.name!r}: row {row_id} already present"
            )
        self._rows[row_id] = row
        self._next_row_id = max(self._next_row_id, row_id + 1)
        for index in self._indexes.values():
            index.insert(self._key_for(index, row), row_id)
        for listener in self._on_insert:
            listener(row_id, row)

    def bump_next_row_id(self, watermark: int) -> None:
        """Raise the next row id to *watermark* (recovery only).

        Deleting the highest rows and compacting away their tombstones
        would otherwise let a reopened table re-issue their ids.
        """
        self._next_row_id = max(self._next_row_id, watermark)

    def get(self, row_id: int) -> tuple[Any, ...]:
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(
                f"table {self.name!r}: no row {row_id}"
            ) from None

    def get_dict(self, row_id: int) -> dict[str, Any]:
        return self.schema.row_as_dict(self.get(row_id))

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """All (row_id, row) pairs in insertion order."""
        yield from self._rows.items()

    def scan_rows(self) -> Iterator[tuple[Any, ...]]:
        yield from self._rows.values()

    def value(self, row: tuple[Any, ...], column: str) -> Any:
        return row[self.schema.index_of(column)]

    # -- indexes -----------------------------------------------------------

    def create_index(self, column_names: list[str],
                     kind: str = "hash",
                     name: str = "") -> Index:
        """Create and backfill a secondary index.

        *kind* is ``"hash"`` (equality, any number of columns) or
        ``"sorted"`` (single column, supports ranges).
        """
        for column in column_names:
            self.schema.index_of(column)  # validates existence
        index_name = name or f"{self.name}_{'_'.join(column_names)}_{kind}"
        if index_name in self._indexes:
            raise StorageError(f"index {index_name!r} already exists")
        if kind == "hash":
            index: Index = HashIndex(index_name, tuple(column_names))
        elif kind == "sorted":
            if len(column_names) != 1:
                raise StorageError("sorted indexes take exactly one column")
            index = SortedIndex(index_name, tuple(column_names))
        else:
            raise StorageError(f"unknown index kind {kind!r}")
        for row_id, row in self._rows.items():
            index.insert(self._key_for(index, row), row_id)
        self._indexes[index_name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise StorageError(f"no index {name!r} on table {self.name!r}")
        del self._indexes[name]

    def indexes(self) -> dict[str, Index]:
        return dict(self._indexes)

    def index_on(self, column: str,
                 require_range: bool = False) -> Index | None:
        """Best index whose leading column is *column* (or None)."""
        best: Index | None = None
        for index in self._indexes.values():
            if index.column_names[0] != column:
                continue
            if require_range and not index.supports_range:
                continue
            if len(index.column_names) != 1:
                continue
            if best is None or (index.supports_range
                                and not best.supports_range):
                best = index
        return best

    def _key_for(self, index: Index, row: tuple[Any, ...]) -> Any:
        positions = [self.schema.index_of(c) for c in index.column_names]
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    # -- columnar projection ---------------------------------------------------

    def column_store(self):
        """The table's columnar projection, built on first use.

        Lazily constructed (the row engine never pays for it) and then
        listener-maintained like any secondary index; subsequent calls
        return the same instance. Imported here, not at module level,
        because :mod:`repro.storage.columnar` imports this module's
        types for annotation.
        """
        if self._column_store is None:
            from repro.storage.columnar import ColumnStore
            self._column_store = ColumnStore(self)
        return self._column_store

    # -- listeners -----------------------------------------------------------

    def add_insert_listener(self, listener: ChangeListener) -> None:
        self._on_insert.append(listener)

    def add_delete_listener(self, listener: ChangeListener) -> None:
        self._on_delete.append(listener)

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={len(self._rows)}, "
            f"indexes={sorted(self._indexes)})"
        )
