"""Incrementally maintained materialized aggregate views.

One of the paper's "novel mechanisms": per-clade ligand statistics are
kept as a materialized group-by view so clade-aggregate queries read one
row instead of re-aggregating the overlay. The view subscribes to its
base table and folds every insert/delete into the group states; MIN/MAX
deletes that hit the current extremum trigger a per-group recompute.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError
from repro.storage.table import Table

#: Supported aggregate functions.
AGGREGATES = ("count", "sum", "mean", "min", "max")


@dataclass
class _GroupState:
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    min_max_dirty: bool = False


class MaterializedAggregate:
    """A ``SELECT key, AGG(value) ... GROUP BY key`` view.

    Parameters
    ----------
    table:
        Base table to aggregate over.
    key_column:
        Grouping column.
    value_column:
        Column the numeric aggregates apply to; rows with NULL there
        still count toward ``count``.
    predicate:
        Optional row filter (applied to the row dict) restricting which
        base rows enter the view.
    """

    def __init__(self, table: Table, key_column: str, value_column: str,
                 predicate: Callable[[dict[str, Any]], bool] | None = None,
                 ) -> None:
        self.table = table
        self.key_column = key_column
        self.value_column = value_column
        self.predicate = predicate
        self._key_pos = table.schema.index_of(key_column)
        self._value_pos = table.schema.index_of(value_column)
        self._groups: dict[Any, _GroupState] = {}
        self.maintenance_ops = 0
        self.recomputes = 0
        self.refresh()
        table.add_insert_listener(self._on_insert)
        table.add_delete_listener(self._on_delete)

    # -- reads -------------------------------------------------------------

    def groups(self) -> list[Any]:
        return sorted(self._groups, key=str)

    def get(self, key: Any, aggregate: str) -> float | None:
        """Read one aggregate for one group; None for empty groups."""
        if aggregate not in AGGREGATES:
            raise StorageError(
                f"unknown aggregate {aggregate!r} (known: {AGGREGATES})"
            )
        state = self._groups.get(key)
        if state is None or state.count == 0:
            return None
        if aggregate == "count":
            return float(state.count)
        if state.min_max_dirty:
            self._recompute_group(key)
            state = self._groups.get(key)
            if state is None:
                return None
        if aggregate == "sum":
            return state.total
        if aggregate == "mean":
            return state.total / state.count if state.count else None
        if aggregate == "min":
            return state.minimum
        return state.maximum

    def snapshot(self, aggregate: str) -> dict[Any, float]:
        """All groups' values for one aggregate."""
        return {
            key: value
            for key in self.groups()
            if (value := self.get(key, aggregate)) is not None
        }

    # -- maintenance ---------------------------------------------------------

    def refresh(self) -> None:
        """Full recompute from the base table."""
        self._groups = {}
        for _, row in self.table.scan():
            self._apply_insert(row)
        self.recomputes += 1

    def _row_passes(self, row: tuple[Any, ...]) -> bool:
        if self.predicate is None:
            return True
        return self.predicate(self.table.schema.row_as_dict(row))

    def _on_insert(self, row_id: int, row: tuple[Any, ...]) -> None:
        if self._row_passes(row):
            self._apply_insert(row)
            self.maintenance_ops += 1

    def _apply_insert(self, row: tuple[Any, ...]) -> None:
        key = row[self._key_pos]
        value = row[self._value_pos]
        state = self._groups.setdefault(key, _GroupState())
        state.count += 1
        if value is None:
            return
        state.total += value
        if state.minimum is None or value < state.minimum:
            state.minimum = value
        if state.maximum is None or value > state.maximum:
            state.maximum = value

    def _on_delete(self, row_id: int, row: tuple[Any, ...]) -> None:
        if not self._row_passes(row):
            return
        self.maintenance_ops += 1
        key = row[self._key_pos]
        value = row[self._value_pos]
        state = self._groups.get(key)
        if state is None or state.count == 0:
            raise StorageError(
                f"materialized view out of sync for group {key!r}"
            )
        state.count -= 1
        if state.count == 0:
            del self._groups[key]
            return
        if value is None:
            return
        state.total -= value
        # A delete at the extremum invalidates MIN/MAX until recomputed.
        if value == state.minimum or value == state.maximum:
            state.min_max_dirty = True

    def _recompute_group(self, key: Any) -> None:
        """Rebuild one group's state by scanning its base rows."""
        self.recomputes += 1
        fresh = _GroupState()
        for _, row in self.table.scan():
            if row[self._key_pos] != key or not self._row_passes(row):
                continue
            value = row[self._value_pos]
            fresh.count += 1
            if value is None:
                continue
            fresh.total += value
            if fresh.minimum is None or value < fresh.minimum:
                fresh.minimum = value
            if fresh.maximum is None or value > fresh.maximum:
                fresh.maximum = value
        if fresh.count == 0:
            self._groups.pop(key, None)
        else:
            self._groups[key] = fresh
