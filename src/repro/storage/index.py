"""Secondary indexes for the embedded store.

Two access structures cover every plan the optimizer produces:

* :class:`HashIndex` — O(1) equality lookups;
* :class:`SortedIndex` — bisect-backed ordered index supporting range
  scans, which is what makes the tree interval labeling (the paper's
  "novel mechanism") turn subtree queries into cheap range lookups.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import StorageError


class Index(ABC):
    """Maps column value(s) to the set of row ids holding them."""

    def __init__(self, name: str, column_names: tuple[str, ...]) -> None:
        if not column_names:
            raise StorageError("index needs at least one column")
        self.name = name
        self.column_names = column_names

    @abstractmethod
    def insert(self, key: Any, row_id: int) -> None: ...

    @abstractmethod
    def delete(self, key: Any, row_id: int) -> None: ...

    @abstractmethod
    def lookup(self, key: Any) -> list[int]:
        """Row ids with exactly this key."""

    @property
    @abstractmethod
    def supports_range(self) -> bool: ...

    def __repr__(self) -> str:
        cols = ",".join(self.column_names)
        return f"{type(self).__name__}({self.name!r} on {cols})"


class HashIndex(Index):
    """Equality-only index backed by a dict of row-id sets."""

    def __init__(self, name: str, column_names: tuple[str, ...]) -> None:
        super().__init__(name, column_names)
        self._buckets: dict[Any, set[int]] = {}

    @property
    def supports_range(self) -> bool:
        return False

    def insert(self, key: Any, row_id: int) -> None:
        self._buckets.setdefault(key, set()).add(row_id)

    def delete(self, key: Any, row_id: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None or row_id not in bucket:
            raise StorageError(
                f"index {self.name!r}: row {row_id} not found under "
                f"key {key!r}"
            )
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Any) -> list[int]:
        return sorted(self._buckets.get(key, ()))

    def distinct_keys(self) -> int:
        return len(self._buckets)


class SortedIndex(Index):
    """Ordered index over one column supporting range scans.

    Keys must be mutually comparable (the schema's typing guarantees
    that); ``None`` keys are kept aside and only served by equality
    lookups for ``None``.
    """

    def __init__(self, name: str, column_names: tuple[str, ...]) -> None:
        super().__init__(name, column_names)
        if len(column_names) != 1:
            raise StorageError("sorted indexes are single-column")
        self._keys: list[Any] = []
        self._row_ids: list[int] = []
        self._nulls: set[int] = set()

    @property
    def supports_range(self) -> bool:
        return True

    def insert(self, key: Any, row_id: int) -> None:
        if key is None:
            self._nulls.add(row_id)
            return
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def delete(self, key: Any, row_id: int) -> None:
        if key is None:
            if row_id not in self._nulls:
                raise StorageError(
                    f"index {self.name!r}: null row {row_id} not found"
                )
            self._nulls.discard(row_id)
            return
        low = bisect.bisect_left(self._keys, key)
        for position in range(low, len(self._keys)):
            if self._keys[position] != key:
                break
            if self._row_ids[position] == row_id:
                del self._keys[position]
                del self._row_ids[position]
                return
        raise StorageError(
            f"index {self.name!r}: row {row_id} not found under "
            f"key {key!r}"
        )

    def lookup(self, key: Any) -> list[int]:
        if key is None:
            return sorted(self._nulls)
        low = bisect.bisect_left(self._keys, key)
        high = bisect.bisect_right(self._keys, key)
        return sorted(self._row_ids[low:high])

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True,
              include_high: bool = True) -> list[int]:
        """Row ids with key in the given (optionally open) interval."""
        if low is not None and high is not None and low > high:
            return []
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return sorted(self._row_ids[start:stop])

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys) + len(self._nulls)
