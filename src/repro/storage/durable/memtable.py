"""The mutable in-memory head of the LSM tree.

A :class:`MemTable` absorbs every WAL-logged mutation until it grows
past the flush threshold, at which point the database writes its
entries — sorted, tombstones included — into an immutable SSTable and
starts a fresh one. Deletes are recorded as :data:`TOMBSTONE` markers
rather than removals, because the deleted key may live on in an older
segment that only a compaction can forget.
"""

from __future__ import annotations

from typing import Any


class _Tombstone:
    """Sentinel marking a deleted key (singleton :data:`TOMBSTONE`)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOMBSTONE"


#: The delete marker stored in memtables and SSTables.
TOMBSTONE = _Tombstone()


class MemTable:
    """Key → value map with tombstones and approximate byte accounting."""

    def __init__(self) -> None:
        self._entries: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self.bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def put(self, key: str, value: Any, size: int) -> None:
        """Record *value* (or :data:`TOMBSTONE`) under *key*.

        *size* is the encoded payload size the WAL just wrote — close
        enough for the flush threshold without re-serializing here.
        """
        self.bytes += size - self._sizes.get(key, 0)
        self._sizes[key] = size
        self._entries[key] = value

    def get(self, key: str) -> Any:
        """The stored value, :data:`TOMBSTONE`, or ``None`` if absent."""
        return self._entries.get(key)

    def items_sorted(self) -> list[tuple[str, Any]]:
        """Every entry in key order (the flush order)."""
        return sorted(self._entries.items())

    def keys(self):
        return self._entries.keys()

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.bytes = 0
