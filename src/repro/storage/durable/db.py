"""The durable key-value database: WAL + memtable + leveled SSTables.

One :class:`Database` persists every overlay table of a DrugTree under
a single data directory::

    data_dir/
        MANIFEST.json     # the authority: segment list + WAL name
        wal.log           # CRC-framed records since the last flush
        seg-000001.sst    # immutable sorted segments, leveled

Write path: a mutation is framed into the WAL *first* (group commit
and fsync policy per :class:`StorageConfig`), then applied to the
memtable; once the memtable passes ``memtable_flush_bytes`` it is
written as a level-0 SSTable, the manifest is swapped atomically
(``tmp`` + ``os.replace``), and the WAL resets. When a level collects
more than ``level_fanout`` segments, it is merged with the level below
into one new segment; tombstones are garbage-collected only when the
merge lands on the bottom level (below which no older version of any
key can hide).

Recovery (:meth:`Database.open`) is the inverse: read the manifest,
drop orphaned segment files the manifest never adopted (the residue of
a crash mid-flush), replay the WAL — truncating a torn tail — into a
fresh memtable. The committed pre-crash state is restored exactly:
a record is committed once its WAL frame is complete, and nothing else
survives.

Keys are strings. Overlay rows use ``t/<table>/<row_id:012d>`` (zero
padding makes lexicographic order equal numeric row-id order) with the
row tuple JSON-encoded — floats round-trip bit-exactly through
``repr``. ``m/<table>/rowid`` holds the table's next-row-id watermark,
written on delete so tombstone GC can never regress row-id assignment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError
from repro.obs import get_metrics, get_tracer
from repro.storage.durable import failpoints
from repro.storage.durable.memtable import TOMBSTONE, MemTable
from repro.storage.durable.sstable import SSTableReader, write_sstable
from repro.storage.durable.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.columnar import ColumnStore

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"

#: Operators a zone map can refute (NULL never matches any of them).
_ZONE_OPS = frozenset({"=", "<", "<=", ">", ">="})


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the table layer's (opt-in) durable mode."""

    durable: bool = False
    data_dir: str | None = None
    #: WAL sync policy: ``always`` | ``batch`` | ``never``.
    fsync: str = "batch"
    #: Unsynced WAL bytes that trigger a group-commit fsync.
    wal_batch_bytes: int = 64 * 1024
    #: Memtable size that triggers a flush to a level-0 SSTable.
    memtable_flush_bytes: int = 256 * 1024
    #: SSTable block-index granularity.
    block_bytes: int = 4096
    #: Segments a level tolerates before compacting into the next.
    level_fanout: int = 4

    def __post_init__(self) -> None:
        if self.fsync not in ("always", "batch", "never"):
            raise StorageError(f"unknown fsync policy {self.fsync!r}")
        if self.durable and not self.data_dir:
            raise StorageError("durable mode needs a data_dir")


def row_key(table: str, row_id: int) -> str:
    """Zero-padded so key order equals row-id order per table."""
    return f"t/{table}/{row_id:012d}"


def parse_row_key(key: str) -> tuple[str, int]:
    _, table, rid = key.split("/", 2)
    return table, int(rid)


def meta_key(table: str) -> str:
    return f"m/{table}/rowid"


@dataclass
class SegmentInfo:
    """One manifest-adopted SSTable."""

    segment_id: int
    level: int
    file: str
    reader: SSTableReader

    def as_row(self) -> dict[str, Any]:
        return {
            "id": self.segment_id,
            "level": self.level,
            "file": self.file,
            "keys": self.reader.count,
            "tombstones": self.reader.tombstones,
            "bytes": self.reader.size_bytes,
            "min_key": self.reader.min_key,
            "max_key": self.reader.max_key,
        }


@dataclass
class RecoveryReport:
    """What :meth:`Database.open` found and repaired."""

    segments: int = 0
    wal_records: int = 0
    torn_bytes: int = 0
    orphans_removed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "segments": self.segments,
            "wal_records": self.wal_records,
            "torn_bytes": self.torn_bytes,
            "orphans_removed": self.orphans_removed,
        }


class Database:
    """An LSM-tree key-value store under one data directory."""

    def __init__(self, data_dir: str,
                 config: StorageConfig | None = None) -> None:
        self.data_dir = data_dir
        self.config = config or StorageConfig(durable=True,
                                              data_dir=data_dir)
        os.makedirs(data_dir, exist_ok=True)
        self.segments: list[SegmentInfo] = []
        self.next_segment_id = 1
        self.memtable = MemTable()
        self.recovery = RecoveryReport()
        self.compactions = 0
        self.tombstones_collected = 0
        self._in_batch = False
        self._closed = False
        self._recover()
        self.wal = WriteAheadLog(
            os.path.join(data_dir, WAL_NAME),
            fsync=self.config.fsync,
            batch_bytes=self.config.wal_batch_bytes,
        )
        self._publish_gauges()

    @classmethod
    def open(cls, data_dir: str,
             config: StorageConfig | None = None) -> "Database":
        """Open (and recover) the database at *data_dir*."""
        return cls(data_dir, config)

    # -- recovery ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.data_dir, MANIFEST_NAME)

    def _recover(self) -> None:
        tracer = get_tracer()
        with tracer.span("durable.recover",
                         data_dir=self.data_dir) as span:
            manifest: dict[str, Any] = {"segments": [],
                                        "next_segment_id": 1}
            path = self._manifest_path()
            if os.path.exists(path):
                with open(path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
            adopted: set[str] = set()
            for entry in manifest["segments"]:
                file_path = os.path.join(self.data_dir, entry["file"])
                if not os.path.exists(file_path):
                    raise StorageError(
                        f"manifest references missing segment "
                        f"{entry['file']!r}"
                    )
                self.segments.append(SegmentInfo(
                    segment_id=entry["id"], level=entry["level"],
                    file=entry["file"],
                    reader=SSTableReader(file_path),
                ))
                adopted.add(entry["file"])
            self.next_segment_id = manifest["next_segment_id"]
            # Orphans: segment files a crash wrote but the manifest
            # never adopted. The manifest is the authority; drop them.
            for name in sorted(os.listdir(self.data_dir)):
                if name.startswith("seg-") and name.endswith(".sst") \
                        and name not in adopted:
                    os.remove(os.path.join(self.data_dir, name))
                    self.recovery.orphans_removed += 1
            payloads, torn = WriteAheadLog.replay(
                os.path.join(self.data_dir, WAL_NAME)
            )
            for payload in payloads:
                record = json.loads(payload)
                value = (TOMBSTONE if record["op"] == "del"
                         else record["value"])
                self.memtable.put(record["key"], value, len(payload))
            self.recovery.segments = len(self.segments)
            self.recovery.wal_records = len(payloads)
            self.recovery.torn_bytes = torn
            span.set("segments", len(self.segments))
            span.set("wal_records", len(payloads))
            span.set("torn_bytes", torn)
            span.set("orphans_removed", self.recovery.orphans_removed)

    def _write_manifest(self) -> None:
        manifest = {
            "segments": [
                {"id": s.segment_id, "level": s.level, "file": s.file}
                for s in self.segments
            ],
            "next_segment_id": self.next_segment_id,
        }
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path())

    # -- write path --------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._log({"op": "put", "key": key, "value": value})

    def delete(self, key: str) -> None:
        self._log({"op": "del", "key": key})

    def _log(self, record: dict[str, Any]) -> None:
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self.wal.append(payload, defer_sync=self._in_batch)
        value = TOMBSTONE if record["op"] == "del" else record["value"]
        self.memtable.put(record["key"], value, len(payload))
        get_metrics().gauge("memtable.bytes").set(self.memtable.bytes)
        failpoints.hit("db.after_append")
        if not self._in_batch \
                and self.memtable.bytes >= self.config.memtable_flush_bytes:
            self.flush()

    class _Batch:
        """Group commit: one fsync (and flush check) per batch."""

        def __init__(self, db: "Database") -> None:
            self.db = db

        def __enter__(self) -> "Database":
            self.db._in_batch = True
            return self.db

        def __exit__(self, exc_type, exc, tb) -> None:
            self.db._in_batch = False
            if exc_type is None:
                self.db.wal.sync()
                if self.db.memtable.bytes \
                        >= self.db.config.memtable_flush_bytes:
                    self.db.flush()

    def batch(self) -> "_Batch":
        return self._Batch(self)

    # -- read path ---------------------------------------------------------

    def get(self, key: str) -> Any:
        """Newest committed value of *key*, or ``None``."""
        if key in self.memtable:
            value = self.memtable.get(key)
            return None if value is TOMBSTONE else value
        for segment in sorted(self.segments,
                              key=lambda s: s.segment_id, reverse=True):
            found, value = segment.reader.get(key)
            if found:
                return None if value is TOMBSTONE else value
        return None

    def scan(self, prefix: str = ""):
        """Live ``(key, value)`` pairs under *prefix*, in key order.

        Merges segments oldest-to-newest, then the memtable, so the
        newest version of each key wins; tombstoned keys are dropped.
        Segment-id recency is sound because compaction always consumes
        *whole* levels: a merged segment's id is newer than everything
        it replaced.
        """
        merged: dict[str, Any] = {}
        for segment in sorted(self.segments,
                              key=lambda s: s.segment_id):
            for key, value in segment.reader.entries():
                if key.startswith(prefix):
                    merged[key] = value
        for key in self.memtable.keys():
            if key.startswith(prefix):
                merged[key] = self.memtable.get(key)
        for key in sorted(merged):
            value = merged[key]
            if value is not TOMBSTONE:
                yield key, value

    # -- flush & compaction ------------------------------------------------

    def _write_segment(self, items: list[tuple[str, Any]],
                       level: int) -> SegmentInfo:
        segment_id = self.next_segment_id
        self.next_segment_id += 1
        name = f"seg-{segment_id:06d}.sst"
        write_sstable(
            os.path.join(self.data_dir, name), items,
            meta=_table_meta(items),
            block_bytes=self.config.block_bytes,
        )
        return SegmentInfo(
            segment_id=segment_id, level=level, file=name,
            reader=SSTableReader(os.path.join(self.data_dir, name)),
        )

    def flush(self) -> SegmentInfo | None:
        """Freeze the memtable into a level-0 segment; reset the WAL."""
        if not len(self.memtable):
            return None
        tracer = get_tracer()
        with tracer.span("durable.flush",
                         entries=len(self.memtable)) as span:
            self.wal.sync()
            segment = self._write_segment(self.memtable.items_sorted(),
                                          level=0)
            # A kill here leaves the segment orphaned and the WAL
            # intact: recovery drops the file and replays the log.
            failpoints.hit("flush.before_manifest")
            self.segments.append(segment)
            self._write_manifest()
            self.wal.reset()
            self.memtable.clear()
            span.set("segment", segment.file)
            get_metrics().counter("lsm.flushes").inc()
        self._publish_gauges()
        self.maybe_compact()
        return segment

    def maybe_compact(self) -> None:
        """Compact any level holding more than ``level_fanout`` segments."""
        while True:
            counts: dict[int, int] = {}
            for segment in self.segments:
                counts[segment.level] = counts.get(segment.level, 0) + 1
            overfull = [level for level, count in counts.items()
                        if count > self.config.level_fanout]
            if not overfull:
                return
            self.compact_level(min(overfull))

    def compact_level(self, level: int) -> SegmentInfo | None:
        """Merge all of *level* and *level + 1* into one new segment.

        Tombstones are dropped only when the output becomes the
        bottom-most level — below it no older segment can still hold a
        value the tombstone must keep shadowing.
        """
        merging = [s for s in self.segments
                   if s.level in (level, level + 1)]
        if not merging:
            return None
        bottom = all(s.level <= level + 1 for s in self.segments)
        tracer = get_tracer()
        with tracer.span("durable.compact", level=level,
                         inputs=len(merging)) as span:
            merged: dict[str, Any] = {}
            for segment in sorted(merging, key=lambda s: s.segment_id):
                for key, value in segment.reader.entries():
                    merged[key] = value
            items = []
            dropped = 0
            for key in sorted(merged):
                value = merged[key]
                if value is TOMBSTONE and bottom:
                    dropped += 1
                    continue
                items.append((key, value))
            survivors = [s for s in self.segments if s not in merging]
            if items:
                segment = self._write_segment(items, level=level + 1)
            else:
                segment = None
            failpoints.hit("compact.before_manifest")
            self.segments = survivors + ([segment] if segment else [])
            self._write_manifest()
            for old in merging:
                os.remove(os.path.join(self.data_dir, old.file))
            self.compactions += 1
            self.tombstones_collected += dropped
            metrics = get_metrics()
            metrics.counter("lsm.compactions").inc()
            metrics.counter("lsm.tombstones_collected").inc(dropped)
            span.set("output", segment.file if segment else None)
            span.set("tombstones_dropped", dropped)
        self._publish_gauges()
        return segment

    def compact(self) -> None:
        """Major compaction: everything into one tombstone-free segment."""
        self.flush()
        while len(self.segments) > 1:
            self.compact_level(min(s.level for s in self.segments))
        if self.segments and self.segments[0].reader.tombstones:
            self.compact_level(self.segments[0].level)

    def _publish_gauges(self) -> None:
        metrics = get_metrics()
        metrics.gauge("memtable.bytes").set(self.memtable.bytes)
        counts: dict[int, int] = {}
        for segment in self.segments:
            counts[segment.level] = counts.get(segment.level, 0) + 1
        for level in range(max(counts, default=-1) + 1):
            metrics.gauge(f"lsm.level_{level}.segments").set(
                counts.get(level, 0)
            )

    # -- inspection --------------------------------------------------------

    def level_stats(self) -> list[dict[str, Any]]:
        """Per-level segment/key/byte totals (the CLI's table)."""
        levels: dict[int, dict[str, int]] = {}
        for segment in self.segments:
            stats = levels.setdefault(
                segment.level,
                {"segments": 0, "keys": 0, "tombstones": 0, "bytes": 0},
            )
            stats["segments"] += 1
            stats["keys"] += segment.reader.count
            stats["tombstones"] += segment.reader.tombstones
            stats["bytes"] += segment.reader.size_bytes
        return [{"level": level, **stats}
                for level, stats in sorted(levels.items())]

    def table_segments(self, table: str) -> list[dict[str, Any]]:
        """Segment metadata rows relevant to *table* (for pruning)."""
        relevant = []
        for segment in self.segments:
            meta = segment.reader.meta.get(table)
            if meta is not None:
                relevant.append(meta)
        return relevant

    def memtable_row_interval(self, table: str) -> tuple[int, int] | None:
        """Inclusive row-id interval of *table*'s unflushed puts."""
        prefix = f"t/{table}/"
        low = high = None
        for key in self.memtable.keys():
            if not key.startswith(prefix) \
                    or self.memtable.get(key) is TOMBSTONE:
                continue
            rid = int(key.rsplit("/", 1)[1])
            low = rid if low is None else min(low, rid)
            high = rid if high is None else max(high, rid)
        if low is None:
            return None
        return low, high

    def close(self) -> None:
        """Clean shutdown: flush what's pending, release the WAL.

        Idempotent — a second close is a no-op, so owners with
        overlapping lifetimes (a DrugTree and a test fixture, say) can
        both call it safely.
        """
        if self._closed:
            return
        self._closed = True
        self.flush()
        self.wal.close()

    def __repr__(self) -> str:
        return (f"Database({self.data_dir!r}, "
                f"segments={len(self.segments)}, "
                f"memtable={len(self.memtable)})")


def _table_meta(items: list[tuple[str, Any]]) -> dict[str, Any]:
    """Per-table row-id intervals and column zone maps of a segment.

    Only ``t/<table>/<rid>`` *puts* contribute: tombstones carry no
    values and their row ids must not widen the interval (a segment
    holding only the tombstone of row 3 does not contain row 3).
    Zones hold ``[min, max]`` per column position over non-NULL values;
    a position whose values are all NULL stores ``null``, which any
    comparison predicate refutes outright (NULL never matches).
    """
    tables: dict[str, dict[str, Any]] = {}
    for key, value in items:
        if value is TOMBSTONE or not key.startswith("t/") \
                or not isinstance(value, list):
            continue  # zone maps only describe positional row values
        table, rid = parse_row_key(key)
        meta = tables.get(table)
        if meta is None:
            meta = tables[table] = {
                "rid_min": rid, "rid_max": rid,
                "zones": [None] * len(value),
            }
        else:
            meta["rid_min"] = min(meta["rid_min"], rid)
            meta["rid_max"] = max(meta["rid_max"], rid)
            if len(meta["zones"]) < len(value):
                meta["zones"].extend(
                    [None] * (len(value) - len(meta["zones"]))
                )
        for position, cell in enumerate(value):
            if cell is None:
                continue
            zone = meta["zones"][position]
            if zone is None:
                meta["zones"][position] = [cell, cell]
            else:
                if _zone_less(cell, zone[0]):
                    zone[0] = cell
                if _zone_less(zone[1], cell):
                    zone[1] = cell
    return tables


def _zone_less(left: Any, right: Any) -> bool:
    """``left < right`` only between comparable (same-kind) values."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) \
            and left < right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left < right
    if isinstance(left, str) and isinstance(right, str):
        return left < right
    return False


def _comparable(value: Any, bound: Any) -> bool:
    if isinstance(value, bool) or isinstance(bound, bool):
        return isinstance(value, bool) and isinstance(bound, bool)
    if isinstance(value, (int, float)):
        return isinstance(bound, (int, float))
    if isinstance(value, str):
        return isinstance(bound, str)
    return False


def _zone_refutes(zone: list[Any] | None, op: str, literal: Any) -> bool:
    """True when no value inside *zone* can satisfy ``op literal``."""
    if zone is None:
        # Every value in the segment is NULL, and NULL matches nothing.
        return True
    low, high = zone
    if not (_comparable(low, literal) and _comparable(high, literal)):
        return False
    if op == "=":
        return literal < low or literal > high
    if op == "<":
        return low >= literal
    if op == "<=":
        return low > literal
    if op == ">":
        return high <= literal
    if op == ">=":
        return high < literal
    return False


class DurableTableAdapter:
    """Bridge between one :class:`~repro.storage.table.Table` and the
    shared :class:`Database`.

    The table calls :meth:`log_insert` / :meth:`log_delete` *before*
    touching its in-memory state (write-ahead order), and
    :meth:`restore_into` replays the store back through the table's
    normal listener machinery on open — secondary indexes, column
    stores, and materialized aggregates rebuild themselves exactly as
    they would under live inserts.
    """

    def __init__(self, database: Database, table_name: str) -> None:
        self.database = database
        self.table_name = table_name
        self._column_positions: dict[str, int] | None = None

    # -- write-ahead logging -----------------------------------------------

    def log_insert(self, row_id: int, row: tuple[Any, ...]) -> None:
        self.database.put(row_key(self.table_name, row_id), list(row))

    def log_delete(self, row_id: int, next_row_id: int) -> None:
        # One group commit: the tombstone and the row-id watermark land
        # under a single fsync, so GC can never regress id assignment.
        with self.database.batch() as db:
            db.delete(row_key(self.table_name, row_id))
            db.put(meta_key(self.table_name), next_row_id)

    # -- recovery ----------------------------------------------------------

    def restore_into(self, table: Any) -> int:
        """Replay committed rows into *table*; returns rows restored."""
        restored = 0
        prefix = f"t/{self.table_name}/"
        for key, value in self.database.scan(prefix):
            _, rid = parse_row_key(key)
            table.restore_row(rid, tuple(value))
            restored += 1
        watermark = self.database.get(meta_key(self.table_name))
        if watermark is not None:
            table.bump_next_row_id(int(watermark))
        return restored

    # -- segment pruning ---------------------------------------------------

    def scan_positions(self, store: "ColumnStore", residual: Any,
                       counters: Any) -> list[int] | None:
        """Buffer positions a residual-filtered scan must visit.

        Checks every flushed segment's zone maps against the residual
        predicates; segments refuted by a zone are skipped wholesale.
        Returns ``None`` when nothing was prunable (caller scans all
        live positions — same work, no position list built), otherwise
        the kept positions: non-pruned segments' row-id intervals plus
        the memtable's, mapped through the column store.
        """
        segments = self.database.table_segments(self.table_name)
        if not segments:
            return None
        schema = store.table.schema
        checks = []
        for pred in residual:
            if pred.op in _ZONE_OPS and schema.has_column(pred.column):
                checks.append((schema.index_of(pred.column), pred.op,
                               pred.value))
        if not checks:
            return None
        kept: list[tuple[int, int]] = []
        pruned = 0
        for meta in segments:
            zones = meta["zones"]
            if any(_zone_refutes(
                    zones[position] if position < len(zones) else None,
                    op, literal) for position, op, literal in checks):
                pruned += 1
                continue
            kept.append((meta["rid_min"], meta["rid_max"]))
        counters.segments_read += len(segments) - pruned
        counters.segments_pruned += pruned
        if not pruned:
            return None
        interval = self.database.memtable_row_interval(self.table_name)
        if interval is not None:
            kept.append(interval)
        return store.positions_in_row_id_ranges(kept)
