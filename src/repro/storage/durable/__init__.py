"""Durable storage engine: WAL + memtable + leveled SSTables.

The opt-in persistence layer beneath :mod:`repro.storage.table`. See
``docs/DURABILITY.md`` for file formats, the recovery protocol, and
the compaction policy; :mod:`repro.storage.durable.db` for the write
path. This package (plus :mod:`repro.obs`) is the only place allowed
to mutate files directly — lint rule L007 enforces that everything
else persists through the WAL.
"""

from repro.storage.durable.db import (
    Database,
    DurableTableAdapter,
    RecoveryReport,
    SegmentInfo,
    StorageConfig,
    meta_key,
    parse_row_key,
    row_key,
)
from repro.storage.durable.failpoints import CrashPoint
from repro.storage.durable.memtable import TOMBSTONE, MemTable
from repro.storage.durable.sstable import (
    BloomFilter,
    SSTableReader,
    write_sstable,
)
from repro.storage.durable.wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "CrashPoint",
    "Database",
    "DurableTableAdapter",
    "MemTable",
    "RecoveryReport",
    "SSTableReader",
    "SegmentInfo",
    "StorageConfig",
    "TOMBSTONE",
    "WriteAheadLog",
    "meta_key",
    "parse_row_key",
    "row_key",
    "write_sstable",
]
