"""Append-only write-ahead log with CRC-framed records.

Every mutation is framed as ``crc32(payload) · length · payload`` and
appended before the in-memory state changes, so the log is the single
source of truth for unflushed data. :meth:`WriteAheadLog.replay` walks
the frames back, stops at the first corrupt or incomplete one (a *torn
tail* — the write the crash interrupted), and truncates the file there:
everything before the tear was durably committed, everything after it
never was.

Durability cost is a policy, not a constant:

``always``
    ``fsync`` after every append — maximum safety, one disk sync per
    record.
``batch``
    group commit: syncs are deferred until ``wal_batch_bytes`` of
    unsynced frames accumulate (or an explicit :meth:`sync`, which
    :meth:`~repro.storage.durable.db.Database.batch` issues once per
    logical batch).
``never``
    OS-buffered writes only; survives process crashes (the kernel has
    the data) but not power loss. The E14 benchmark measures all three.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.obs import get_metrics
from repro.storage.durable import failpoints

#: Frame header: crc32 of the payload, then payload byte length.
_FRAME = struct.Struct("<II")

_POLICIES = ("always", "batch", "never")


class WriteAheadLog:
    """One append-only log file plus its sync policy."""

    def __init__(self, path: str, fsync: str = "batch",
                 batch_bytes: int = 64 * 1024) -> None:
        if fsync not in _POLICIES:
            from repro.errors import StorageError
            raise StorageError(
                f"unknown fsync policy {fsync!r} (one of {_POLICIES})"
            )
        self.path = path
        self.fsync = fsync
        self.batch_bytes = batch_bytes
        self._file = open(path, "ab")
        self._unsynced = 0

    # -- writes ------------------------------------------------------------

    def append(self, payload: bytes, defer_sync: bool = False) -> None:
        """Frame and append one record; sync per policy.

        With *defer_sync* (group commit) the policy sync is skipped;
        the caller promises an explicit :meth:`sync` at batch end.
        """
        frame = _FRAME.pack(zlib.crc32(payload), len(payload)) + payload
        if failpoints.consume("wal.append.torn"):
            # Simulated mid-append kill: half a frame reaches the disk.
            self._file.write(frame[:max(1, len(frame) // 2)])
            self._file.flush()
            raise failpoints.CrashPoint("wal.append.torn")
        self._file.write(frame)
        self._unsynced += len(frame)
        metrics = get_metrics()
        metrics.counter("wal.appends").inc()
        metrics.counter("wal.bytes").inc(len(frame))
        failpoints.hit("wal.append.after")
        if defer_sync:
            return
        if self.fsync == "always":
            self.sync()
        elif self.fsync == "batch" and self._unsynced >= self.batch_bytes:
            self.sync()

    def sync(self) -> None:
        """Flush to the OS and (policy permitting) to the platter."""
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())
            get_metrics().counter("wal.fsyncs").inc()
        self._unsynced = 0

    def reset(self) -> None:
        """Empty the log (called after its records reach a segment)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._unsynced = 0

    def close(self) -> None:
        if self._file.closed:
            return
        self.sync()
        self._file.close()

    # -- recovery ----------------------------------------------------------

    @staticmethod
    def replay(path: str) -> tuple[list[bytes], int]:
        """Committed payloads of the log at *path*, tear truncated.

        Returns ``(payloads, torn_bytes)``: every record whose frame is
        complete and whose CRC matches, and the number of trailing
        bytes discarded as a torn tail. The file itself is truncated to
        the last good frame so a later replay sees a clean log.
        """
        if not os.path.exists(path):
            return [], 0
        with open(path, "rb") as handle:
            data = handle.read()
        payloads: list[bytes] = []
        offset = 0
        while True:
            header_end = offset + _FRAME.size
            if header_end > len(data):
                break  # incomplete header
            crc, length = _FRAME.unpack_from(data, offset)
            payload_end = header_end + length
            if payload_end > len(data):
                break  # incomplete payload
            payload = data[header_end:payload_end]
            if zlib.crc32(payload) != crc:
                break  # corrupt frame: stop at the tear
            payloads.append(payload)
            offset = payload_end
        torn = len(data) - offset
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(offset)
        return payloads, torn
