"""Crash injection for the durability tests.

A *failpoint* is a named spot inside the storage engine where a test
can arm a simulated process kill. When execution reaches an armed
point, :exc:`CrashPoint` is raised (once — arming is one-shot) and the
test then reopens the database from disk, exactly as a restarted
process would, to assert that recovery restores the committed state.

:exc:`CrashPoint` deliberately does **not** derive from
:class:`~repro.errors.DrugTreeError`: nothing in the library may catch
and survive a simulated kill, the way a real ``kill -9`` cannot be
caught.
"""

from __future__ import annotations

_armed: set[str] = set()


class CrashPoint(Exception):
    """A simulated crash at a named failpoint."""


def arm(name: str) -> None:
    """Arm *name*: the next :func:`hit` on it raises, one-shot."""
    _armed.add(name)


def clear() -> None:
    """Disarm every failpoint (test teardown)."""
    _armed.clear()


def armed(name: str) -> bool:
    return name in _armed


def consume(name: str) -> bool:
    """True (and disarm) when *name* is armed — for call sites that
    need to do partial work (e.g. write half a frame) before dying."""
    if name in _armed:
        _armed.discard(name)
        return True
    return False


def hit(name: str) -> None:
    """Raise :exc:`CrashPoint` when *name* is armed, then disarm it."""
    if consume(name):
        raise CrashPoint(name)
