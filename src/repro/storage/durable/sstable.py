"""Immutable sorted segments (SSTables) with bloom and block index.

File layout::

    entry*  footer-json  footer-length:u64

Each entry is ``flag:u8 · key_len:u32 · value_len:u32 · key · value``;
``flag`` 1 marks a tombstone (no value bytes). Entries are written in
key order. The JSON footer carries everything a reader needs without
scanning the data area:

* ``block_index`` — ``[first_key, offset]`` pairs, one per
  ``block_bytes`` of entries, so point lookups seek to one block and
  scan at most a block's worth of entries;
* ``bloom`` — a bloom filter over every key (tombstones included), so
  lookups for absent keys skip the file without touching the data area;
* ``min_key`` / ``max_key`` — the segment's key range;
* ``meta`` — caller-supplied annotations; the database stores per-table
  row-id intervals and per-column min/max *zone maps* here, which is
  what lets the vectorized scan prune whole segments.

The bloom hashes derive from :func:`hashlib.md5` double hashing, not
Python's builtin ``hash`` — the builtin is salted per process, and a
filter written by one process must answer in the next (that is the
whole point of a durable store).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any

from repro.errors import StorageError
from repro.storage.durable.memtable import TOMBSTONE

_ENTRY = struct.Struct("<BII")  # flag, key length, value length
_FOOTER_LEN = struct.Struct("<Q")

_FLAG_PUT = 0
_FLAG_TOMBSTONE = 1


class BloomFilter:
    """Fixed-size bloom filter with deterministic double hashing."""

    def __init__(self, m_bits: int, k_hashes: int,
                 bits: bytearray | None = None) -> None:
        if m_bits <= 0 or k_hashes <= 0:
            raise StorageError("bloom filter needs positive m and k")
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self.bits = bits if bits is not None \
            else bytearray((m_bits + 7) // 8)

    @classmethod
    def for_count(cls, count: int,
                  bits_per_key: int = 10) -> "BloomFilter":
        """Sized for *count* keys (~1% false positives at 10 bits)."""
        return cls(max(64, count * bits_per_key), 7)

    def _positions(self, key: str) -> list[int]:
        digest = hashlib.md5(key.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self.m_bits
                for i in range(self.k_hashes)]

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self.bits[position >> 3] |= 1 << (position & 7)

    def might_contain(self, key: str) -> bool:
        """False means definitely absent; True means probably present."""
        return all(self.bits[p >> 3] & (1 << (p & 7))
                   for p in self._positions(key))

    def as_dict(self) -> dict[str, Any]:
        return {"m": self.m_bits, "k": self.k_hashes,
                "bits": self.bits.hex()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BloomFilter":
        return cls(data["m"], data["k"], bytearray.fromhex(data["bits"]))


def _encode_entry(key: str, value: Any) -> bytes:
    key_bytes = key.encode("utf-8")
    if value is TOMBSTONE:
        return _ENTRY.pack(_FLAG_TOMBSTONE, len(key_bytes), 0) + key_bytes
    value_bytes = json.dumps(value, separators=(",", ":")).encode("utf-8")
    return (_ENTRY.pack(_FLAG_PUT, len(key_bytes), len(value_bytes))
            + key_bytes + value_bytes)


def write_sstable(path: str, items: list[tuple[str, Any]],
                  meta: dict[str, Any] | None = None,
                  block_bytes: int = 4096) -> None:
    """Write sorted ``(key, value-or-TOMBSTONE)`` *items* to *path*.

    The file is complete only once the footer length lands; a crash
    mid-write leaves a file the manifest never references (recovery
    removes such orphans).
    """
    if items and any(items[i][0] >= items[i + 1][0]
                     for i in range(len(items) - 1)):
        raise StorageError("sstable items must be strictly sorted by key")
    bloom = BloomFilter.for_count(max(1, len(items)))
    block_index: list[tuple[str, int]] = []
    offset = 0
    block_start: int | None = None
    tombstones = 0
    with open(path, "wb") as handle:
        for key, value in items:
            bloom.add(key)
            if value is TOMBSTONE:
                tombstones += 1
            if block_start is None or offset - block_start >= block_bytes:
                block_index.append((key, offset))
                block_start = offset
            encoded = _encode_entry(key, value)
            handle.write(encoded)
            offset += len(encoded)
        footer = {
            "block_index": block_index,
            "bloom": bloom.as_dict(),
            "min_key": items[0][0] if items else None,
            "max_key": items[-1][0] if items else None,
            "count": len(items),
            "tombstones": tombstones,
            "data_end": offset,
            "meta": meta or {},
        }
        footer_bytes = json.dumps(
            footer, separators=(",", ":")).encode("utf-8")
        handle.write(footer_bytes)
        handle.write(_FOOTER_LEN.pack(len(footer_bytes)))
        handle.flush()
        os.fsync(handle.fileno())


class SSTableReader:
    """Random and sequential access to one written segment."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size < _FOOTER_LEN.size:
                raise StorageError(f"sstable {path!r} has no footer")
            handle.seek(size - _FOOTER_LEN.size)
            (footer_len,) = _FOOTER_LEN.unpack(handle.read(_FOOTER_LEN.size))
            if footer_len > size - _FOOTER_LEN.size:
                raise StorageError(f"sstable {path!r} footer truncated")
            handle.seek(size - _FOOTER_LEN.size - footer_len)
            footer = json.loads(handle.read(footer_len))
        self.block_index: list[tuple[str, int]] = [
            (key, offset) for key, offset in footer["block_index"]
        ]
        self.bloom = BloomFilter.from_dict(footer["bloom"])
        self.min_key: str | None = footer["min_key"]
        self.max_key: str | None = footer["max_key"]
        self.count: int = footer["count"]
        self.tombstones: int = footer["tombstones"]
        self.data_end: int = footer["data_end"]
        self.meta: dict[str, Any] = footer["meta"]
        self.size_bytes = size

    # -- reads -------------------------------------------------------------

    def _block_offset(self, key: str) -> int | None:
        """Data offset of the block that could hold *key*."""
        candidate: int | None = None
        for first_key, offset in self.block_index:
            if first_key > key:
                break
            candidate = offset
        return candidate

    def get(self, key: str) -> tuple[bool, Any]:
        """``(found, value-or-TOMBSTONE)`` for *key* in this segment."""
        if self.min_key is None or not (self.min_key <= key <= self.max_key):
            return False, None
        if not self.bloom.might_contain(key):
            return False, None
        offset = self._block_offset(key)
        if offset is None:
            return False, None
        for entry_key, value in self._entries_from(offset):
            if entry_key == key:
                return True, value
            if entry_key > key:
                break
        return False, None

    def _entries_from(self, offset: int):
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            position = offset
            while position < self.data_end:
                header = handle.read(_ENTRY.size)
                flag, key_len, value_len = _ENTRY.unpack(header)
                key = handle.read(key_len).decode("utf-8")
                if flag == _FLAG_TOMBSTONE:
                    yield key, TOMBSTONE
                else:
                    yield key, json.loads(handle.read(value_len))
                position += _ENTRY.size + key_len + value_len

    def entries(self):
        """Every ``(key, value-or-TOMBSTONE)`` in key order."""
        if self.count:
            yield from self._entries_from(self.block_index[0][1])

    def __repr__(self) -> str:
        return (f"SSTableReader({self.path!r}, count={self.count}, "
                f"tombstones={self.tombstones})")
