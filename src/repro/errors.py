"""Shared exception hierarchy for the DrugTree reproduction.

Every error raised by the library derives from :class:`DrugTreeError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class DrugTreeError(Exception):
    """Base class for every error raised by this library."""


class SequenceError(DrugTreeError):
    """Invalid protein sequence data (bad residue, empty sequence, ...)."""


class AlignmentError(DrugTreeError):
    """Pairwise or multiple alignment could not be computed."""


class TreeError(DrugTreeError):
    """Invalid phylogenetic tree structure or Newick text."""


class ChemError(DrugTreeError):
    """Invalid molecule, SMILES text, or chemical record."""


class SourceError(DrugTreeError):
    """A (simulated) remote data source failed to answer a request."""


class SourceUnavailableError(SourceError):
    """The source is temporarily unavailable (simulated outage)."""


class RateLimitError(SourceError):
    """The source rejected the request because of rate limiting."""


class BreakerOpenError(SourceError):
    """A circuit breaker is open: the call was skipped, not attempted.

    Raised *without* charging any virtual latency — the whole point of
    the breaker is that a dark source costs nothing to avoid.
    """


class DeadlineExceededError(SourceError):
    """The caller's virtual-time deadline expired before (or during)
    the fetch; remaining work was cancelled rather than charged."""


class BorrowTimeoutError(SourceError):
    """A coalesced (borrowed) in-flight fetch was never resolved by its
    owning round-trip within the wall-clock borrow timeout.

    This indicates a scheduler bug (the owner died without resolving
    its flights), not a simulated source fault.
    """


class ClusterError(SourceError):
    """A cluster operation failed (quorum not reached, bad topology, ...).

    Subclasses :class:`SourceError` so the graceful-degradation paths
    built for federation faults (stale serving, chaos outcome counting)
    treat cluster failures the same way as any other remote fault.
    """


class NodeDownError(ClusterError):
    """A simulated cluster node was unreachable for one RPC (crashed or
    cut off by a network partition window)."""


class QuorumError(ClusterError):
    """Too few replicas answered to satisfy the read/write quorum."""


class StorageError(DrugTreeError):
    """Local storage layer failure (schema violation, missing table, ...)."""


class SchemaError(StorageError):
    """A row or value does not conform to a table schema."""


class QueryError(DrugTreeError):
    """Malformed query or a query referencing unknown entities.

    ``span`` is an optional ``(offset, length)`` character range into
    the DTQL text the error refers to, kept as a plain tuple so the
    core layer never depends on :mod:`repro.analysis`. Parser errors
    carry one whenever the offending token is known; errors raised
    while building a :class:`~repro.core.query.ast.Query` from
    programmatic dataclasses have no text to point into and leave it
    ``None``.
    """

    def __init__(self, message: str = "",
                 span: "tuple[int, int] | None" = None) -> None:
        super().__init__(message)
        self.span = span


class ParseError(QueryError):
    """DTQL query text could not be parsed."""


class PlanError(QueryError):
    """The optimizer could not produce a physical plan for a query."""


class MobileError(DrugTreeError):
    """Mobile protocol or session failure."""


class UnknownSessionError(MobileError):
    """A request named a session the server does not hold.

    Raised both for session ids that never existed and for sessions the
    bounded session table already evicted as idle; the serving layer
    reacts by transparently reopening the session.
    """


class ServingError(DrugTreeError):
    """Multi-tenant serving layer failure (bad config, bad request)."""


class OverloadError(ServingError):
    """Admission control rejected the request before execution.

    Carries the machine-usable shed decision: ``reason`` is one of
    ``rate_limited`` / ``queue_full`` / ``overload``, and
    ``retry_after_s`` is the virtual-seconds hint after which the same
    request would plausibly be admitted. Rejections are charged ~zero
    virtual latency — shedding that costs latency would defeat its
    purpose.
    """

    def __init__(self, message: str = "", reason: str = "overload",
                 tenant: str = "", retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class WorkloadError(DrugTreeError):
    """Synthetic dataset or workload generation failure."""


class ObservabilityError(DrugTreeError):
    """Misuse of the tracing/metrics subsystem (bad buckets, span order)."""
