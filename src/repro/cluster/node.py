"""One simulated cluster node: a versioned partition store plus hints.

A node holds, per partition it replicates, a map ``(table, row_id) →
(version, row)``. Versions are lamport-style counters stamped by the
router; a node applies a put only when it is newer than what it holds
(last-writer-wins at the replica), which makes replica repair — read
repair, hinted handoff, anti-entropy pushes — idempotent and
order-insensitive.

Every public method is an *RPC*: it consults the node-fault schedule at
the caller's virtual now, charges latency on the caller's timeline
(base latency, plus any slow-node penalty, or the full RPC timeout when
the node is unreachable), and raises
:class:`~repro.errors.NodeDownError` inside a crash/partition window.
Thread-safe: the router fans out over partitions from worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cluster.chaos import NodeFaultSchedule
from repro.cluster.merkle import MerkleTree
from repro.errors import NodeDownError
from repro.sources.clock import SimulatedClock


@dataclass(frozen=True)
class VersionedRow:
    """One stored row plus the lamport version that wrote it."""

    version: int
    row: tuple


@dataclass(frozen=True)
class Hint:
    """A write a down node missed, parked on a live replica.

    ``target`` is the node the write was meant for; the hint is
    delivered (replayed as a normal put) when the target returns.
    """

    target: str
    pid: int
    table: str
    row_id: int
    versioned: VersionedRow


class ClusterNode:
    """One simulated storage node of the cluster."""

    def __init__(self, node_id: str, clock: SimulatedClock,
                 schedule: NodeFaultSchedule | None = None,
                 base_latency_s: float = 0.002,
                 timeout_s: float = 0.05,
                 merkle_buckets: int = 32) -> None:
        self.node_id = node_id
        self.clock = clock
        self.schedule = schedule or NodeFaultSchedule()
        self.base_latency_s = base_latency_s
        self.timeout_s = timeout_s
        self.merkle_buckets = merkle_buckets
        self._lock = threading.Lock()
        self._store: dict[int, dict[tuple[str, int], VersionedRow]] = {}
        self._hints: list[Hint] = []
        #: RPCs answered / refused, for ``repro cluster`` node state.
        self.rpcs = 0
        self.failed_rpcs = 0

    # -- fault plumbing -----------------------------------------------------

    def is_down(self) -> bool:
        """Schedule peek at the caller's now — no latency charged.

        The simulation's stand-in for cluster membership gossip: the
        router uses it to skip known-dead nodes in maintenance paths
        (hint draining, anti-entropy) without paying RPC timeouts.
        """
        return self.schedule.effect_for(self.node_id,
                                        self.clock.now()).down

    def _rpc(self) -> None:
        effect = self.schedule.effect_for(self.node_id, self.clock.now())
        if effect.down:
            # An unreachable node costs the full timeout to discover.
            self.clock.sleep(self.timeout_s)
            with self._lock:
                self.failed_rpcs += 1
            raise NodeDownError(f"node {self.node_id} unreachable")
        self.clock.sleep(self.base_latency_s + effect.extra_latency_s)
        with self._lock:
            self.rpcs += 1

    # -- replica reads/writes (RPCs) ----------------------------------------

    def put(self, pid: int, table: str, row_id: int,
            versioned: VersionedRow) -> None:
        self._rpc()
        with self._lock:
            self._apply(pid, (table, row_id), versioned)

    def put_bulk(self, pid: int,
                 entries: dict[tuple[str, int], VersionedRow]) -> int:
        """Apply many repair entries in one RPC; returns rows updated."""
        self._rpc()
        applied = 0
        with self._lock:
            for key, versioned in sorted(entries.items()):
                applied += self._apply(pid, key, versioned)
        return applied

    def _apply(self, pid: int, key: tuple[str, int],
               versioned: VersionedRow) -> int:
        partition = self._store.setdefault(pid, {})
        current = partition.get(key)
        if current is None or versioned.version > current.version:
            partition[key] = versioned
            return 1
        return 0

    def get_partition(self, pid: int) -> dict[tuple[str, int],
                                              VersionedRow]:
        self._rpc()
        with self._lock:
            return dict(self._store.get(pid, {}))

    def fetch(self, pid: int, keys) -> dict[tuple[str, int],
                                            VersionedRow]:
        """Point-read a batch of keys (anti-entropy pulls winners)."""
        self._rpc()
        with self._lock:
            partition = self._store.get(pid, {})
            return {key: partition[key] for key in keys
                    if key in partition}

    def merkle(self, pid: int) -> MerkleTree:
        self._rpc()
        with self._lock:
            versions = {key: versioned.version
                        for key, versioned
                        in self._store.get(pid, {}).items()}
        return MerkleTree.build(versions,
                                bucket_count=self.merkle_buckets)

    # -- hinted handoff ------------------------------------------------------

    def store_hint(self, hint: Hint) -> None:
        self._rpc()
        with self._lock:
            self._hints.append(hint)

    def take_hints(self) -> list[Hint]:
        self._rpc()
        with self._lock:
            hints, self._hints = self._hints, []
        return hints

    def restore_hints(self, hints: list[Hint]) -> None:
        """Re-park undeliverable hints (local, no RPC charge)."""
        with self._lock:
            self._hints = list(hints) + self._hints

    def hint_count(self) -> int:
        with self._lock:
            return len(self._hints)

    # -- introspection (local, for CLI/tests) --------------------------------

    def partition_ids(self) -> list[int]:
        with self._lock:
            return sorted(pid for pid, rows in self._store.items()
                          if rows)

    def key_count(self, pid: int | None = None) -> int:
        with self._lock:
            if pid is not None:
                return len(self._store.get(pid, {}))
            return sum(len(rows) for rows in self._store.values())

    def __repr__(self) -> str:
        return (f"ClusterNode({self.node_id!r}, "
                f"keys={self.key_count()}, hints={self.hint_count()})")
