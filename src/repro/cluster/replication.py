"""Cluster topology: nodes, replica groups, and their assignment.

A :class:`Cluster` owns the simulated nodes and maps every partition
from the :class:`~repro.cluster.partitioning.CladePartitioner` to a
*replica group* of ``replication_factor`` nodes, assigned round-robin
so load spreads and no two adjacent partitions share their full group.
The quorum geometry lives in :class:`ClusterConfig`: with ``R + W >
RF`` every read quorum intersects every write quorum, which is what
makes newest-version-wins reads see every acknowledged write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.chaos import NodeFaultSchedule
from repro.cluster.node import ClusterNode
from repro.cluster.partitioning import CladePartitioner, Partition
from repro.core.labeling import IntervalLabeling
from repro.errors import ClusterError
from repro.sources.clock import SimulatedClock


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and quorum geometry of one simulated cluster."""

    nodes: int = 5
    partitions: int = 4
    replication_factor: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    #: Park writes for down replicas on live nodes and replay them when
    #: the target returns. Disable to let replicas diverge (the merkle
    #: anti-entropy tests do exactly that).
    hinted_handoff: bool = True
    base_latency_s: float = 0.002
    rpc_timeout_s: float = 0.05
    merkle_buckets: int = 32

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ClusterError("cluster needs at least one node")
        if self.partitions < 1:
            raise ClusterError("cluster needs at least one partition")
        if not 1 <= self.replication_factor <= self.nodes:
            raise ClusterError(
                f"replication factor {self.replication_factor} must be "
                f"in [1, {self.nodes}] (node count)"
            )
        if not 1 <= self.read_quorum <= self.replication_factor:
            raise ClusterError("read quorum must be in [1, RF]")
        if not 1 <= self.write_quorum <= self.replication_factor:
            raise ClusterError("write quorum must be in [1, RF]")
        if self.base_latency_s < 0 or self.rpc_timeout_s <= 0:
            raise ClusterError("latencies must be non-negative")
        if self.merkle_buckets < 1:
            raise ClusterError("merkle tree needs at least one bucket")

    @property
    def strongly_consistent(self) -> bool:
        """``R + W > RF``: read and write quorums always intersect."""
        return (self.read_quorum + self.write_quorum
                > self.replication_factor)


@dataclass(frozen=True)
class ReplicaGroup:
    """The nodes replicating one partition, in preference order."""

    partition: Partition
    node_ids: tuple[str, ...]


class Cluster:
    """Simulated nodes plus the partition → replica-group assignment."""

    def __init__(self, labeling: IntervalLabeling,
                 config: ClusterConfig | None = None,
                 clock: SimulatedClock | None = None,
                 schedule: NodeFaultSchedule | None = None) -> None:
        self.config = config or ClusterConfig()
        self.clock = clock or SimulatedClock()
        self.schedule = schedule or NodeFaultSchedule()
        self.partitioner = CladePartitioner(
            labeling, n_partitions=self.config.partitions,
        )
        self.node_ids = tuple(f"node-{i}"
                              for i in range(self.config.nodes))
        self.nodes: dict[str, ClusterNode] = {
            node_id: ClusterNode(
                node_id, self.clock, schedule=self.schedule,
                base_latency_s=self.config.base_latency_s,
                timeout_s=self.config.rpc_timeout_s,
                merkle_buckets=self.config.merkle_buckets,
            )
            for node_id in self.node_ids
        }
        rf = self.config.replication_factor
        self.groups: dict[int, ReplicaGroup] = {
            partition.pid: ReplicaGroup(
                partition,
                tuple(self.node_ids[(partition.pid + k)
                                    % len(self.node_ids)]
                      for k in range(rf)),
            )
            for partition in self.partitioner.partitions
        }

    def set_schedule(self, schedule: NodeFaultSchedule) -> None:
        """Swap in a fault schedule (chaos harness entry point)."""
        self.schedule = schedule
        for node in self.nodes.values():
            node.schedule = schedule

    def node(self, node_id: str) -> ClusterNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None

    def group_for(self, pid: int) -> ReplicaGroup:
        try:
            return self.groups[pid]
        except KeyError:
            raise ClusterError(f"unknown partition {pid}") from None

    # -- introspection for the CLI ------------------------------------------

    def topology(self) -> list[dict]:
        rows = []
        for pid in sorted(self.groups):
            group = self.groups[pid]
            partition = group.partition
            rows.append({
                "pid": pid,
                "clade": partition.name,
                "interval": ("(global)" if partition.is_global
                             else f"[{partition.low}, {partition.high})"),
                "replicas": list(group.node_ids),
            })
        return rows

    def node_states(self) -> list[dict]:
        return [{
            "node": node_id,
            "status": ("down" if node.is_down() else "up"),
            "partitions": node.partition_ids(),
            "keys": node.key_count(),
            "hints": node.hint_count(),
            "rpcs": node.rpcs,
            "failed_rpcs": node.failed_rpcs,
        } for node_id, node in sorted(self.nodes.items())]
