"""ClusterEngine: single-node query semantics over the sharded store.

The parity contract — cluster results bit-identical to the single-node
engine — is met by construction rather than by reimplementing the
executor: the engine prunes the query to the partitions whose clade
intervals intersect it, quorum-reads exactly those partitions through
the router, materializes the rows into a local overlay *view* (a plain
:class:`~repro.core.drugtree.DrugTree` rebuilt in global row-id order,
so every scan and index path emits rows in the same order as the
single-node engine), injects the cluster-wide table statistics so the
planner and adaptive engine make the same choices, and then delegates
to a stock :class:`~repro.core.query.executor.QueryEngine`.

Views are cached per ``(partition set, store version)``, so a
navigation session re-reading the same clade pays the fan-out once
until a write invalidates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chem.fingerprint import circular_fingerprint
from repro.chem.smiles import parse_smiles
from repro.cluster.partitioning import (
    PARTITIONED_TABLES,
    partitions_for_query,
)
from repro.cluster.replication import Cluster, ClusterConfig
from repro.cluster.router import Router
from repro.core.drugtree import DrugTree
from repro.core.overlay import (
    BINDINGS_TABLE,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
    bindings_schema,
    ligands_schema,
    proteins_schema,
)
from repro.core.query.ast import Query
from repro.core.query.executor import EngineConfig, QueryEngine
from repro.core.query.parser import parse_query
from repro.errors import ClusterError
from repro.obs.explain import AnalyzeReport
from repro.sources.resilience import Deadline

#: Cached materialized views kept per engine (a navigation session
#: typically alternates between a clade view and the full view).
_VIEW_CACHE_CAPACITY = 4


@dataclass
class _ClusterView:
    """One materialized subset of the cluster, plus its query engine."""

    drugtree: DrugTree
    engine: QueryEngine
    store_version: int
    pids: frozenset[int]


class ClusterEngine:
    """Query the cluster with single-node semantics.

    Build one with :meth:`from_drugtree` (shards an existing overlay
    into a fresh cluster) or construct directly around an
    already-seeded :class:`~repro.cluster.router.Router`.
    """

    def __init__(self, tree, router: Router,
                 statistics: dict | None = None,
                 config: EngineConfig | None = None) -> None:
        self.tree = tree
        self.router = router
        self.clock = router.clock
        self.partitioner = router.cluster.partitioner
        self.labeling = self.partitioner.labeling
        self.config = config or EngineConfig()
        #: Cluster-wide table statistics injected into every view so
        #: planner/adaptive decisions match the single-node engine.
        self.statistics = dict(statistics or {})
        self._schemas = {
            PROTEINS_TABLE: proteins_schema(),
            LIGANDS_TABLE: ligands_schema(),
            BINDINGS_TABLE: bindings_schema(),
        }
        self._views: dict[frozenset[int], _ClusterView] = {}
        #: Routing facts of the most recent execute/analyze, the data
        #: behind the ``-- cluster:`` trailer.
        self.last_route: dict[str, Any] = {}

    @classmethod
    def from_drugtree(cls, drugtree: DrugTree,
                      cluster_config: ClusterConfig | None = None,
                      clock=None,
                      config: EngineConfig | None = None,
                      breaker_config=None) -> "ClusterEngine":
        """Shard an existing overlay into a freshly seeded cluster."""
        cluster = Cluster(drugtree.labeling, config=cluster_config,
                          clock=clock)
        router = Router(cluster, breaker_config=breaker_config)
        for name in (PROTEINS_TABLE, LIGANDS_TABLE, BINDINGS_TABLE):
            table = drugtree.tables[name]
            leaf_idx = (table.schema.index_of("leaf_pre")
                        if name in PARTITIONED_TABLES else None)
            for row_id, row in table.scan():
                leaf_pre = row[leaf_idx] if leaf_idx is not None else None
                router.write(name, row_id, row, leaf_pre=leaf_pre)
        return cls(drugtree.tree, router,
                   statistics=dict(drugtree.statistics), config=config)

    # -- writes ---------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any],
               deadline: Deadline | None = None) -> int:
        """Validate and replicate one new row; returns its row id."""
        schema = self._schemas.get(table)
        if schema is None:
            raise ClusterError(f"unknown overlay table {table!r}")
        values = dict(values)
        leaf_pre = None
        if table in PARTITIONED_TABLES:
            if "leaf_pre" not in values:
                values["leaf_pre"] = self.labeling.leaf_position(
                    values["protein_id"]
                )
            leaf_pre = int(values["leaf_pre"])
        row = schema.validate_row(values)
        row_id = self.router.allocate_row_id(table)
        self.router.write(table, row_id, row, leaf_pre=leaf_pre,
                          deadline=deadline)
        return row_id

    # -- reads ----------------------------------------------------------------

    def execute(self, query: Query | str,
                deadline: Deadline | float | None = None):
        """Run a query against the cluster (AST or DTQL text).

        The deadline bounds the router's replica round-trips; local
        view execution is not charged virtual time, matching the
        single-node engine's treatment of overlay scans.
        """
        query, deadline = self._prepare(query, deadline)
        pids = partitions_for_query(query, self.partitioner)
        route = self._route_base(pids)
        repairs_before = self.router.stats.read_repairs
        view = self._view(frozenset(pids), deadline)
        result = view.engine.execute(query)
        self._finish_route(route, repairs_before)
        return result

    def analyze(self, query: Query | str,
                deadline: Deadline | float | None = None
                ) -> AnalyzeReport:
        """EXPLAIN ANALYZE through the router, with the cluster trailer."""
        query, deadline = self._prepare(query, deadline)
        pids = partitions_for_query(query, self.partitioner)
        route = self._route_base(pids)
        repairs_before = self.router.stats.read_repairs
        view = self._view(frozenset(pids), deadline)
        report = view.engine.analyze(query)
        self._finish_route(route, repairs_before)
        report.cluster = dict(self.last_route)
        return report

    def explain_analyze(self, query: Query | str) -> str:
        return self.analyze(query).render()

    def explain(self, query: Query | str) -> str:
        query, _ = self._prepare(query, None)
        pids = partitions_for_query(query, self.partitioner)
        view = self._view(frozenset(pids), None)
        return view.engine.explain(query)

    # -- helpers --------------------------------------------------------------

    def _prepare(self, query, deadline):
        if isinstance(query, str):
            query = parse_query(query)
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline(self.clock, float(deadline))
        return query, deadline

    def _route_base(self, pids) -> dict[str, Any]:
        total = len(self.partitioner.partitions)
        return {
            "shards_contacted": len(pids),
            "shards_total": total,
            "shards_pruned": total - len(pids),
            "rf": self.router.config.replication_factor,
            "read_quorum": self.router.config.read_quorum,
        }

    def _finish_route(self, route: dict[str, Any],
                      repairs_before: int) -> None:
        route["read_repairs"] = (self.router.stats.read_repairs
                                 - repairs_before)
        route["hints_queued"] = self.router.hints_outstanding()
        self.last_route = route

    def _view(self, pids: frozenset[int],
              deadline: Deadline | None) -> _ClusterView:
        cached = self._views.get(pids)
        if (cached is not None
                and cached.store_version == self.router.store_version):
            # LRU touch: move to the end of the (ordered) dict.
            self._views.pop(pids)
            self._views[pids] = cached
            return cached
        view = self._materialize(pids, deadline)
        self._views.pop(pids, None)
        while len(self._views) >= _VIEW_CACHE_CAPACITY:
            self._views.pop(next(iter(self._views)))
        self._views[pids] = view
        return view

    def _materialize(self, pids: frozenset[int],
                     deadline: Deadline | None) -> _ClusterView:
        """Quorum-read the partitions into a fresh local overlay.

        Rows are inserted in ascending global row id, so insertion
        order — and with it every scan order, index row-id order, and
        clade-aggregate accumulation order — matches the single-node
        overlay restricted to these partitions, which is what makes
        results (including float aggregates and stable-sort ties)
        bit-identical.
        """
        store_version = self.router.store_version
        merged = self.router.read_partitions(pids, deadline)
        by_table: dict[str, list] = {
            PROTEINS_TABLE: [], LIGANDS_TABLE: [], BINDINGS_TABLE: [],
        }
        for (table, row_id), versioned in merged.items():
            by_table[table].append((row_id, versioned.row))
        drugtree = DrugTree(self.tree)
        proteins = drugtree.tables[PROTEINS_TABLE]
        for _, row in sorted(by_table[PROTEINS_TABLE]):
            proteins.insert(proteins.schema.row_as_dict(row))
            drugtree._known_proteins.add(
                proteins.value(row, "protein_id")
            )
        # Mirrors DrugTree._restore_from_database: raw row insert plus
        # recomputed chemistry (molecule, fingerprint, similarity index).
        ligands = drugtree.tables[LIGANDS_TABLE]
        for _, row in sorted(by_table[LIGANDS_TABLE]):
            ligands.insert(ligands.schema.row_as_dict(row))
            ligand_id = ligands.value(row, "ligand_id")
            molecule = parse_smiles(ligands.value(row, "smiles"),
                                    name=ligand_id)
            fingerprint = circular_fingerprint(molecule)
            drugtree.fingerprints[ligand_id] = fingerprint
            drugtree.fingerprint_index.add(ligand_id, fingerprint)
            drugtree.molecules[ligand_id] = molecule
            drugtree._known_ligands.add(ligand_id)
        bindings = drugtree.tables[BINDINGS_TABLE]
        for _, row in sorted(by_table[BINDINGS_TABLE]):
            bindings.insert(bindings.schema.row_as_dict(row))
        drugtree.create_default_indexes()
        if self.statistics:
            # Cluster-wide statistics, not the subset's: the planner
            # must cost plans exactly like the single-node engine.
            drugtree._statistics = dict(self.statistics)
            drugtree._mutations_since_analyze = {
                name: 0 for name in drugtree.tables
            }
            drugtree.stats_epoch += 1
        engine = QueryEngine(drugtree, config=self.config)
        return _ClusterView(drugtree=drugtree, engine=engine,
                            store_version=store_version,
                            pids=pids)
