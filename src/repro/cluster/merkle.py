"""Per-partition merkle trees: cheap replica comparison for anti-entropy.

Two replicas of a partition agree iff their merkle roots agree; when
they do not, comparing the trees level by level narrows the divergence
to a handful of leaf buckets, so repair moves only the keys that
actually differ instead of streaming whole partitions.

Keys are assigned to a fixed number of leaf buckets by key hash (stable
under any insertion order), each bucket digests its sorted
``(key, version)`` pairs, and internal levels pairwise-combine digests
up to a single root. Versions — not row payloads — are hashed: a stale
replica holds an older version for the key, which is exactly the
difference repair needs to find.
"""

from __future__ import annotations

import hashlib

Key = tuple[str, int]


def _digest(payload: str) -> str:
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


class MerkleTree:
    """A merkle tree over one replica's ``key → version`` map."""

    __slots__ = ("bucket_count", "bucket_keys", "versions", "levels")

    def __init__(self, bucket_count: int,
                 bucket_keys: list[list[Key]],
                 versions: dict[Key, int],
                 levels: list[list[str]]) -> None:
        self.bucket_count = bucket_count
        self.bucket_keys = bucket_keys
        self.versions = versions
        self.levels = levels

    @staticmethod
    def bucket_of(key: Key, bucket_count: int) -> int:
        return int(_digest(repr(key))[:8], 16) % bucket_count

    @classmethod
    def build(cls, versions: dict[Key, int],
              bucket_count: int = 32) -> "MerkleTree":
        buckets: list[list[Key]] = [[] for _ in range(bucket_count)]
        for key in versions:
            buckets[cls.bucket_of(key, bucket_count)].append(key)
        leaf_hashes = []
        for keys in buckets:
            keys.sort()
            leaf_hashes.append(_digest(repr(
                [(key, versions[key]) for key in keys]
            )))
        levels = [leaf_hashes]
        while len(levels[-1]) > 1:
            below = levels[-1]
            levels.append([
                _digest(below[i] + (below[i + 1]
                                    if i + 1 < len(below) else ""))
                for i in range(0, len(below), 2)
            ])
        return cls(bucket_count, buckets, dict(versions), levels)

    @property
    def root_hash(self) -> str:
        return self.levels[-1][0]

    def diff_buckets(self, other: "MerkleTree") -> list[int]:
        """Leaf bucket indexes whose digests differ, walking top-down.

        Equal subtrees are skipped at the highest level where their
        combined digests match — the whole point of the tree shape.
        """
        if self.bucket_count != other.bucket_count:
            raise ValueError("cannot diff trees with different widths")
        differing: list[int] = []
        stack = [(len(self.levels) - 1, 0)]
        while stack:
            level, index = stack.pop()
            if self.levels[level][index] == other.levels[level][index]:
                continue
            if level == 0:
                differing.append(index)
                continue
            below = len(self.levels[level - 1])
            left = index * 2
            if left < below:
                stack.append((level - 1, left))
            if left + 1 < below:
                stack.append((level - 1, left + 1))
        differing.sort()
        return differing

    def diff_keys(self, other: "MerkleTree") -> set[Key]:
        """Keys that may differ between the two replicas (both sides'
        keys of every differing bucket — covers missing and stale)."""
        keys: set[Key] = set()
        for bucket in self.diff_buckets(other):
            keys.update(self.bucket_keys[bucket])
            keys.update(other.bucket_keys[bucket])
        return keys

    def __repr__(self) -> str:
        return (f"MerkleTree(root={self.root_hash[:12]}, "
                f"keys={len(self.versions)}, "
                f"buckets={self.bucket_count})")
