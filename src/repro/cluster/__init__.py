"""Tree-aware sharded replication: the simulated multi-node cluster.

The single-node engine owns one overlay; this package range-partitions
that overlay by the Euler-tour clade intervals of
:mod:`repro.core.labeling`, replicates each partition across a group of
simulated nodes, and fronts the whole thing with a :class:`Router` that
speaks quorum reads (newest-version-wins with read repair),
sloppy-quorum writes with hinted handoff, and merkle-tree anti-entropy
repair. :class:`ClusterEngine` keeps query semantics bit-identical to
the single-node engine by materializing the contacted partitions into a
local overlay view and delegating to a normal
:class:`~repro.core.query.executor.QueryEngine`.

Everything runs in virtual time against a
:class:`~repro.sources.clock.SimulatedClock`, so node-level chaos
(:mod:`repro.cluster.chaos`) replays deterministically.

See docs/CLUSTER.md for topology, quorum math, and the repair
walk-through.
"""

from repro.cluster.chaos import (
    NODE_SCENARIOS,
    NetworkPartition,
    NodeCrash,
    NodeFaultSchedule,
    SlowNode,
    node_scenario_schedule,
)
from repro.cluster.engine import ClusterEngine
from repro.cluster.merkle import MerkleTree
from repro.cluster.node import ClusterNode, Hint, VersionedRow
from repro.cluster.partitioning import (
    CladePartitioner,
    Partition,
    partitions_for_query,
    scan_interval,
)
from repro.cluster.replication import Cluster, ClusterConfig, ReplicaGroup
from repro.cluster.router import AntiEntropyReport, Router, VerifyReport

__all__ = [
    "NODE_SCENARIOS",
    "AntiEntropyReport",
    "CladePartitioner",
    "Cluster",
    "ClusterConfig",
    "ClusterEngine",
    "ClusterNode",
    "Hint",
    "MerkleTree",
    "NetworkPartition",
    "NodeCrash",
    "NodeFaultSchedule",
    "Partition",
    "ReplicaGroup",
    "Router",
    "SlowNode",
    "VerifyReport",
    "VersionedRow",
    "node_scenario_schedule",
    "partitions_for_query",
    "scan_interval",
]
