"""The cluster router: quorum I/O, hinted handoff, anti-entropy.

The router is the only component clients talk to. It owns the lamport
version counter that orders writes, and implements the three replica
protocols:

* **Quorum reads** — contact a partition's replicas in preference
  order until ``read_quorum`` answer; merge newest-version-wins; push
  winners back to any contacted replica that returned stale or missing
  rows (*read repair*).
* **Sloppy-quorum writes** — try every replica of the group; a write
  succeeds with ``write_quorum`` acks, and each missed replica gets a
  :class:`~repro.cluster.node.Hint` parked on an acked node, replayed
  by :meth:`drain_hints` once the target is reachable again.
* **Merkle anti-entropy** — per replica group, compare per-partition
  merkle trees, pull the newest version of every differing key, and
  push it to the replicas that lack it, repeating rounds until a full
  round repairs nothing (:meth:`anti_entropy`); :meth:`verify` is the
  read-only check that all live replicas agree.

Per-node circuit breakers (the :class:`~repro.sources.resilience
.BreakerBoard` lifted to node identity) make a crashed node cost its
RPC timeout only ``failure_threshold`` times — after that it is
skipped instantly until its breaker half-opens. Partition fan-out runs
on worker threads inside ``clock.concurrently()``, so a multi-shard
read is charged the *max*, not the sum, of its per-shard latencies —
same discipline as the fetch scheduler.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.node import ClusterNode, Hint, VersionedRow
from repro.cluster.replication import Cluster
from repro.errors import DeadlineExceededError, NodeDownError, QuorumError
from repro.obs import get_metrics, get_tracer
from repro.sources.resilience import (
    BreakerBoard,
    BreakerConfig,
    Deadline,
)

#: Breaker identity of the replica RPC path; combined with the node id
#: this yields per-node breakers named ``cluster.replica@node-N``.
BREAKER_SOURCE = "cluster"
BREAKER_KIND = "replica"


@dataclass
class RouterStats:
    """Cumulative router counters (mutated under the router lock)."""

    reads: int = 0
    writes: int = 0
    read_repairs: int = 0
    hints_queued: int = 0
    hints_delivered: int = 0
    quorum_failures: int = 0
    breaker_skips: int = 0
    node_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class AntiEntropyReport:
    """What one :meth:`Router.anti_entropy` pass did."""

    rounds: int = 0
    keys_repaired: int = 0
    entries_pushed: int = 0
    groups_repaired: int = 0
    #: Partitions skipped because fewer than two replicas were live.
    groups_skipped: tuple[int, ...] = ()
    converged: bool = True

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "keys_repaired": self.keys_repaired,
            "entries_pushed": self.entries_pushed,
            "groups_repaired": self.groups_repaired,
            "groups_skipped": list(self.groups_skipped),
            "converged": self.converged,
        }


@dataclass
class VerifyReport:
    """Read-only replica agreement check across all groups."""

    groups: list[dict] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return all(group["roots_equal"] and not group["skipped"]
                   for group in self.groups)

    @property
    def divergent_keys(self) -> int:
        return sum(group["diff_keys"] for group in self.groups)

    def as_dict(self) -> dict:
        return {"converged": self.converged,
                "divergent_keys": self.divergent_keys,
                "groups": list(self.groups)}


class Router:
    """Fronts a :class:`~repro.cluster.replication.Cluster`."""

    def __init__(self, cluster: Cluster,
                 breakers: BreakerBoard | None = None,
                 breaker_config: BreakerConfig | None = None) -> None:
        self.cluster = cluster
        self.clock = cluster.clock
        self.config = cluster.config
        self.breakers = breakers or BreakerBoard(
            self.clock,
            breaker_config or BreakerConfig(failure_threshold=3,
                                            reset_timeout_s=10.0),
        )
        self._lock = threading.Lock()
        self._version = 0
        self._next_row_id: dict[str, int] = {}
        self.stats = RouterStats()
        #: Bumped on every accepted write; view caches key on it.
        self.store_version = 0

    # -- versions and row ids ------------------------------------------------

    def _next_version(self) -> int:
        with self._lock:
            self._version += 1
            return self._version

    def allocate_row_id(self, table: str) -> int:
        with self._lock:
            row_id = self._next_row_id.get(table, 0)
            self._next_row_id[table] = row_id + 1
            return row_id

    def _note_row_id(self, table: str, row_id: int) -> None:
        with self._lock:
            current = self._next_row_id.get(table, 0)
            if row_id >= current:
                self._next_row_id[table] = row_id + 1

    # -- breaker-gated RPC helper --------------------------------------------

    def _breaker_for(self, node_id: str):
        return self.breakers.breaker(BREAKER_SOURCE, BREAKER_KIND,
                                     node=node_id)

    def _call(self, node: ClusterNode, method, *args) -> tuple[bool, object]:
        """One breaker-gated RPC; ``(ok, result)``, never raises."""
        breaker = self._breaker_for(node.node_id)
        if not breaker.allow():
            with self._lock:
                self.stats.breaker_skips += 1
            return False, None
        try:
            result = method(*args)
        except NodeDownError:
            breaker.record_failure()
            with self._lock:
                self.stats.node_errors += 1
            return False, None
        breaker.record_success()
        return True, result

    # -- writes ---------------------------------------------------------------

    def write(self, table: str, row_id: int, row: tuple,
              leaf_pre: int | None = None,
              deadline: Deadline | None = None) -> int:
        """Replicate one row; returns the version stamped on it.

        Partitioned tables route by ``leaf_pre``; anything else lands
        in the global partition. Sloppy quorum: ``write_quorum`` acks
        from the replica group make the write durable, and every
        missed replica gets a hint parked on an acked node (when
        hinted handoff is on).
        """
        partitioner = self.cluster.partitioner
        if leaf_pre is not None:
            pid = partitioner.partition_for_position(leaf_pre).pid
        else:
            pid = partitioner.ligands_partition.pid
        versioned = VersionedRow(self._next_version(), row)
        group = self.cluster.group_for(pid)
        acked: list[str] = []
        missed: list[str] = []
        for node_id in group.node_ids:
            if deadline is not None and deadline.exceeded():
                raise DeadlineExceededError(
                    f"deadline exceeded writing partition {pid}"
                )
            node = self.cluster.node(node_id)
            ok, _ = self._call(node, node.put, pid, table, row_id,
                               versioned)
            (acked if ok else missed).append(node_id)
        if len(acked) < self.config.write_quorum:
            with self._lock:
                self.stats.quorum_failures += 1
            raise QuorumError(
                f"write quorum failed on partition {pid}: "
                f"{len(acked)}/{self.config.write_quorum} acks"
            )
        if missed and self.config.hinted_handoff:
            holder = self.cluster.node(acked[0])
            for target in missed:
                hint = Hint(target, pid, table, row_id, versioned)
                ok, _ = self._call(holder, holder.store_hint, hint)
                if ok:
                    with self._lock:
                        self.stats.hints_queued += 1
                    get_metrics().counter("cluster.hints.queued").inc()
        self._note_row_id(table, row_id)
        with self._lock:
            self.stats.writes += 1
            self.store_version += 1
        return versioned.version

    # -- quorum reads ---------------------------------------------------------

    def read_partition(self, pid: int,
                       deadline: Deadline | None = None
                       ) -> dict[tuple[str, int], VersionedRow]:
        """R-of-N read of one partition, merged newest-version-wins."""
        group = self.cluster.group_for(pid)
        answers: list[tuple[ClusterNode, dict]] = []
        for node_id in group.node_ids:
            if len(answers) >= self.config.read_quorum:
                break
            if deadline is not None and deadline.exceeded():
                raise DeadlineExceededError(
                    f"deadline exceeded reading partition {pid}"
                )
            node = self.cluster.node(node_id)
            ok, data = self._call(node, node.get_partition, pid)
            if ok:
                answers.append((node, data))
        if len(answers) < self.config.read_quorum:
            with self._lock:
                self.stats.quorum_failures += 1
            raise QuorumError(
                f"read quorum failed on partition {pid}: "
                f"{len(answers)}/{self.config.read_quorum} replicas"
            )
        merged: dict[tuple[str, int], VersionedRow] = {}
        for _, data in answers:
            for key, versioned in data.items():
                current = merged.get(key)
                if current is None or versioned.version > current.version:
                    merged[key] = versioned
        self._read_repair(pid, answers, merged)
        return merged

    def _read_repair(self, pid: int,
                     answers: list[tuple[ClusterNode, dict]],
                     merged: dict) -> None:
        """Push merge winners back to stale contacted replicas."""
        for node, data in answers:
            stale = {
                key: versioned for key, versioned in merged.items()
                if key not in data
                or data[key].version < versioned.version
            }
            if not stale:
                continue
            ok, repaired = self._call(node, node.put_bulk, pid, stale)
            if ok and repaired:
                with self._lock:
                    self.stats.read_repairs += int(repaired)
                get_metrics().counter(
                    "cluster.read_repairs"
                ).inc(int(repaired))

    def read_partitions(self, pids,
                        deadline: Deadline | None = None
                        ) -> dict[tuple[str, int], VersionedRow]:
        """Quorum-read many partitions, fanned out on worker threads.

        Inside ``clock.concurrently()`` each partition's replica
        round-trips are charged on its own task timeline, so total
        virtual latency is the slowest shard, not the sum — the same
        contract as the fetch scheduler's scatter/gather.
        """
        pids = sorted(set(pids))
        self.drain_hints()
        merged: dict[tuple[str, int], VersionedRow] = {}
        if not pids:
            return merged
        with get_tracer().span("cluster.fanout") as span:
            span.set("partitions", len(pids))
            with self.clock.concurrently() as region:
                with ThreadPoolExecutor(
                    max_workers=min(8, len(pids)),
                    thread_name_prefix="cluster-router",
                ) as pool:
                    futures = [
                        pool.submit(self._read_task, region, pid,
                                    deadline)
                        for pid in pids
                    ]
                    parts = [future.result() for future in futures]
        # Partitions are disjoint keyspaces: plain union, in pid order.
        for part in parts:
            merged.update(part)
        with self._lock:
            self.stats.reads += 1
        get_metrics().counter("cluster.reads").inc()
        return merged

    def _read_task(self, region, pid: int,
                   deadline: Deadline | None) -> dict:
        with region.task():
            return self.read_partition(pid, deadline)

    # -- hinted handoff -------------------------------------------------------

    def drain_hints(self) -> int:
        """Deliver parked hints whose targets are reachable again.

        Called opportunistically before every fan-out read (the
        simulation's stand-in for the gossip-triggered replay real
        stores run); undeliverable hints are re-parked.
        """
        delivered = 0
        for node_id in self.cluster.node_ids:
            node = self.cluster.node(node_id)
            if node.hint_count() == 0 or node.is_down():
                continue
            ok, hints = self._call(node, node.take_hints)
            if not ok:
                continue
            keep: list[Hint] = []
            for hint in hints:
                target = self.cluster.node(hint.target)
                if target.is_down():
                    keep.append(hint)
                    continue
                ok, _ = self._call(target, target.put, hint.pid,
                                   hint.table, hint.row_id,
                                   hint.versioned)
                if ok:
                    delivered += 1
                else:
                    keep.append(hint)
            if keep:
                node.restore_hints(keep)
        if delivered:
            with self._lock:
                self.stats.hints_delivered += delivered
            get_metrics().counter(
                "cluster.hints.delivered"
            ).inc(delivered)
        return delivered

    def hints_outstanding(self) -> int:
        return sum(self.cluster.node(node_id).hint_count()
                   for node_id in self.cluster.node_ids)

    # -- merkle anti-entropy --------------------------------------------------

    def anti_entropy(self, max_rounds: int = 4) -> AntiEntropyReport:
        """Repair every replica group until a full round is a no-op.

        Each round, per group: compare the live replicas' merkle
        trees; for every differing key pull the newest version from
        whichever replica holds it and push it to the replicas that
        lack it. Newest-wins repair is monotone, so with stable faults
        one round converges a group and the second round proves it —
        ``rounds`` is bounded by ``max_rounds`` regardless.
        """
        report = AntiEntropyReport()
        repaired_keys: set = set()
        skipped: set[int] = set()
        for _ in range(max_rounds):
            report.rounds += 1
            round_pushes = 0
            for pid in sorted(self.cluster.groups):
                pushes, keys, group_skipped = self._repair_group(pid)
                round_pushes += pushes
                repaired_keys.update(keys)
                if group_skipped:
                    skipped.add(pid)
                elif pushes:
                    report.groups_repaired += 1
            if round_pushes == 0:
                break
            report.entries_pushed += round_pushes
        report.keys_repaired = len(repaired_keys)
        report.groups_skipped = tuple(sorted(skipped))
        report.converged = not skipped and self.verify().converged
        get_metrics().counter(
            "cluster.repair.keys"
        ).inc(report.keys_repaired)
        return report

    def _live_replicas(self, pid: int) -> list[ClusterNode]:
        group = self.cluster.group_for(pid)
        return [self.cluster.node(node_id)
                for node_id in group.node_ids
                if not self.cluster.node(node_id).is_down()]

    def _repair_group(self, pid: int) -> tuple[int, set, bool]:
        """One repair pass over one group: ``(pushes, keys, skipped)``."""
        live = self._live_replicas(pid)
        if len(live) < 2:
            return 0, set(), len(live) < len(
                self.cluster.group_for(pid).node_ids)
        trees = []
        for node in live:
            ok, tree = self._call(node, node.merkle, pid)
            if ok:
                trees.append((node, tree))
        if len(trees) < 2:
            return 0, set(), True
        baseline = trees[0][1]
        if all(tree.root_hash == baseline.root_hash
               for _, tree in trees[1:]):
            return 0, set(), False
        # Any key differing between two replicas differs from the
        # baseline on at least one of them, so baseline diffs cover all.
        diff_keys: set = set()
        for _, tree in trees[1:]:
            diff_keys.update(baseline.diff_keys(tree))
        # Pull each key's newest version from the replica that has it.
        wanted: dict[ClusterNode, list] = {}
        winners_version: dict[tuple, int] = {}
        for key in sorted(diff_keys):
            best_node, best_version = None, -1
            for node, tree in trees:
                version = tree.versions.get(key, -1)
                if version > best_version:
                    best_node, best_version = node, version
            wanted.setdefault(best_node, []).append(key)
            winners_version[key] = best_version
        winners: dict[tuple, VersionedRow] = {}
        for node, keys in wanted.items():
            ok, rows = self._call(node, node.fetch, pid, keys)
            if ok:
                winners.update(rows)
        # Push winners to every replica holding less.
        pushes = 0
        pushed_keys: set = set()
        for node, tree in trees:
            needed = {
                key: versioned for key, versioned in winners.items()
                if tree.versions.get(key, -1) < versioned.version
            }
            if not needed:
                continue
            ok, applied = self._call(node, node.put_bulk, pid, needed)
            if ok:
                pushes += int(applied)
                pushed_keys.update(needed)
        return pushes, pushed_keys, False

    def verify(self) -> VerifyReport:
        """Do all live replicas of every group agree? (Read-only.)"""
        report = VerifyReport()
        for pid in sorted(self.cluster.groups):
            group = self.cluster.group_for(pid)
            live = self._live_replicas(pid)
            trees = []
            for node in live:
                ok, tree = self._call(node, node.merkle, pid)
                if ok:
                    trees.append(tree)
            skipped = len(trees) < len(group.node_ids)
            roots_equal = (len({tree.root_hash for tree in trees}) <= 1
                           if trees else False)
            diff_keys: set = set()
            if trees and not roots_equal:
                baseline = trees[0]
                for tree in trees[1:]:
                    diff_keys.update(baseline.diff_keys(tree))
            report.groups.append({
                "pid": pid,
                "replicas": list(group.node_ids),
                "live": [node.node_id for node in live],
                "roots_equal": roots_equal,
                "diff_keys": len(diff_keys),
                "skipped": skipped,
            })
        return report
