"""Clade-interval range partitioning of the overlay tables.

The Euler-tour labeling already maps every clade to a half-open leaf
interval ``[leaf_low, leaf_high)``, and every ``proteins`` / ``bindings``
row carries its leaf position in the ``leaf_pre`` column. Partitioning
*by those intervals* means a subtree predicate — the dominant DrugTree
query — maps to a contiguous run of partitions, so the router fans a
clade-pruned scan out only to the shards whose intervals intersect it.

:class:`CladePartitioner` splits the tree top-down (always the
largest-leaf-count clade next) until it has the requested number of
disjoint clade intervals covering ``[0, leaf_count)``. The ``ligands``
table has no tree position; it lives in one dedicated *global*
partition replicated like any other.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.labeling import IntervalLabeling
from repro.core.overlay import (
    BINDINGS_TABLE,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
)
from repro.core.query.ast import Query
from repro.errors import ClusterError

#: Tables keyed by ``leaf_pre`` and split across the interval partitions.
PARTITIONED_TABLES = (PROTEINS_TABLE, BINDINGS_TABLE)


@dataclass(frozen=True)
class Partition:
    """One shard: a half-open leaf-position interval, or the global one.

    ``low is None`` marks the un-keyed (global) partition that holds
    tables without a tree position (currently ``ligands``).
    """

    pid: int
    low: int | None
    high: int | None
    name: str = ""

    def __post_init__(self) -> None:
        if (self.low is None) != (self.high is None):
            raise ClusterError("partition interval must be both-or-neither")
        if self.low is not None and self.low >= self.high:
            raise ClusterError(
                f"partition {self.pid} has empty interval "
                f"[{self.low}, {self.high})"
            )

    @property
    def is_global(self) -> bool:
        return self.low is None

    @property
    def leaf_count(self) -> int:
        return 0 if self.is_global else self.high - self.low

    def contains(self, position: int) -> bool:
        return (not self.is_global
                and self.low <= position < self.high)

    def intersects(self, low: int, high: int) -> bool:
        """Does ``[low, high)`` overlap this partition's interval?"""
        if self.is_global or low >= high:
            return False
        return self.low < high and low < self.high

    def describe(self) -> str:
        if self.is_global:
            return f"p{self.pid} (global) {self.name}"
        return f"p{self.pid} [{self.low}, {self.high}) {self.name}"


class CladePartitioner:
    """Clade-aligned range partitions over one labeled tree.

    The split walk starts at the root and repeatedly replaces the
    largest remaining clade with its children until ``n_partitions``
    disjoint intervals exist (or every remaining clade is a single
    leaf). Partition boundaries therefore always coincide with clade
    boundaries, which is what makes subtree pruning exact: a clade
    interval either misses a partition entirely or the partition holds
    only rows the query may need.
    """

    def __init__(self, labeling: IntervalLabeling,
                 n_partitions: int = 4) -> None:
        if n_partitions < 1:
            raise ClusterError("need at least one partition")
        if labeling.leaf_count < 1:
            raise ClusterError("cannot partition a tree with no leaves")
        self.labeling = labeling
        self.interval_partitions = self._split(n_partitions)
        self.ligands_partition = Partition(
            pid=len(self.interval_partitions), low=None, high=None,
            name="ligands",
        )
        self.partitions = (*self.interval_partitions,
                           self.ligands_partition)
        self._lows = [p.low for p in self.interval_partitions]

    def _split(self, n_partitions: int) -> tuple[Partition, ...]:
        labeling = self.labeling

        def label(node):
            return labeling.label_of_node(node)

        chosen = [labeling.tree.root]
        while len(chosen) < n_partitions:
            splittable = [
                node for node in chosen
                if sum(1 for child in node.children
                       if label(child).leaf_count > 0) > 1
            ]
            if not splittable:
                break
            # Largest clade next; leaf_low breaks ties deterministically.
            victim = max(splittable,
                         key=lambda node: (label(node).leaf_count,
                                           -label(node).leaf_low))
            chosen.remove(victim)
            chosen.extend(child for child in victim.children
                          if label(child).leaf_count > 0)
        chosen.sort(key=lambda node: label(node).leaf_low)
        partitions = []
        for pid, node in enumerate(chosen):
            node_label = label(node)
            partitions.append(Partition(
                pid=pid,
                low=node_label.leaf_low,
                high=node_label.leaf_high,
                name=node.name
                or f"clade[{node_label.leaf_low}:{node_label.leaf_high})",
            ))
        return tuple(partitions)

    # -- lookup -------------------------------------------------------------

    def partition_for_position(self, position: int) -> Partition:
        """The interval partition owning one leaf position."""
        slot = bisect_right(self._lows, position) - 1
        if slot >= 0:
            partition = self.interval_partitions[slot]
            if partition.contains(position):
                return partition
        raise ClusterError(f"no partition owns leaf position {position}")

    def partitions_intersecting(self, low: int,
                                high: int) -> list[Partition]:
        """Interval partitions overlapping ``[low, high)``, in order."""
        return [p for p in self.interval_partitions
                if p.intersects(low, high)]

    def describe(self) -> list[str]:
        return [p.describe() for p in self.partitions]


def scan_interval(query: Query,
                  labeling: IntervalLabeling) -> tuple[int, int] | None:
    """The half-open ``leaf_pre`` interval a query can touch, if bounded.

    Combines the subtree filter (rewritten by the planner into exactly
    this leaf range) with any explicit ``leaf_pre`` comparisons.
    ``None`` means unbounded — every interval partition may hold rows.
    An unknown subtree name is left to the engine, which reports it the
    same way the single-node engine would.
    """
    low, high = 0, labeling.leaf_count
    constrained = False
    if (query.subtree is not None
            and labeling.has_name(query.subtree.node_name)):
        node_low, node_high = labeling.leaf_range(query.subtree.node_name)
        low, high = max(low, node_low), min(high, node_high)
        constrained = True
    for predicate in query.predicates:
        if predicate.column != "leaf_pre":
            continue
        op, value = predicate.op, predicate.value
        if op == "=":
            low, high = max(low, int(value)), min(high, int(value) + 1)
        elif op == ">=":
            low = max(low, int(value))
        elif op == ">":
            low = max(low, int(value) + 1)
        elif op == "<":
            high = min(high, int(value))
        elif op == "<=":
            high = min(high, int(value) + 1)
        elif op == "in" and predicate.value:
            values = [int(v) for v in predicate.value]
            low = max(low, min(values))
            high = min(high, max(values) + 1)
        else:
            continue
        constrained = True
    if not constrained:
        return None
    return (low, max(low, high))


def partitions_for_query(query: Query,
                         partitioner: CladePartitioner) -> list[int]:
    """Partition ids a query must contact — the pruning decision.

    Partitioned tables contribute the interval partitions intersecting
    the query's ``leaf_pre`` interval (all of them when unbounded); the
    global ligands partition is added whenever the query touches the
    ligands table.
    """
    tables = query.tables()
    pids: list[int] = []
    if any(table in tables for table in PARTITIONED_TABLES):
        interval = scan_interval(query, partitioner.labeling)
        if interval is None:
            pids.extend(p.pid for p in partitioner.interval_partitions)
        else:
            pids.extend(p.pid for p in
                        partitioner.partitions_intersecting(*interval))
    if LIGANDS_TABLE in tables:
        pids.append(partitioner.ligands_partition.pid)
    return pids
