"""Node-level chaos: deterministic fault windows for cluster nodes.

Extends the PR 4 chaos harness from *source* faults to *node* faults.
The same design rules apply: every fault is a window in **virtual
time**, schedules are plain data built from a seed, and a replay with
the same seed produces bit-identical behaviour. Three fault shapes:

* :class:`NodeCrash` — the node answers nothing inside the window;
  every RPC against it charges the RPC timeout and fails.
* :class:`NetworkPartition` — a *set* of nodes becomes unreachable
  from the router for the window (the nodes themselves are healthy —
  which is exactly how replicas diverge).
* :class:`SlowNode` — the node answers, but every RPC pays
  ``extra_s`` additional virtual latency (gray failure: slow, not
  dead, the case breakers and quorums must ride out together).

:func:`node_scenario_schedule` builds the named scenarios the
``repro chaos`` CLI exposes next to the source-level ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import ClusterError, SourceError


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ClusterError("fault window cannot start before t=0")
    if end_s <= start_s:
        raise ClusterError("fault window must end after it starts")


@dataclass(frozen=True)
class NodeCrash:
    """One node is down (crashed) for ``[start_s, end_s)``."""

    node_id: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)

    def down_at(self, now_s: float, node_id: str) -> bool:
        return (node_id == self.node_id
                and self.start_s <= now_s < self.end_s)


@dataclass(frozen=True)
class NetworkPartition:
    """A set of nodes is unreachable for ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    unreachable: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not self.unreachable:
            raise ClusterError("network partition needs nodes to cut off")

    def down_at(self, now_s: float, node_id: str) -> bool:
        return (node_id in self.unreachable
                and self.start_s <= now_s < self.end_s)


@dataclass(frozen=True)
class SlowNode:
    """One node pays extra latency per RPC for ``[start_s, end_s)``."""

    node_id: str
    start_s: float
    end_s: float
    extra_s: float = 0.05

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.extra_s <= 0:
            raise ClusterError("slow-node extra latency must be positive")

    def extra_at(self, now_s: float, node_id: str) -> float:
        if (node_id == self.node_id
                and self.start_s <= now_s < self.end_s):
            return self.extra_s
        return 0.0


@dataclass(frozen=True)
class NodeEffect:
    """What the fault schedule says about one node right now."""

    down: bool = False
    extra_latency_s: float = 0.0


class NodeFaultSchedule:
    """All node-fault windows of one chaos scenario.

    Pure data: the effect on a node at virtual time *t* is a fold over
    the windows, so the same schedule replayed against the same clock
    produces the same faults in the same order.
    """

    def __init__(self, events: tuple = (), seed: int = 0) -> None:
        self.events = tuple(events)
        self.seed = seed

    def effect_for(self, node_id: str, now_s: float) -> NodeEffect:
        down = False
        extra = 0.0
        for event in self.events:
            if isinstance(event, (NodeCrash, NetworkPartition)):
                if event.down_at(now_s, node_id):
                    down = True
            elif isinstance(event, SlowNode):
                extra += event.extra_at(now_s, node_id)
        return NodeEffect(down=down, extra_latency_s=extra)

    def horizon_s(self) -> float:
        """Virtual time after which every fault window has closed."""
        return max((event.end_s for event in self.events), default=0.0)

    def shifted(self, offset_s: float) -> "NodeFaultSchedule":
        """The same schedule with every window moved by *offset_s*.

        Scenario windows are authored relative to t=0; replays shift
        them to whatever the clock reads when the replay starts (e.g.
        after cluster seeding has already consumed virtual time).
        """
        return NodeFaultSchedule(
            tuple(replace(event, start_s=event.start_s + offset_s,
                          end_s=event.end_s + offset_s)
                  for event in self.events),
            seed=self.seed,
        )

    def describe(self) -> list[str]:
        lines = []
        for event in self.events:
            if isinstance(event, NodeCrash):
                lines.append(f"crash {event.node_id} "
                             f"[{event.start_s:g}, {event.end_s:g})")
            elif isinstance(event, NetworkPartition):
                cut = ", ".join(sorted(event.unreachable))
                lines.append(f"partition {{{cut}}} "
                             f"[{event.start_s:g}, {event.end_s:g})")
            else:
                lines.append(f"slow {event.node_id} +{event.extra_s:g}s "
                             f"[{event.start_s:g}, {event.end_s:g})")
        return lines


#: Node-level scenario names, listed by ``repro chaos`` next to the
#: source-level ones from :mod:`repro.sources.chaos`.
NODE_SCENARIOS = ("node_calm", "node_crash", "split_brain", "slow_node")


def node_scenario_schedule(name: str, node_ids: tuple[str, ...],
                           seed: int = 0) -> NodeFaultSchedule:
    """A named, seed-replayable node-fault schedule over *node_ids*."""
    node_ids = tuple(node_ids)
    if name not in NODE_SCENARIOS:
        raise SourceError(
            f"unknown node chaos scenario {name!r} "
            f"(known: {NODE_SCENARIOS})"
        )
    if not node_ids:
        raise ClusterError("node scenario needs at least one node")
    if name == "node_calm":
        return NodeFaultSchedule((), seed=seed)
    rng = random.Random(seed)
    if name == "node_crash":
        victim = node_ids[rng.randrange(len(node_ids))]
        start = 2.0 + rng.random() * 3.0
        return NodeFaultSchedule(
            (NodeCrash(victim, start, start + 60.0),), seed=seed,
        )
    if name == "split_brain":
        count = max(1, len(node_ids) // 2)
        cut = frozenset(rng.sample(node_ids, count))
        return NodeFaultSchedule(
            (NetworkPartition(4.0, 40.0, unreachable=cut),), seed=seed,
        )
    # slow_node
    victim = node_ids[rng.randrange(len(node_ids))]
    extra = 0.1 + rng.random() * 0.2
    return NodeFaultSchedule(
        (SlowNode(victim, 1.0, 80.0, extra_s=extra),), seed=seed,
    )
