"""The million-user serving layer: multi-tenant frontend over one tree.

Everything here runs in *virtual* time on a deterministic event loop —
see :mod:`repro.serving.frontend` for the architecture overview and
``docs/SERVING.md`` for the prose version.
"""

from repro.serving.admission import (
    REASON_LATE,
    REASON_OVERLOAD,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    AdmissionConfig,
    AdmissionController,
    Rejection,
    ServiceCostModel,
)
from repro.serving.cache import SharedCacheFront
from repro.serving.frontend import (
    KINDS,
    FrontendConfig,
    Outcome,
    Request,
    ServingFrontend,
    ServingReport,
    TenantReport,
)
from repro.serving.scheduler import (
    POLICIES,
    FairScheduler,
    QueuedRequest,
)
from repro.serving.tenancy import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantRegistry,
    TenantStats,
    TokenBucket,
)

__all__ = [
    "DEFAULT_TENANT",
    "KINDS",
    "POLICIES",
    "REASON_LATE",
    "REASON_OVERLOAD",
    "REASON_QUEUE_FULL",
    "REASON_RATE_LIMITED",
    "AdmissionConfig",
    "AdmissionController",
    "FairScheduler",
    "FrontendConfig",
    "Outcome",
    "QueuedRequest",
    "Rejection",
    "Request",
    "ServiceCostModel",
    "ServingFrontend",
    "ServingReport",
    "SharedCacheFront",
    "TenantConfig",
    "TenantRegistry",
    "TenantReport",
    "TenantStats",
    "TokenBucket",
]
