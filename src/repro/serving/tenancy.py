"""Tenants: weights, rate limits, and per-tenant accounting.

A *tenant* is one organization's worth of mobile users sharing the
DrugTree service — a pharma group, a university lab, a public demo key.
The serving layer promises each tenant a weighted fair share of the
worker pool and protects every tenant from every other one: a flooding
tenant is rate-limited and queue-bounded before it can inflate anyone
else's p99.

All rate limiting runs in *virtual* time against the same
:class:`~repro.sources.clock.SimulatedClock` the rest of the system
charges, so a whole million-user traffic scenario replays
bit-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError

#: Tenant id used when a request does not name one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's serving contract."""

    tenant_id: str
    #: Weighted-fair-scheduling weight: a tenant with weight 2 drains
    #: its queue twice as fast as a weight-1 tenant under contention.
    weight: float = 1.0
    #: Bounded queue depth; arrivals beyond it are shed ``queue_full``.
    queue_limit: int = 64
    #: Sustained admitted requests per virtual second (token-bucket
    #: refill rate). ``None`` disables rate limiting for the tenant.
    rate_limit_rps: float | None = None
    #: Token-bucket burst size (capacity), in requests.
    burst: float = 8.0
    #: Fraction of the shared cache front this tenant may own. ``None``
    #: derives the fraction from the tenant's weight share.
    cache_quota_fraction: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ServingError("tenant needs a non-empty id")
        if self.weight <= 0:
            raise ServingError("tenant weight must be positive")
        if self.queue_limit < 1:
            raise ServingError("tenant queue limit must be >= 1")
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ServingError("tenant rate limit must be positive")
        if self.burst <= 0:
            raise ServingError("tenant burst must be positive")
        if self.cache_quota_fraction is not None \
                and not 0.0 < self.cache_quota_fraction <= 1.0:
            raise ServingError("cache quota fraction must be in (0, 1]")


class TokenBucket:
    """A virtual-time token bucket (``rate`` tokens/s, ``burst`` cap).

    Deterministic by construction: refill is computed lazily from the
    caller-supplied virtual ``now``, no background thread involved.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float,
                 now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ServingError("token bucket needs positive rate/burst")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def _refill(self, now: float) -> None:
        if now > self.updated_at:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated_at)
                              * self.rate)
            self.updated_at = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Spend *amount* tokens if available at virtual *now*."""
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def retry_after_s(self, now: float, amount: float = 1.0) -> float:
        """Virtual seconds until *amount* tokens will have refilled."""
        self._refill(now)
        missing = amount - self.tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate


@dataclass
class TenantStats:
    """Per-tenant serving tallies (all counts of requests)."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    within_slo: int = 0
    cache_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "within_slo": self.within_slo,
            "cache_hits": self.cache_hits,
        }


class TenantRegistry:
    """The frontend's tenant table: configs, buckets, live stats.

    Tenants not registered up front are materialized on first use with
    ``default_config`` (id swapped in) so an open-loop generator can
    invent tenants freely.
    """

    def __init__(self, configs: list[TenantConfig] | None = None,
                 default_config: TenantConfig | None = None,
                 now: float = 0.0) -> None:
        self._default = default_config or TenantConfig(DEFAULT_TENANT)
        self._configs: dict[str, TenantConfig] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._stats: dict[str, TenantStats] = {}
        self._now0 = now
        for config in configs or ():
            self.register(config)

    def register(self, config: TenantConfig) -> None:
        if config.tenant_id in self._configs:
            raise ServingError(
                f"tenant {config.tenant_id!r} already registered"
            )
        self._configs[config.tenant_id] = config
        if config.rate_limit_rps is not None:
            self._buckets[config.tenant_id] = TokenBucket(
                config.rate_limit_rps, config.burst, now=self._now0,
            )
        self._stats[config.tenant_id] = TenantStats()

    def config(self, tenant_id: str) -> TenantConfig:
        config = self._configs.get(tenant_id)
        if config is None:
            base = self._default
            config = TenantConfig(
                tenant_id=tenant_id,
                weight=base.weight,
                queue_limit=base.queue_limit,
                rate_limit_rps=base.rate_limit_rps,
                burst=base.burst,
                cache_quota_fraction=base.cache_quota_fraction,
            )
            self.register(config)
        return config

    def bucket(self, tenant_id: str) -> TokenBucket | None:
        self.config(tenant_id)  # materialize on first touch
        return self._buckets.get(tenant_id)

    def stats(self, tenant_id: str) -> TenantStats:
        self.config(tenant_id)
        return self._stats[tenant_id]

    def tenant_ids(self) -> list[str]:
        return list(self._configs)

    def weight_share(self, tenant_id: str) -> float:
        """This tenant's fraction of the total registered weight."""
        config = self.config(tenant_id)
        total = sum(c.weight for c in self._configs.values())
        return config.weight / total if total else 1.0

    def __len__(self) -> int:
        return len(self._configs)
