"""The multi-tenant serving frontend: virtual-time async execution.

:class:`ServingFrontend` sits in front of a
:class:`~repro.mobile.server.DrugTreeServer` and turns it from a
one-session-at-a-time component into a load-bearing service. It is a
deterministic discrete-event coordinator over *virtual* time:

* an open-loop request stream (see :mod:`repro.workloads.loadgen`)
  arrives at seeded virtual instants — arrivals do not wait for
  completions, exactly like real phones don't;
* admitted requests wait in bounded per-tenant queues drained in
  weighted-fair order (:mod:`repro.serving.scheduler`);
* a pool of virtual workers executes them concurrently: each worker is
  a task timeline inside one ``SimulatedClock.concurrently()`` region,
  so overlapping service costs the *max*, not the sum, and the region
  join advances the world clock by the makespan;
* admission control (:mod:`repro.serving.admission`) sheds requests
  whose estimated completion would blow the SLO — at ~zero virtual
  cost, with typed :class:`~repro.errors.OverloadError` carrying
  retry-after hints;
* a shared :class:`~repro.serving.cache.SharedCacheFront` answers hot
  repeats without touching the server, with per-tenant working-set
  quotas.

Every latency in the report is virtual, so a run is bit-deterministic
from its seeds: same load, same report, byte for byte. The event loop
runs on one real thread (worker timelines model concurrency in virtual
time); the mobile server below it is independently thread-safe for
deployments that use real pools.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DrugTreeError,
    OverloadError,
    ServingError,
    UnknownSessionError,
)
from repro.mobile.server import DrugTreeServer
from repro.obs import get_metrics, get_tracer
from repro.serving.admission import (
    REASON_LATE,
    REASON_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    Rejection,
    ServiceCostModel,
)
from repro.serving.cache import SharedCacheFront
from repro.serving.scheduler import FairScheduler
from repro.serving.tenancy import TenantConfig, TenantRegistry
from repro.sources.clock import SimulatedClock

#: Request kinds the frontend can execute against the mobile server.
KINDS = ("render", "query", "details")

#: Default base virtual service cost per kind, seconds. Covers the
#: server-side compute the simulation cannot charge as wall time;
#: federation round-trips add their own virtual latency on top.
DEFAULT_SERVICE_COST_S = {
    "open": 0.030,
    "render": 0.020,
    "query": 0.060,
    "details": 0.020,
    "hit": 0.002,
}


@dataclass(frozen=True)
class Request:
    """One client gesture arriving at the serving layer."""

    tenant: str
    session: str          # client-side session key, unique per tenant
    kind: str             # "render" | "query" | "details"
    target: str           # focus node, DTQL text, or protein id
    arrival_s: float      # virtual offset from the run start
    seq: int = 0          # arrival tie-break

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServingError(
                f"unknown request kind {self.kind!r}; "
                f"pick one of {', '.join(KINDS)}"
            )
        if self.arrival_s < 0:
            raise ServingError("arrival offset must be >= 0")


@dataclass
class Outcome:
    """One finished request: served, failed, or shed."""

    request: Request
    status: str                   # "ok" | "failed" | "shed"
    reason: str | None = None     # shed reason or failure class name
    queued_s: float = 0.0         # virtual wait before a worker
    service_s: float = 0.0        # virtual execution time
    latency_s: float = 0.0        # arrival -> completion, virtual
    retry_after_s: float = 0.0    # back-off hint on sheds
    cache: str = ""               # "hit" | "miss" | "" (not cacheable)
    rows: int = 0
    error: OverloadError | None = None

    @property
    def shed(self) -> bool:
        return self.status == "shed"


@dataclass(frozen=True)
class FrontendConfig:
    """Serving-layer knobs."""

    workers: int = 8
    policy: str = "wfq"                  # "wfq" | "fifo"
    #: ``None`` disables admission control (the naive baseline).
    admission: AdmissionConfig | None = field(
        default_factory=AdmissionConfig)
    #: Virtual-seconds SLO a completion must meet to count as goodput.
    slo_s: float = 1.0
    cache_capacity: int = 512
    #: 0 disables the shared cache front entirely.
    use_cache: bool = True
    service_cost_s: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SERVICE_COST_S))

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError("frontend needs >= 1 worker")
        if self.slo_s <= 0:
            raise ServingError("SLO must be positive")


@dataclass
class TenantReport:
    """One tenant's share of a serving run."""

    tenant: str
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    within_slo: int = 0
    cache_hits: int = 0
    p50_s: float = 0.0
    p99_s: float = 0.0
    p999_s: float = 0.0
    max_s: float = 0.0
    mean_queued_s: float = 0.0

    @property
    def goodput(self) -> float:
        """Fraction of *offered* requests completed within the SLO."""
        return self.within_slo / self.offered if self.offered else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "completed": self.completed,
            "failed": self.failed,
            "within_slo": self.within_slo,
            "cache_hits": self.cache_hits,
            "goodput": round(self.goodput, 6),
            "shed_rate": round(self.shed_rate, 6),
            "p50_s": round(self.p50_s, 6),
            "p99_s": round(self.p99_s, 6),
            "p999_s": round(self.p999_s, 6),
            "max_s": round(self.max_s, 6),
            "mean_queued_s": round(self.mean_queued_s, 6),
        }


@dataclass
class ServingReport:
    """Whole-run summary: totals, quantiles, per-tenant breakdown."""

    offered: int
    makespan_s: float
    slo_s: float
    tenants: dict[str, TenantReport]
    cache: dict[str, Any]
    cost_estimates: dict[str, float]

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    @property
    def within_slo(self) -> int:
        return sum(t.within_slo for t in self.tenants.values())

    @property
    def goodput(self) -> float:
        return self.within_slo / self.offered if self.offered else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def offered_rps(self) -> float:
        return self.offered / self.makespan_s if self.makespan_s else 0.0

    @property
    def goodput_rps(self) -> float:
        return (self.within_slo / self.makespan_s
                if self.makespan_s else 0.0)

    def as_dict(self) -> dict[str, Any]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "within_slo": self.within_slo,
            "goodput": round(self.goodput, 6),
            "shed_rate": round(self.shed_rate, 6),
            "makespan_s": round(self.makespan_s, 6),
            "offered_rps": round(self.offered_rps, 6),
            "goodput_rps": round(self.goodput_rps, 6),
            "slo_s": self.slo_s,
            "tenants": {tenant: report.as_dict()
                        for tenant, report in
                        sorted(self.tenants.items())},
            "cache": self.cache,
            "cost_estimates": {kind: round(cost, 6) for kind, cost
                               in sorted(self.cost_estimates.items())},
        }


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over raw virtual latencies."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServingFrontend:
    """Admission-controlled multi-tenant frontend over one server."""

    def __init__(self, server: DrugTreeServer, clock: SimulatedClock,
                 config: FrontendConfig | None = None,
                 tenants: list[TenantConfig] | None = None,
                 default_tenant: TenantConfig | None = None,
                 breakers=None) -> None:
        self.server = server
        self.clock = clock
        self.config = config or FrontendConfig()
        self.tenants = TenantRegistry(tenants, default_tenant,
                                      now=clock.now())
        self.scheduler = FairScheduler(self.tenants,
                                       policy=self.config.policy)
        self.cost_model = ServiceCostModel(
            priors=dict(self.config.service_cost_s))
        if breakers is None:
            breakers = getattr(server.federation, "breakers", None)
        self.admission: AdmissionController | None = None
        if self.config.admission is not None:
            self.admission = AdmissionController(
                self.config.admission, self.tenants, self.cost_model,
                workers=self.config.workers, breakers=breakers,
            )
        self.cache: SharedCacheFront | None = None
        if self.config.use_cache and self.config.cache_capacity > 0:
            self.cache = SharedCacheFront(
                self.tenants, capacity=self.config.cache_capacity)
        #: (tenant, session) -> server session id.
        self._server_sessions: dict[tuple[str, str], str] = {}
        self._latencies: dict[str, list[float]] = {}
        self._queued: dict[str, list[float]] = {}
        self.outcomes: list[Outcome] = []

    # -- the run ------------------------------------------------------------

    def run(self, requests: list[Request]) -> ServingReport:
        """Serve an open-loop request stream to completion.

        Returns the per-tenant SLO report; the raw :class:`Outcome`
        list (in completion order) stays on ``self.outcomes``.
        """
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_s, r.seq))
        base = self.clock.now()
        self.outcomes = []
        self._latencies = {}
        self._queued = {}
        with get_tracer().span("serving.run",
                               requests=len(ordered)):
            with self.clock.concurrently() as region:
                workers = self._worker_timelines(
                    region, self.config.workers)
                self._loop(ordered, workers, base)
        makespan = self.clock.now() - base
        return self._report(makespan)

    def _worker_timelines(self, region, count: int) -> list:
        # The only place that opens task timelines; kept free of any
        # other work so the concurrency analyzer's task-entry scope is
        # exactly this line (the event loop itself is single-threaded).
        return [region.task() for _ in range(count)]

    def _loop(self, ordered: list[Request], workers: list,
              base: float) -> None:
        pending = deque(ordered)
        free = list(range(len(workers) - 1, -1, -1))
        busy: list[tuple[float, int, int]] = []
        tick = itertools.count()
        infinity = float("inf")
        while pending or busy:
            next_arrival = (base + pending[0].arrival_s
                            if pending else infinity)
            next_done = busy[0][0] if busy else infinity
            if busy and next_done <= next_arrival:
                finish, _, widx = heapq.heappop(busy)
                free.append(widx)
                self._dispatch_ready(finish, free, busy, workers,
                                     tick, base)
            else:
                request = pending.popleft()
                self._arrive(request, next_arrival, free, busy,
                             workers, tick, base)

    # -- arrival / admission ------------------------------------------------

    def _arrive(self, request: Request, now: float, free: list,
                busy: list, workers: list, tick, base: float) -> None:
        metrics = get_metrics()
        metrics.counter("serving.requests").inc()
        self.tenants.stats(request.tenant).offered += 1
        if self.admission is not None:
            rejection = self.admission.decide(request, now,
                                              self.scheduler)
            if rejection is not None:
                self._shed(request, rejection)
                return
        cost = self.cost_model.estimate_s(request.kind)
        if not self.scheduler.try_enqueue(request, now, cost):
            # WFQ without admission still honors the queue bound.
            self._shed(request, Rejection(REASON_QUEUE_FULL, 0.0))
            return
        metrics.counter("serving.admitted").inc()
        self.tenants.stats(request.tenant).admitted += 1
        metrics.gauge("serving.queue_depth").set(len(self.scheduler))
        if free:
            self._dispatch_ready(now, free, busy, workers, tick, base)

    def _shed(self, request: Request, rejection: Rejection) -> None:
        """Reject at ~zero virtual cost, with a typed error attached."""
        metrics = get_metrics()
        metrics.counter("serving.shed").inc()
        metrics.counter(f"serving.shed.{rejection.reason}").inc()
        stats = self.tenants.stats(request.tenant)
        stats.shed += 1
        error = OverloadError(
            f"request shed ({rejection.reason}); retry after "
            f"{rejection.retry_after_s:.3f}s",
            reason=rejection.reason,
            tenant=request.tenant,
            retry_after_s=rejection.retry_after_s,
        )
        self.outcomes.append(Outcome(
            request=request, status="shed", reason=rejection.reason,
            retry_after_s=rejection.retry_after_s, error=error,
        ))

    # -- dispatch / execution -----------------------------------------------

    def _dispatch_ready(self, now: float, free: list, busy: list,
                        workers: list, tick, base: float) -> None:
        metrics = get_metrics()
        while free and len(self.scheduler):
            item = self.scheduler.pop()
            request = item.request
            queued_s = now - item.enqueued_s
            if (self.admission is not None
                    and queued_s >= self.config.slo_s):
                # The SLO is already spent in queue: executing would
                # burn a worker on a guaranteed-late answer.
                self.tenants.stats(request.tenant).admitted -= 1
                self._shed(request, Rejection(REASON_LATE, 0.0))
                continue
            widx = free.pop()
            timeline = workers[widx]
            with timeline:
                if now > timeline.now():
                    timeline.advance(now - timeline.now())
                outcome = self._execute(request, timeline)
                finish = timeline.now()
            outcome.queued_s = queued_s
            outcome.latency_s = finish - item.enqueued_s
            heapq.heappush(busy, (finish, next(tick), widx))
            self._complete(outcome)
        metrics.gauge("serving.queue_depth").set(len(self.scheduler))

    def _cache_key(self, request: Request) -> tuple | None:
        if self.cache is None:
            return None
        if request.kind == "render":
            # Delta frames are relative to one session's last payload;
            # only stateless full renders are shareable across tenants.
            if self.server.config.use_delta:
                return None
            return ("render", request.target)
        if request.kind == "query":
            return ("query", request.target)
        return ("details", request.target)

    def _execute(self, request: Request, timeline) -> Outcome:
        """Run one admitted request on a worker timeline."""
        costs = self.config.service_cost_s
        key = self._cache_key(request)
        if key is not None:
            entry = self.cache.get(key, request.tenant)
            if entry is not None:
                timeline.advance(costs.get("hit", 0.0))
                self.tenants.stats(request.tenant).cache_hits += 1
                self.cost_model.observe(request.kind,
                                        costs.get("hit", 0.0))
                return Outcome(request=request, status="ok",
                               cache="hit",
                               service_s=costs.get("hit", 0.0),
                               rows=entry.value.payload_rows)
        started = timeline.now()
        timeline.advance(costs.get(request.kind, 0.0))
        try:
            session_id = self._ensure_session(request, timeline)
            response = self._call_server(session_id, request)
        except UnknownSessionError:
            # The bounded session table evicted this session while it
            # sat in queue; reopen transparently and retry once.
            session_id = self._reopen_session(request, timeline)
            response = self._call_server(session_id, request)
        except OverloadError:
            raise  # never swallowed into a failure
        except DrugTreeError as error:
            service = timeline.now() - started
            self.cost_model.observe(request.kind, service)
            return Outcome(request=request, status="failed",
                           reason=type(error).__name__,
                           service_s=service, cache="miss")
        service = timeline.now() - started
        self.cost_model.observe(request.kind, service)
        if key is not None:
            self.cache.put(key, request.tenant, response,
                           cost_s=service)
        return Outcome(request=request, status="ok",
                       cache="miss" if key is not None else "",
                       service_s=service, rows=response.payload_rows)

    def _call_server(self, session_id: str, request: Request):
        if request.kind == "render":
            return self.server.navigate(session_id, request.target)
        if request.kind == "query":
            return self.server.query(session_id, request.target)
        return self.server.protein_details(session_id, request.target)

    def _ensure_session(self, request: Request, timeline) -> str:
        session_key = (request.tenant, request.session)
        session_id = self._server_sessions.get(session_key)
        if session_id is None:
            timeline.advance(
                self.config.service_cost_s.get("open", 0.0))
            session_id, _ = self.server.open_session()
            self._server_sessions[session_key] = session_id
            get_metrics().counter("serving.sessions_opened").inc()
        return session_id

    def _reopen_session(self, request: Request, timeline) -> str:
        session_key = (request.tenant, request.session)
        self._server_sessions.pop(session_key, None)
        get_metrics().counter("serving.sessions_reopened").inc()
        return self._ensure_session(request, timeline)

    # -- accounting ---------------------------------------------------------

    def _complete(self, outcome: Outcome) -> None:
        metrics = get_metrics()
        tenant = outcome.request.tenant
        stats = self.tenants.stats(tenant)
        if outcome.status == "failed":
            stats.failed += 1
            metrics.counter("serving.failed").inc()
        else:
            stats.completed += 1
            metrics.counter("serving.completed").inc()
            if outcome.latency_s <= self.config.slo_s:
                stats.within_slo += 1
                metrics.counter("serving.goodput").inc()
        metrics.histogram("serving.latency_s").observe(
            outcome.latency_s)
        metrics.histogram(
            f"serving.tenant.{tenant}.latency_s").observe(
            outcome.latency_s)
        metrics.histogram("serving.queue_wait_s").observe(
            outcome.queued_s)
        self._latencies.setdefault(tenant, []).append(
            outcome.latency_s)
        self._queued.setdefault(tenant, []).append(outcome.queued_s)
        self.outcomes.append(outcome)

    def _report(self, makespan_s: float) -> ServingReport:
        tenants: dict[str, TenantReport] = {}
        for tenant_id in self.tenants.tenant_ids():
            stats = self.tenants.stats(tenant_id)
            if stats.offered == 0:
                continue
            latencies = self._latencies.get(tenant_id, [])
            queued = self._queued.get(tenant_id, [])
            shed_reasons: dict[str, int] = {}
            for outcome in self.outcomes:
                if outcome.shed and outcome.request.tenant == tenant_id:
                    shed_reasons[outcome.reason] = (
                        shed_reasons.get(outcome.reason, 0) + 1)
            tenants[tenant_id] = TenantReport(
                tenant=tenant_id,
                offered=stats.offered,
                admitted=stats.admitted,
                shed=stats.shed,
                shed_reasons=shed_reasons,
                completed=stats.completed,
                failed=stats.failed,
                within_slo=stats.within_slo,
                cache_hits=stats.cache_hits,
                p50_s=_percentile(latencies, 0.50),
                p99_s=_percentile(latencies, 0.99),
                p999_s=_percentile(latencies, 0.999),
                max_s=max(latencies, default=0.0),
                mean_queued_s=(sum(queued) / len(queued)
                               if queued else 0.0),
            )
        offered = sum(t.offered for t in tenants.values())
        return ServingReport(
            offered=offered,
            makespan_s=makespan_s,
            slo_s=self.config.slo_s,
            tenants=tenants,
            cache=self.cache.stats() if self.cache is not None else {},
            cost_estimates=self.cost_model.snapshot(),
        )
