"""Request scheduling: bounded per-tenant queues, weighted fair order.

Two policies share one interface:

* ``"wfq"`` — weighted fair queuing. Every tenant has its own bounded
  FIFO; each enqueued request is stamped with a *virtual finish tag*
  ``start + cost / weight`` (start = max of the scheduler's virtual
  progress and the tenant's last finish), and dequeue always serves the
  smallest tag. A flooding tenant only ever stacks tags further into
  its own future — other tenants' fresh requests keep sorting ahead of
  the backlog, which is what bounds their p99 under attack.
* ``"fifo"`` — one global arrival-ordered queue, the naive baseline
  experiment E17 measures collapse against.

The scheduler is a passive data structure driven by the frontend's
deterministic event loop; it is not itself thread-safe.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ServingError
from repro.serving.tenancy import TenantRegistry

#: Scheduling policies the frontend accepts.
POLICIES = ("wfq", "fifo")


@dataclass
class QueuedRequest:
    """One admitted request waiting for a worker."""

    request: Any                 # repro.serving.frontend.Request
    enqueued_s: float            # virtual arrival at the queue
    cost_s: float                # estimated virtual service cost
    finish_tag: float = 0.0      # WFQ virtual finish time


class FairScheduler:
    """Bounded per-tenant queues with weighted-fair (or FIFO) dequeue."""

    def __init__(self, tenants: TenantRegistry,
                 policy: str = "wfq") -> None:
        if policy not in POLICIES:
            raise ServingError(
                f"unknown scheduling policy {policy!r}; "
                f"pick one of {', '.join(POLICIES)}"
            )
        self.policy = policy
        self.tenants = tenants
        self._queues: OrderedDict[str, deque[QueuedRequest]] = \
            OrderedDict()
        #: WFQ virtual progress: the largest finish tag ever served.
        self._virtual = 0.0
        #: Per-tenant last assigned finish tag.
        self._last_finish: dict[str, float] = {}
        self._depth = 0
        self._queued_cost: dict[str, float] = {}

    # -- introspection (admission reads these) ------------------------------

    def __len__(self) -> int:
        return self._depth

    def depth(self, tenant_id: str) -> int:
        queue = self._queues.get(tenant_id)
        return len(queue) if queue is not None else 0

    def queued_cost(self, tenant_id: str) -> float:
        """Estimated virtual service seconds queued for one tenant."""
        return self._queued_cost.get(tenant_id, 0.0)

    def total_queued_cost(self) -> float:
        return sum(self._queued_cost.values())

    def active_tenants(self) -> list[str]:
        """Tenants with at least one queued request."""
        return [tenant for tenant, queue in self._queues.items()
                if queue]

    # -- enqueue / dequeue --------------------------------------------------

    def try_enqueue(self, request: Any, now: float,
                    cost_s: float) -> bool:
        """Queue *request*; False when the tenant's queue is full.

        FIFO mode still keeps per-tenant deques (so depth accounting
        works) but ignores the bound — the naive baseline queues
        without limit, which is exactly how it collapses.
        """
        tenant_id = request.tenant
        config = self.tenants.config(tenant_id)
        queue = self._queues.get(tenant_id)
        if queue is None:
            queue = self._queues[tenant_id] = deque()
        if self.policy == "wfq" and len(queue) >= config.queue_limit:
            return False
        item = QueuedRequest(request, now, cost_s)
        if self.policy == "wfq":
            start = max(self._virtual,
                        self._last_finish.get(tenant_id, 0.0))
            item.finish_tag = start + cost_s / config.weight
            self._last_finish[tenant_id] = item.finish_tag
        else:
            item.finish_tag = now  # arrival order
        queue.append(item)
        self._depth += 1
        self._queued_cost[tenant_id] = (
            self._queued_cost.get(tenant_id, 0.0) + cost_s
        )
        return True

    def pop(self) -> QueuedRequest | None:
        """The next request to serve, by policy order."""
        best_tenant: str | None = None
        best_key: tuple[float, float] | None = None
        for tenant_id, queue in self._queues.items():
            if not queue:
                continue
            head = queue[0]
            key = (head.finish_tag, head.enqueued_s)
            if best_key is None or key < best_key:
                best_key = key
                best_tenant = tenant_id
        if best_tenant is None:
            return None
        item = self._queues[best_tenant].popleft()
        self._depth -= 1
        remaining = self._queued_cost.get(best_tenant, 0.0) - item.cost_s
        self._queued_cost[best_tenant] = max(0.0, remaining)
        if self.policy == "wfq" and item.finish_tag > self._virtual:
            self._virtual = item.finish_tag
        return item

    def drop_tenant(self, tenant_id: str) -> int:
        """Discard a tenant's whole queue; returns how many dropped."""
        queue = self._queues.get(tenant_id)
        if not queue:
            return 0
        dropped = len(queue)
        self._depth -= dropped
        self._queued_cost[tenant_id] = 0.0
        queue.clear()
        return dropped
