"""Shared response cache front with per-tenant working-set accounting.

The serving layer's first line of defense: identical hot requests
(render a popular clade, re-run a dashboard query) are answered from a
shared LRU without touching the server, the engine, or the federation.
*Shared* is the point — a viewport render or DTQL result is
tenant-independent, so tenant B hits entries tenant A warmed.

Sharing creates an attack surface: one tenant streaming distinct
requests would churn the LRU and evict everyone else's working set.
Every entry is therefore *owned* by the tenant that inserted it, and
each tenant has a quota (an explicit fraction, or its fair weight
share). Inserting over quota evicts from the inserting tenant's own
entries first; a global-capacity eviction picks its victim among
tenants at-or-over quota. Under-quota tenants' working sets survive a
flood by construction (see ``tests/serving/test_cache.py``).

Driven by the frontend's deterministic event loop; not thread-safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.errors import ServingError
from repro.obs import get_metrics
from repro.serving.tenancy import TenantRegistry


@dataclass
class _Entry:
    owner: str
    value: Any
    #: Virtual seconds the miss cost; reported as savings on each hit.
    cost_s: float


class SharedCacheFront:
    """Keyed LRU response cache with tenant ownership quotas."""

    def __init__(self, tenants: TenantRegistry,
                 capacity: int = 512) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be positive")
        self.tenants = tenants
        self.capacity = capacity
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._owned: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cross_tenant_hits = 0
        self.saved_virtual_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def quota(self, tenant_id: str) -> int:
        """Entries *tenant_id* may own before evicting its own LRU."""
        config = self.tenants.config(tenant_id)
        fraction = config.cache_quota_fraction
        if fraction is None:
            fraction = self.tenants.weight_share(tenant_id)
        return max(1, int(self.capacity * fraction))

    def owned(self, tenant_id: str) -> int:
        return self._owned.get(tenant_id, 0)

    # -- lookup / insert ----------------------------------------------------

    def get(self, key: Any, tenant_id: str) -> _Entry | None:
        entry = self._entries.get(key)
        metrics = get_metrics()
        if entry is None:
            self.misses += 1
            metrics.counter("serving.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.saved_virtual_s += entry.cost_s
        metrics.counter("serving.cache.hits").inc()
        if entry.owner != tenant_id:
            self.cross_tenant_hits += 1
            metrics.counter("serving.cache.cross_tenant_hits").inc()
        return entry

    def put(self, key: Any, tenant_id: str, value: Any,
            cost_s: float = 0.0) -> None:
        existing = self._entries.get(key)
        if existing is not None:
            # Refresh in place; ownership stays with the first warmer.
            existing.value = value
            existing.cost_s = cost_s
            self._entries.move_to_end(key)
            return
        if self.owned(tenant_id) >= self.quota(tenant_id):
            self._evict_owned_by(tenant_id)
        elif len(self._entries) >= self.capacity:
            self._evict_over_quota()
        self._entries[key] = _Entry(tenant_id, value, cost_s)
        self._owned[tenant_id] = self.owned(tenant_id) + 1

    # -- eviction -----------------------------------------------------------

    def _remove(self, key: Any) -> None:
        entry = self._entries.pop(key)
        self._owned[entry.owner] = self._owned.get(entry.owner, 1) - 1
        self.evictions += 1
        get_metrics().counter("serving.cache.evictions").inc()

    def _evict_owned_by(self, tenant_id: str) -> None:
        """Evict the tenant's own least-recently-used entry."""
        for key, entry in self._entries.items():
            if entry.owner == tenant_id:
                self._remove(key)
                return

    def _evict_over_quota(self) -> None:
        """Global-capacity eviction: LRU among at-or-over-quota owners.

        The capacity being full while every owner is under quota can
        only happen when quota fractions under-cover the capacity; the
        plain LRU fallback handles that configuration.
        """
        for key, entry in self._entries.items():
            if self.owned(entry.owner) >= self.quota(entry.owner):
                self._remove(key)
                return
        oldest = next(iter(self._entries), None)
        if oldest is not None:
            self._remove(oldest)

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "cross_tenant_hits": self.cross_tenant_hits,
            "evictions": self.evictions,
            "saved_virtual_s": round(self.saved_virtual_s, 6),
            "owned": {tenant: count
                      for tenant, count in sorted(self._owned.items())
                      if count},
        }
