"""Admission control: shed load *before* deadlines blow.

An overloaded open-loop system has no good steady state: arrivals keep
coming whether or not the server keeps up, so an unbounded queue turns
every admitted request into a late one. The controller's contract is
the opposite — a request is either admitted with a realistic chance of
finishing inside its SLO, or rejected immediately (typed
:class:`~repro.errors.OverloadError`, ~zero virtual latency, honest
``retry_after_s`` hint) so the client can back off.

Three tests run at arrival time, cheapest first:

1. **Rate limit** — the tenant's virtual-time token bucket.
2. **Queue bound** — the tenant's own queue depth against its limit.
3. **Cost-based overload** — the estimated completion time under
   weighted fair scheduling: the tenant's queued virtual cost divided
   by its effective share of the worker pool, plus the request's own
   estimated cost. If that exceeds the SLO budget, finishing late is
   the *expected* outcome and the request is shed now.

Cost estimates come from a per-kind EWMA of observed virtual service
times, so the controller adapts as cache hit rates shift. When circuit
breakers report open sources, estimates are inflated by the open
fraction — a degraded federation serves slower, so the controller sheds
earlier instead of discovering the same fact one deadline at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.scheduler import FairScheduler
from repro.serving.tenancy import TenantRegistry

#: Shed reasons carried on OverloadError / outcomes / metrics names.
REASON_RATE_LIMITED = "rate_limited"
REASON_QUEUE_FULL = "queue_full"
REASON_OVERLOAD = "overload"
REASON_LATE = "late"  # dispatch-side: SLO already spent in queue


@dataclass(frozen=True)
class Rejection:
    """One shed decision (reason plus back-off hint)."""

    reason: str
    retry_after_s: float


class ServiceCostModel:
    """Per-kind EWMA of observed virtual service seconds."""

    def __init__(self, priors: dict[str, float],
                 default_s: float = 0.05, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ServingError("EWMA alpha must be in (0, 1]")
        if default_s <= 0:
            raise ServingError("default cost must be positive")
        self._estimates = dict(priors)
        self._default = default_s
        self._alpha = alpha

    def estimate_s(self, kind: str) -> float:
        return self._estimates.get(kind, self._default)

    def observe(self, kind: str, service_s: float) -> None:
        previous = self._estimates.get(kind)
        if previous is None:
            self._estimates[kind] = service_s
        else:
            self._estimates[kind] = (
                previous + self._alpha * (service_s - previous)
            )

    def snapshot(self) -> dict[str, float]:
        return dict(self._estimates)


@dataclass(frozen=True)
class AdmissionConfig:
    """Controller knobs."""

    #: Virtual-seconds SLO budget a request must plausibly fit.
    slo_s: float = 1.0
    #: Admit while ``estimated completion <= slo_s * headroom`` — above
    #: 1.0 trades a few late completions for fewer false rejections.
    headroom: float = 1.0
    #: Floor on retry-after hints, so clients never busy-loop.
    min_retry_after_s: float = 0.05
    #: Extra cost multiplier applied per fraction of open breakers.
    breaker_penalty: float = 2.0

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ServingError("SLO budget must be positive")
        if self.headroom <= 0:
            raise ServingError("headroom must be positive")
        if self.min_retry_after_s < 0:
            raise ServingError("min retry-after must be >= 0")
        if self.breaker_penalty < 0:
            raise ServingError("breaker penalty must be >= 0")


class AdmissionController:
    """Arrival-time shed decisions over the scheduler's live state."""

    def __init__(self, config: AdmissionConfig,
                 tenants: TenantRegistry,
                 cost_model: ServiceCostModel,
                 workers: int,
                 breakers=None) -> None:
        if workers < 1:
            raise ServingError("admission needs >= 1 worker")
        self.config = config
        self.tenants = tenants
        self.cost_model = cost_model
        self.workers = workers
        #: Optional :class:`~repro.sources.resilience.BreakerBoard`;
        #: open breakers inflate cost estimates.
        self.breakers = breakers

    # -- estimates ----------------------------------------------------------

    def _breaker_factor(self) -> float:
        if self.breakers is None:
            return 1.0
        open_fraction = self.breakers.open_fraction()
        if open_fraction <= 0.0:
            return 1.0
        return 1.0 + open_fraction * self.config.breaker_penalty

    def estimated_cost_s(self, kind: str) -> float:
        return self.cost_model.estimate_s(kind) * self._breaker_factor()

    def estimated_wait_s(self, tenant_id: str,
                         scheduler: FairScheduler) -> float:
        """Expected queue delay for one more request of *tenant_id*.

        Under WFQ a tenant drains at ``workers * (its weight share
        among currently active tenants)``, so only the tenant's own
        backlog counts against it — which is exactly why one hot
        tenant's queue never inflates another tenant's estimate.
        """
        active = set(scheduler.active_tenants())
        active.add(tenant_id)
        weights = {t: self.tenants.config(t).weight for t in active}
        total_weight = sum(weights.values())
        share = weights[tenant_id] / total_weight if total_weight else 1.0
        drain_rate = max(self.workers * share, 1e-9)
        if scheduler.policy == "fifo":
            # One global queue: everyone waits behind everything.
            return scheduler.total_queued_cost() / self.workers
        return scheduler.queued_cost(tenant_id) / drain_rate

    # -- the decision -------------------------------------------------------

    def decide(self, request, now: float,
               scheduler: FairScheduler) -> Rejection | None:
        """``None`` to admit, or the :class:`Rejection` to shed."""
        tenant_id = request.tenant
        config = self.tenants.config(tenant_id)
        bucket = self.tenants.bucket(tenant_id)
        if bucket is not None and not bucket.try_take(now):
            return Rejection(
                REASON_RATE_LIMITED,
                max(self.config.min_retry_after_s,
                    bucket.retry_after_s(now)),
            )
        if scheduler.depth(tenant_id) >= config.queue_limit:
            # Retry once roughly half the backlog has drained.
            wait = self.estimated_wait_s(tenant_id, scheduler)
            return Rejection(
                REASON_QUEUE_FULL,
                max(self.config.min_retry_after_s, wait / 2.0),
            )
        cost = self.estimated_cost_s(request.kind)
        wait = self.estimated_wait_s(tenant_id, scheduler)
        estimated_completion = wait + cost
        budget = self.config.slo_s * self.config.headroom
        if estimated_completion > budget:
            return Rejection(
                REASON_OVERLOAD,
                max(self.config.min_retry_after_s,
                    estimated_completion - budget),
            )
        return None
