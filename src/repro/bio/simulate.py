"""Synthetic phylogenies and sequence evolution.

These simulators stand in for the public protein-family data the paper's
system pulled from live sources (see DESIGN.md, substitutions table).
A birth–death process generates species trees with realistic shapes, and
sequences evolve along the branches under a BLOSUM-derived substitution
kernel, so that alignment-based distances correlate with true tree
distances.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bio import alphabet
from repro.bio.matrices import BLOSUM62, SubstitutionMatrix
from repro.bio.seq import ProteinSequence
from repro.bio.tree import PhyloNode, PhyloTree
from repro.errors import TreeError


def birth_death_tree(num_leaves: int,
                     birth_rate: float = 1.0,
                     death_rate: float = 0.0,
                     seed: int | None = None,
                     leaf_prefix: str = "taxon") -> PhyloTree:
    """Simulate a birth–death tree with exactly *num_leaves* leaves.

    Standard constant-rate birth–death simulation conditioned on the
    number of extant taxa: lineages split at rate *birth_rate* and die at
    rate *death_rate*; the simulation restarts on full extinction.
    Leaves are named ``{leaf_prefix}_{i:04d}`` in creation order.
    """
    if num_leaves < 2:
        raise TreeError("need at least two leaves")
    if birth_rate <= 0:
        raise TreeError("birth rate must be positive")
    if death_rate < 0 or death_rate >= birth_rate:
        raise TreeError("death rate must satisfy 0 <= death < birth")
    rng = random.Random(seed)

    for _ in range(1000):
        tree = _try_birth_death(num_leaves, birth_rate, death_rate, rng,
                                leaf_prefix)
        if tree is not None:
            return tree
    raise TreeError("birth-death simulation failed to produce a tree")


def _try_birth_death(num_leaves: int, birth_rate: float, death_rate: float,
                     rng: random.Random,
                     leaf_prefix: str) -> PhyloTree | None:
    root = PhyloNode("", 0.0)
    first = PhyloNode("", 0.0)
    second = PhyloNode("", 0.0)
    root.add_child(first)
    root.add_child(second)
    extant: list[PhyloNode] = [first, second]
    total_rate_per_lineage = birth_rate + death_rate

    while len(extant) < num_leaves:
        if not extant:
            return None
        total_rate = total_rate_per_lineage * len(extant)
        wait = rng.expovariate(total_rate)
        for lineage in extant:
            lineage.branch_length += wait
        victim_index = rng.randrange(len(extant))
        lineage = extant.pop(victim_index)
        if rng.random() < birth_rate / total_rate_per_lineage:
            left = PhyloNode("", 0.0)
            right = PhyloNode("", 0.0)
            lineage.add_child(left)
            lineage.add_child(right)
            extant.extend((left, right))
        elif lineage.parent is not None and not lineage.children:
            # Death: drop the lineage entirely (prune later via rebuild).
            lineage.name = "__dead__"

    # Final stretch so leaves are contemporaneous-ish.
    wait = rng.expovariate(total_rate_per_lineage * len(extant))
    for index, lineage in enumerate(extant):
        lineage.branch_length += wait
        lineage.name = f"{leaf_prefix}_{index:04d}"

    pruned = _prune_dead(root)
    if pruned is None:
        return None
    if sum(1 for __ in pruned.leaves()) != num_leaves:
        return None
    pruned.branch_length = 0.0
    return PhyloTree(pruned)


def _prune_dead(node: PhyloNode) -> PhyloNode | None:
    if node.is_leaf:
        if node.name == "__dead__" or not node.name:
            return None
        return PhyloNode(node.name, node.branch_length)
    kept = [built for child in node.children
            if (built := _prune_dead(child)) is not None]
    if not kept:
        return None
    if len(kept) == 1:
        only = kept[0]
        only.branch_length += node.branch_length
        return only
    fresh = PhyloNode(node.name, node.branch_length)
    for child in kept:
        fresh.add_child(child)
    return fresh


@dataclass(frozen=True)
class EvolutionModel:
    """Site-independent substitution model derived from a score matrix.

    Each site mutates along a branch of length ``t`` with probability
    ``1 - exp(-rate * t)``; a mutating residue is replaced by a residue
    sampled with weight ``exp(score(a, b) / temperature)`` for ``b != a``,
    so exchanges that the substitution matrix favours happen more often.
    """

    matrix: SubstitutionMatrix = BLOSUM62
    rate: float = 1.0
    temperature: float = 2.0

    def transition_weights(self, residue: str) -> list[float]:
        return [
            math.exp(self.matrix.score(residue, other) / self.temperature)
            if other != residue else 0.0
            for other in alphabet.AMINO_ACIDS
        ]

    def evolve(self, residues: str, branch_length: float,
               rng: random.Random) -> str:
        """Evolve *residues* along one branch."""
        if branch_length < 0:
            raise TreeError("negative branch length")
        p_mutate = 1.0 - math.exp(-self.rate * branch_length)
        if p_mutate <= 0.0:
            return residues
        out: list[str] = []
        for residue in residues:
            if rng.random() >= p_mutate:
                out.append(residue)
                continue
            weights = self.transition_weights(residue)
            out.append(
                rng.choices(alphabet.AMINO_ACIDS, weights=weights, k=1)[0]
            )
        return "".join(out)


def random_root_sequence(length: int, rng: random.Random) -> str:
    """A uniform-random canonical sequence of the given length."""
    if length < 1:
        raise TreeError("sequence length must be positive")
    return "".join(rng.choice(alphabet.AMINO_ACIDS) for _ in range(length))


def evolve_sequences(tree: PhyloTree,
                     root_sequence: str | None = None,
                     length: int = 120,
                     model: EvolutionModel | None = None,
                     seed: int | None = None) -> list[ProteinSequence]:
    """Evolve a protein family along *tree*.

    Returns one sequence per leaf, named after the leaf. The leaf order
    matches :meth:`PhyloTree.leaf_names`.
    """
    rng = random.Random(seed)
    model = model or EvolutionModel()
    if root_sequence is None:
        root_sequence = random_root_sequence(length, rng)

    sequences: dict[str, str] = {}
    assigned: dict[int, str] = {tree.root.node_id: root_sequence}
    for node in tree.preorder():
        if node.is_root:
            continue
        parent_seq = assigned[node.parent.node_id]
        child_seq = model.evolve(parent_seq, node.branch_length, rng)
        assigned[node.node_id] = child_seq
        if node.is_leaf:
            sequences[node.name] = child_seq
    return [
        ProteinSequence(name, sequences[name])
        for name in tree.leaf_names()
    ]


def caterpillar_tree(leaf_names: Sequence[str],
                     branch_length: float = 1.0) -> PhyloTree:
    """Maximally unbalanced (caterpillar) tree, for worst-case tests."""
    if len(leaf_names) < 2:
        raise TreeError("need at least two leaves")
    node = PhyloNode(leaf_names[0], branch_length)
    for name in leaf_names[1:]:
        parent = PhyloNode("", branch_length)
        parent.add_child(node)
        parent.add_child(PhyloNode(name, branch_length))
        node = parent
    node.branch_length = 0.0
    return PhyloTree(node)
