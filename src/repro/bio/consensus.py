"""Consensus trees from tree collections.

Majority-rule consensus: a bipartition appears in the consensus iff it
occurs in more than the threshold fraction of input trees (0.5 for the
classic majority rule, 1.0 - epsilon for strict consensus). Used to
summarise bootstrap replicates into a single displayable tree.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.bio.tree import PhyloNode, PhyloTree
from repro.errors import TreeError


def majority_rule_consensus(trees: Sequence[PhyloTree],
                            threshold: float = 0.5) -> PhyloTree:
    """Majority-rule consensus of *trees* (all over the same taxa).

    Returns a tree containing every bipartition whose frequency is
    strictly greater than *threshold*; internal nodes are labeled with
    the percentage of input trees supporting them. Compatible splits
    above threshold always nest, so the construction is well-defined.
    """
    if not trees:
        raise TreeError("consensus of an empty tree collection")
    if not 0.5 <= threshold < 1.0:
        raise TreeError("threshold must be in [0.5, 1.0)")
    taxa = frozenset(trees[0].leaf_names())
    for tree in trees[1:]:
        if frozenset(tree.leaf_names()) != taxa:
            raise TreeError("all trees must share the same taxa")

    counts: Counter[frozenset[str]] = Counter()
    for tree in trees:
        for clade in set(tree.clades().values()):
            if 1 < len(clade) < len(taxa):
                counts[frozenset(clade)] += 1

    total = len(trees)
    # Clades oriented as written (not canonical splits): for rooted
    # input trees this is the natural consensus of clades.
    majority = {
        clade: count / total
        for clade, count in counts.items()
        if count / total > threshold
    }
    return _assemble(taxa, majority)


def strict_consensus(trees: Sequence[PhyloTree]) -> PhyloTree:
    """Clades present in every input tree."""
    return majority_rule_consensus(trees, threshold=1.0 - 1e-9)


def _assemble(taxa: frozenset[str],
              majority: dict[frozenset[str], float]) -> PhyloTree:
    """Build the consensus tree from nested majority clades."""
    # Sort big-to-small: parents are placed before their children.
    ordered = sorted(majority, key=len, reverse=True)
    root = PhyloNode("")
    node_clades: dict[int, frozenset[str]] = {root.node_id: taxa}
    nodes: dict[int, PhyloNode] = {root.node_id: root}

    for clade in ordered:
        parent = _smallest_superset(root, clade, node_clades)
        support = majority[clade]
        fresh = PhyloNode(str(round(support * 100)))
        node_clades[fresh.node_id] = clade
        nodes[fresh.node_id] = fresh
        # Children of the parent that fall inside the new clade move
        # under it.
        movers = [
            child for child in list(parent.children)
            if node_clades[child.node_id] <= clade
        ]
        for child in movers:
            parent.remove_child(child)
            fresh.add_child(child)
        parent.add_child(fresh)

    # Attach leaves under the smallest clade containing them.
    for taxon in sorted(taxa):
        parent = _smallest_superset(root, frozenset((taxon,)),
                                    node_clades)
        leaf = PhyloNode(taxon)
        node_clades[leaf.node_id] = frozenset((taxon,))
        parent.add_child(leaf)
    return PhyloTree(root)


def _smallest_superset(root: PhyloNode, clade: frozenset[str],
                       node_clades: dict[int, frozenset[str]],
                       ) -> PhyloNode:
    """The deepest placed internal node whose clade contains *clade*."""
    current = root
    descended = True
    while descended:
        descended = False
        for child in current.children:
            child_clade = node_clades.get(child.node_id)
            # Skip attached taxon leaves (singleton clades); a freshly
            # placed internal node is childless but still descendable.
            if child_clade is None or len(child_clade) <= 1:
                continue
            if clade <= child_clade and child_clade != clade:
                current = child
                descended = True
                break
    return current


def support_values(consensus: PhyloTree) -> dict[frozenset[str], float]:
    """Read back clade → support fraction from a consensus tree."""
    out: dict[frozenset[str], float] = {}
    clades = consensus.clades()
    by_id = {node.node_id: node for node in consensus.preorder()}
    for node_id, clade in clades.items():
        node = by_id[node_id]
        if node.is_leaf or node.is_root or not node.name:
            continue
        try:
            out[frozenset(clade)] = float(node.name) / 100.0
        except ValueError:
            continue
    return out
