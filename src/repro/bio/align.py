"""Pairwise protein alignment: Needleman–Wunsch and Smith–Waterman.

Both algorithms use affine gap penalties (Gotoh's three-state recurrence)
and vectorised numpy inner loops so that aligning the hundreds of
sequence pairs needed to build a distance matrix stays fast enough for
interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio import alphabet
from repro.bio.matrices import BLOSUM62, SubstitutionMatrix
from repro.bio.seq import ProteinSequence
from repro.errors import AlignmentError

_NEG_INF = np.int64(np.iinfo(np.int64).min // 4)

# Traceback codes for the match state.
_FROM_MATCH, _FROM_GAP_A, _FROM_GAP_B = 0, 1, 2


@dataclass(frozen=True, slots=True)
class PairwiseAlignment:
    """Result of aligning two sequences.

    ``aligned_a`` and ``aligned_b`` are equal-length strings over the
    residue alphabet plus the gap character ``-``.
    """

    seq_a: ProteinSequence
    seq_b: ProteinSequence
    aligned_a: str
    aligned_b: str
    score: int
    mode: str

    def __post_init__(self) -> None:
        if len(self.aligned_a) != len(self.aligned_b):
            raise AlignmentError("aligned strings have different lengths")

    def __len__(self) -> int:
        return len(self.aligned_a)

    @property
    def identity(self) -> float:
        """Fraction of aligned (non-double-gap) columns that match."""
        matches = 0
        columns = 0
        for res_a, res_b in zip(self.aligned_a, self.aligned_b):
            if res_a == alphabet.GAP and res_b == alphabet.GAP:
                continue
            columns += 1
            if res_a == res_b:
                matches += 1
        return matches / columns if columns else 0.0

    @property
    def gap_fraction(self) -> float:
        """Fraction of columns containing at least one gap."""
        if not self.aligned_a:
            return 0.0
        gaps = sum(
            res_a == alphabet.GAP or res_b == alphabet.GAP
            for res_a, res_b in zip(self.aligned_a, self.aligned_b)
        )
        return gaps / len(self.aligned_a)

    def matched_columns(self) -> list[tuple[str, str]]:
        """Columns where neither side is a gap, as residue pairs."""
        return [
            (res_a, res_b)
            for res_a, res_b in zip(self.aligned_a, self.aligned_b)
            if res_a != alphabet.GAP and res_b != alphabet.GAP
        ]


def _encode(residues: str) -> np.ndarray:
    canonical = alphabet.canonicalize(residues)
    return np.fromiter(
        (alphabet.AA_INDEX[aa] for aa in canonical),
        dtype=np.int64,
        count=len(canonical),
    )


def _pair_scores(matrix: SubstitutionMatrix,
                 enc_a: np.ndarray, enc_b: np.ndarray) -> np.ndarray:
    table = matrix.as_array(alphabet.AMINO_ACIDS)
    return table[np.ix_(enc_a, enc_b)]


def _validate_gaps(gap_open: int, gap_extend: int) -> None:
    if gap_open < 0 or gap_extend < 0:
        raise AlignmentError("gap penalties must be non-negative magnitudes")
    if gap_extend > gap_open:
        raise AlignmentError("gap extension must not exceed gap opening")


def global_align(seq_a: ProteinSequence, seq_b: ProteinSequence,
                 matrix: SubstitutionMatrix = BLOSUM62,
                 gap_open: int = 11, gap_extend: int = 1,
                 ) -> PairwiseAlignment:
    """Needleman–Wunsch global alignment with affine gaps.

    *gap_open* is the cost of the first residue of a gap and *gap_extend*
    the cost of each subsequent residue, both given as positive magnitudes
    (the classic BLAST parameterisation: 11/1 with BLOSUM62).
    """
    _validate_gaps(gap_open, gap_extend)
    enc_a, enc_b = _encode(seq_a.residues), _encode(seq_b.residues)
    n, m = len(enc_a), len(enc_b)
    pair = _pair_scores(matrix, enc_a, enc_b)

    # Three-state Gotoh. match[i,j]: best ending in residue/residue;
    # gap_a[i,j]: best ending with a gap in seq_a (consumes b);
    # gap_b[i,j]: best ending with a gap in seq_b (consumes a).
    match = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int64)
    gap_a = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int64)
    gap_b = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int64)
    match[0, 0] = 0
    for j in range(1, m + 1):
        gap_a[0, j] = -(gap_open + (j - 1) * gap_extend)
    for i in range(1, n + 1):
        gap_b[i, 0] = -(gap_open + (i - 1) * gap_extend)

    # Traceback state: which predecessor state fed each cell of each matrix.
    tb_match = np.zeros((n + 1, m + 1), dtype=np.int8)
    tb_gap_a = np.zeros((n + 1, m + 1), dtype=np.int8)
    tb_gap_b = np.zeros((n + 1, m + 1), dtype=np.int8)

    for i in range(1, n + 1):
        prev_m, prev_a, prev_b = match[i - 1], gap_a[i - 1], gap_b[i - 1]
        row_m, row_a, row_b = match[i], gap_a[i], gap_b[i]
        row_pair = pair[i - 1]
        # gap_b (gap in seq_b, consumes a residue of seq_a) only depends on
        # the previous row, so it vectorises across j.
        open_b = np.maximum(prev_m, prev_a) - gap_open
        extend_b = prev_b - gap_extend
        row_b[:] = np.maximum(open_b, extend_b)
        tb_gap_b[i] = np.where(
            extend_b >= open_b, _FROM_GAP_B,
            np.where(prev_m >= prev_a, _FROM_MATCH, _FROM_GAP_A),
        )
        row_b[0] = gap_b[i, 0]
        for j in range(1, m + 1):
            diag_m = prev_m[j - 1]
            diag_a = prev_a[j - 1]
            diag_b = prev_b[j - 1]
            best_diag = diag_m
            state = _FROM_MATCH
            if diag_a > best_diag:
                best_diag, state = diag_a, _FROM_GAP_A
            if diag_b > best_diag:
                best_diag, state = diag_b, _FROM_GAP_B
            row_m[j] = best_diag + row_pair[j - 1]
            tb_match[i, j] = state

            open_a = max(row_m[j - 1], row_b[j - 1]) - gap_open
            extend_a = row_a[j - 1] - gap_extend
            if extend_a >= open_a:
                row_a[j] = extend_a
                tb_gap_a[i, j] = _FROM_GAP_A
            else:
                row_a[j] = open_a
                tb_gap_a[i, j] = (
                    _FROM_MATCH if row_m[j - 1] >= row_b[j - 1] else _FROM_GAP_B
                )

    end_scores = (match[n, m], gap_a[n, m], gap_b[n, m])
    state = int(np.argmax(end_scores))
    score = int(end_scores[state])

    aligned_a, aligned_b = _traceback_global(
        seq_a.residues, seq_b.residues, state,
        tb_match, tb_gap_a, tb_gap_b,
    )
    return PairwiseAlignment(seq_a, seq_b, aligned_a, aligned_b, score,
                             mode="global")


def _traceback_global(res_a: str, res_b: str, state: int,
                      tb_match: np.ndarray, tb_gap_a: np.ndarray,
                      tb_gap_b: np.ndarray) -> tuple[str, str]:
    i, j = len(res_a), len(res_b)
    out_a: list[str] = []
    out_b: list[str] = []
    while i > 0 or j > 0:
        if state == _FROM_MATCH:
            if i == 0 or j == 0:
                # Only gaps remain along an edge.
                state = _FROM_GAP_A if i == 0 else _FROM_GAP_B
                continue
            prev = int(tb_match[i, j])
            out_a.append(res_a[i - 1])
            out_b.append(res_b[j - 1])
            i -= 1
            j -= 1
            state = prev
        elif state == _FROM_GAP_A:
            if j == 0:
                state = _FROM_GAP_B
                continue
            prev = int(tb_gap_a[i, j])
            out_a.append(alphabet.GAP)
            out_b.append(res_b[j - 1])
            j -= 1
            state = prev
        else:  # _FROM_GAP_B
            if i == 0:
                state = _FROM_GAP_A
                continue
            prev = int(tb_gap_b[i, j])
            out_a.append(res_a[i - 1])
            out_b.append(alphabet.GAP)
            i -= 1
            state = prev
    return "".join(reversed(out_a)), "".join(reversed(out_b))


def local_align(seq_a: ProteinSequence, seq_b: ProteinSequence,
                matrix: SubstitutionMatrix = BLOSUM62,
                gap_open: int = 11, gap_extend: int = 1,
                ) -> PairwiseAlignment:
    """Smith–Waterman local alignment with affine gaps.

    Returns the highest-scoring local alignment; for sequences with no
    positively-scoring pair the alignment is empty with score 0.
    """
    _validate_gaps(gap_open, gap_extend)
    enc_a, enc_b = _encode(seq_a.residues), _encode(seq_b.residues)
    n, m = len(enc_a), len(enc_b)
    pair = _pair_scores(matrix, enc_a, enc_b)

    match = np.zeros((n + 1, m + 1), dtype=np.int64)
    gap_a = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int64)
    gap_b = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int64)
    best_score = 0
    best_pos = (0, 0)

    for i in range(1, n + 1):
        prev_m, prev_b = match[i - 1], gap_b[i - 1]
        row_pair = pair[i - 1]
        gap_b[i] = np.maximum(prev_m - gap_open, prev_b - gap_extend)
        row_m, row_a, row_b = match[i], gap_a[i], gap_b[i]
        for j in range(1, m + 1):
            row_a[j] = max(row_m[j - 1] - gap_open, row_a[j - 1] - gap_extend)
            diag = max(prev_m[j - 1], gap_a[i - 1][j - 1], prev_b[j - 1], 0)
            cell = max(0, diag + row_pair[j - 1], row_a[j], row_b[j])
            row_m[j] = cell
            if cell > best_score:
                best_score = int(cell)
                best_pos = (i, j)

    aligned_a, aligned_b = _traceback_local(
        seq_a.residues, seq_b.residues, pair, match, gap_a, gap_b,
        best_pos, gap_open, gap_extend,
    )
    return PairwiseAlignment(seq_a, seq_b, aligned_a, aligned_b,
                             int(best_score), mode="local")


def _traceback_local(res_a: str, res_b: str, pair: np.ndarray,
                     match: np.ndarray, gap_a: np.ndarray,
                     gap_b: np.ndarray, start: tuple[int, int],
                     gap_open: int, gap_extend: int) -> tuple[str, str]:
    # Local traceback recomputes which move produced each cell; this keeps
    # the fill loop free of traceback bookkeeping.
    i, j = start
    out_a: list[str] = []
    out_b: list[str] = []
    state = _FROM_MATCH
    while i > 0 and j > 0:
        if state == _FROM_MATCH:
            if match[i, j] <= 0:
                break
            cell = match[i, j]
            if cell == gap_a[i, j]:
                state = _FROM_GAP_A
                continue
            if cell == gap_b[i, j]:
                state = _FROM_GAP_B
                continue
            out_a.append(res_a[i - 1])
            out_b.append(res_b[j - 1])
            diag_m = match[i - 1, j - 1]
            diag_a = gap_a[i - 1, j - 1]
            diag_b = gap_b[i - 1, j - 1]
            i -= 1
            j -= 1
            best = max(diag_m, diag_a, diag_b, 0)
            if best == 0:
                break
            if best == diag_m:
                state = _FROM_MATCH
            elif best == diag_a:
                state = _FROM_GAP_A
            else:
                state = _FROM_GAP_B
        elif state == _FROM_GAP_A:
            out_a.append(alphabet.GAP)
            out_b.append(res_b[j - 1])
            came_from_open = gap_a[i, j] == match[i, j - 1] - gap_open
            j -= 1
            state = _FROM_MATCH if came_from_open else _FROM_GAP_A
        else:  # _FROM_GAP_B
            out_a.append(res_a[i - 1])
            out_b.append(alphabet.GAP)
            came_from_open = gap_b[i, j] == match[i - 1, j] - gap_open
            i -= 1
            state = _FROM_MATCH if came_from_open else _FROM_GAP_B
    return "".join(reversed(out_a)), "".join(reversed(out_b))
