"""Protein sequence similarity search (BLAST-lite).

"Which proteins in the tree resemble this new sequence?" is the entry
query of the DrugTree workflow — it decides where a new enzyme hangs.
A full alignment against every database sequence is quadratic and slow;
this module implements the standard two-stage shortcut:

1. a :class:`KmerIndex` finds candidates sharing enough exact k-mers
   with the query (the BLAST word heuristic);
2. candidates are rescored with real Smith–Waterman local alignment and
   ranked by score.

The filter is lossy by design (a sequence with no shared k-mer is never
scored), exactly like the tool it imitates; the tests quantify that the
true best hit survives filtering for related sequences.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bio.align import local_align
from repro.bio.matrices import BLOSUM62, SubstitutionMatrix
from repro.bio.seq import ProteinSequence
from repro.errors import SequenceError

DEFAULT_K = 3


@dataclass(frozen=True)
class SearchHit:
    """One scored database match."""

    seq_id: str
    score: int
    identity: float
    shared_kmers: int

    def __lt__(self, other: "SearchHit") -> bool:
        return (self.score, self.seq_id) < (other.score, other.seq_id)


class KmerIndex:
    """Inverted index from k-mer to the sequences containing it."""

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k < 1:
            raise SequenceError("k must be positive")
        self.k = k
        self._postings: dict[str, set[str]] = {}
        self._sequences: dict[str, ProteinSequence] = {}

    def __len__(self) -> int:
        return len(self._sequences)

    def __contains__(self, seq_id: str) -> bool:
        return seq_id in self._sequences

    def add(self, sequence: ProteinSequence) -> None:
        if sequence.seq_id in self._sequences:
            raise SequenceError(
                f"duplicate sequence id {sequence.seq_id!r}"
            )
        self._sequences[sequence.seq_id] = sequence
        for kmer in self._kmers(sequence.canonical):
            self._postings.setdefault(kmer, set()).add(sequence.seq_id)

    def add_many(self, sequences: Sequence[ProteinSequence]) -> None:
        for sequence in sequences:
            self.add(sequence)

    def _kmers(self, text: str) -> set[str]:
        k = self.k
        return {text[i:i + k] for i in range(len(text) - k + 1)}

    def get(self, seq_id: str) -> ProteinSequence | None:
        return self._sequences.get(seq_id)

    # -- search ------------------------------------------------------------

    def candidates(self, query: ProteinSequence,
                   min_shared: int = 2) -> dict[str, int]:
        """Database ids sharing >= *min_shared* k-mers with the query."""
        if min_shared < 1:
            raise SequenceError("min_shared must be positive")
        votes: Counter[str] = Counter()
        for kmer in self._kmers(query.canonical):
            for seq_id in self._postings.get(kmer, ()):
                votes[seq_id] += 1
        return {
            seq_id: shared for seq_id, shared in votes.items()
            if shared >= min_shared
        }

    def search(self, query: ProteinSequence,
               top_k: int = 10,
               min_shared: int = 2,
               matrix: SubstitutionMatrix = BLOSUM62,
               ) -> list[SearchHit]:
        """Two-stage search: k-mer filter, then local-alignment rescore."""
        if top_k < 1:
            raise SequenceError("top_k must be positive")
        shortlist = self.candidates(query, min_shared=min_shared)
        hits: list[SearchHit] = []
        for seq_id, shared in shortlist.items():
            target = self._sequences[seq_id]
            alignment = local_align(query, target, matrix=matrix)
            hits.append(SearchHit(
                seq_id=seq_id,
                score=alignment.score,
                identity=round(alignment.identity, 4),
                shared_kmers=shared,
            ))
        hits.sort(key=lambda hit: (-hit.score, hit.seq_id))
        return hits[:top_k]

    def exhaustive_search(self, query: ProteinSequence,
                          top_k: int = 10,
                          matrix: SubstitutionMatrix = BLOSUM62,
                          ) -> list[SearchHit]:
        """Alignment against everything (the ground truth the filter
        approximates; used by tests and the E-series benchmarks)."""
        hits = []
        for seq_id, target in self._sequences.items():
            alignment = local_align(query, target, matrix=matrix)
            hits.append(SearchHit(
                seq_id=seq_id,
                score=alignment.score,
                identity=round(alignment.identity, 4),
                shared_kmers=0,
            ))
        hits.sort(key=lambda hit: (-hit.score, hit.seq_id))
        return hits[:top_k]
