"""Phylogenetic tree structure, Newick I/O, and tree operations.

:class:`PhyloTree` is the backbone of the whole system: the DrugTree
overlay, the interval labeling used by the query optimizer, and the mobile
level-of-detail protocol all operate on these trees.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from collections.abc import Iterable, Iterator
from typing import Optional

import numpy as np

from repro.errors import TreeError


class PhyloNode:
    """A node in a rooted phylogenetic tree.

    Leaves carry taxon names; internal nodes may be anonymous or carry
    clade labels (e.g. bootstrap support rendered by some tools). Branch
    length is the length of the edge *above* the node (to its parent).
    """

    __slots__ = ("name", "branch_length", "children", "parent", "_id")

    _id_counter = itertools.count()

    def __init__(self, name: str = "",
                 branch_length: float = 0.0,
                 children: Optional[list["PhyloNode"]] = None) -> None:
        if branch_length < 0:
            raise TreeError(f"negative branch length {branch_length}")
        self.name = name
        self.branch_length = float(branch_length)
        self.children: list[PhyloNode] = []
        self.parent: Optional[PhyloNode] = None
        self._id = next(PhyloNode._id_counter)
        for child in children or []:
            self.add_child(child)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal/{len(self.children)}"
        return f"PhyloNode({self.name!r}, {kind}, bl={self.branch_length:g})"

    @property
    def node_id(self) -> int:
        """Process-unique identifier, stable for the node's lifetime."""
        return self._id

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def add_child(self, child: "PhyloNode") -> None:
        if child is self:
            raise TreeError("a node cannot be its own child")
        if child.parent is not None:
            raise TreeError(f"node {child.name!r} already has a parent")
        child.parent = self
        self.children.append(child)

    def remove_child(self, child: "PhyloNode") -> None:
        try:
            self.children.remove(child)
        except ValueError:
            raise TreeError(f"{child!r} is not a child of {self!r}") from None
        child.parent = None

    # -- traversals ---------------------------------------------------

    def preorder(self) -> Iterator["PhyloNode"]:
        """Depth-first, parents before children."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["PhyloNode"]:
        """Depth-first, children before parents."""
        # Iterative two-stack postorder: avoids recursion limits on the
        # deep caterpillar trees the simulator can produce.
        stack = [self]
        out: list[PhyloNode] = []
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return iter(reversed(out))

    def levelorder(self) -> Iterator["PhyloNode"]:
        """Breadth-first, shallow nodes first."""
        queue = deque([self])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    def leaves(self) -> Iterator["PhyloNode"]:
        """Leaves of the subtree rooted here, in preorder."""
        return (node for node in self.preorder() if node.is_leaf)

    def ancestors(self) -> Iterator["PhyloNode"]:
        """Ancestors from parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- measures -----------------------------------------------------

    def subtree_size(self) -> int:
        """Number of nodes (internal and leaf) in this subtree."""
        return sum(1 for _ in self.preorder())

    def leaf_count(self) -> int:
        return sum(1 for _ in self.leaves())

    def height(self) -> int:
        """Edges on the longest root-to-leaf path of this subtree."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height() for child in self.children)

    def depth_of(self) -> int:
        """Edges from the tree root down to this node."""
        return sum(1 for _ in self.ancestors())

    def distance_to_root(self) -> float:
        """Sum of branch lengths from this node up to the root."""
        total = self.branch_length
        for ancestor in self.ancestors():
            if ancestor.parent is not None:
                total += ancestor.branch_length
        return total


class PhyloTree:
    """A rooted phylogenetic tree with named leaves.

    The constructor validates that leaf names are unique and non-empty;
    every algorithm in the library relies on that invariant.
    """

    def __init__(self, root: PhyloNode) -> None:
        self.root = root
        self._check_leaf_names()

    def _check_leaf_names(self) -> None:
        seen: set[str] = set()
        for leaf in self.root.leaves():
            if not leaf.name:
                raise TreeError("every leaf must be named")
            if leaf.name in seen:
                raise TreeError(f"duplicate leaf name {leaf.name!r}")
            seen.add(leaf.name)

    def __repr__(self) -> str:
        return (
            f"PhyloTree({self.leaf_count} leaves, "
            f"{self.node_count} nodes)"
        )

    # -- basic accessors ----------------------------------------------

    @property
    def leaf_count(self) -> int:
        return self.root.leaf_count()

    @property
    def node_count(self) -> int:
        return self.root.subtree_size()

    def leaves(self) -> list[PhyloNode]:
        return list(self.root.leaves())

    def leaf_names(self) -> list[str]:
        return [leaf.name for leaf in self.root.leaves()]

    def preorder(self) -> Iterator[PhyloNode]:
        return self.root.preorder()

    def postorder(self) -> Iterator[PhyloNode]:
        return self.root.postorder()

    def levelorder(self) -> Iterator[PhyloNode]:
        return self.root.levelorder()

    def find(self, name: str) -> PhyloNode:
        """Find a node by name; raises TreeError if absent."""
        for node in self.preorder():
            if node.name == name:
                return node
        raise TreeError(f"no node named {name!r}")

    def find_leaf(self, name: str) -> PhyloNode:
        node = self.find(name)
        if not node.is_leaf:
            raise TreeError(f"node {name!r} is not a leaf")
        return node

    def is_binary(self) -> bool:
        """True if every internal node has exactly two children."""
        return all(
            len(node.children) == 2
            for node in self.preorder()
            if not node.is_leaf
        )

    # -- relationships ------------------------------------------------

    def lca(self, names: Iterable[str]) -> PhyloNode:
        """Lowest common ancestor of the named leaves."""
        nodes = [self.find(name) for name in names]
        if not nodes:
            raise TreeError("lca of an empty set of names")
        paths: list[list[PhyloNode]] = []
        for node in nodes:
            path = [node, *node.ancestors()]
            path.reverse()
            paths.append(path)
        lca = None
        for level in zip(*paths):
            first = level[0]
            if all(other is first for other in level[1:]):
                lca = first
            else:
                break
        if lca is None:
            raise TreeError("nodes do not share a root (corrupt tree)")
        return lca

    def distance(self, name_a: str, name_b: str) -> float:
        """Patristic (branch-length) distance between two leaves."""
        node_a, node_b = self.find(name_a), self.find(name_b)
        ancestor = self.lca([name_a, name_b])
        total = 0.0
        for node in (node_a, node_b):
            while node is not ancestor:
                total += node.branch_length
                assert node.parent is not None
                node = node.parent
        return total

    def cophenetic_matrix(self) -> tuple[tuple[str, ...], np.ndarray]:
        """All-pairs leaf distances (tip-to-tip, by branch length).

        Computed in a single postorder pass: O(n^2) total instead of
        n^2 separate LCA walks.
        """
        leaves = self.leaves()
        names = tuple(leaf.name for leaf in leaves)
        index = {leaf.node_id: i for i, leaf in enumerate(leaves)}
        n = len(leaves)
        dist = np.zeros((n, n), dtype=np.float64)
        # Map from node -> {leaf index: distance from node to that leaf}.
        below: dict[int, dict[int, float]] = {}
        for node in self.postorder():
            if node.is_leaf:
                below[node.node_id] = {index[node.node_id]: 0.0}
                continue
            merged: dict[int, float] = {}
            child_maps = []
            for child in node.children:
                child_map = {
                    leaf_i: d + child.branch_length
                    for leaf_i, d in below.pop(child.node_id).items()
                }
                child_maps.append(child_map)
            for first, second in itertools.combinations(child_maps, 2):
                for leaf_i, d_i in first.items():
                    for leaf_j, d_j in second.items():
                        dist[leaf_i, leaf_j] = dist[leaf_j, leaf_i] = d_i + d_j
            for child_map in child_maps:
                merged.update(child_map)
            below[node.node_id] = merged
        return names, dist

    def clades(self) -> dict[int, frozenset[str]]:
        """Leaf-name set under every node, keyed by node id."""
        result: dict[int, frozenset[str]] = {}
        sets: dict[int, frozenset[str]] = {}
        for node in self.postorder():
            if node.is_leaf:
                clade = frozenset((node.name,))
            else:
                clade = frozenset().union(
                    *(sets[child.node_id] for child in node.children)
                )
            sets[node.node_id] = clade
            result[node.node_id] = clade
        return result

    # -- editing ------------------------------------------------------

    def copy(self) -> "PhyloTree":
        """Deep copy with fresh node identities."""

        def clone(node: PhyloNode) -> PhyloNode:
            fresh = PhyloNode(node.name, node.branch_length)
            for child in node.children:
                fresh.add_child(clone(child))
            return fresh

        return PhyloTree(clone(self.root))

    def prune_to(self, keep: Iterable[str]) -> "PhyloTree":
        """Copy of the tree restricted to the named leaves.

        Unary internal nodes created by pruning are suppressed and their
        branch lengths merged, as phylogenetics tools conventionally do.
        """
        keep_set = set(keep)
        missing = keep_set - set(self.leaf_names())
        if missing:
            raise TreeError(f"cannot keep unknown leaves {sorted(missing)}")
        if not keep_set:
            raise TreeError("cannot prune to an empty leaf set")

        def build(node: PhyloNode) -> Optional[PhyloNode]:
            if node.is_leaf:
                if node.name not in keep_set:
                    return None
                return PhyloNode(node.name, node.branch_length)
            kept = [built for child in node.children
                    if (built := build(child)) is not None]
            if not kept:
                return None
            if len(kept) == 1:
                only = kept[0]
                only.branch_length += node.branch_length
                return only
            fresh = PhyloNode(node.name, node.branch_length)
            for child in kept:
                fresh.add_child(child)
            return fresh

        new_root = build(self.root)
        assert new_root is not None  # keep_set is non-empty and validated
        new_root.branch_length = 0.0
        return PhyloTree(new_root)

    def reroot_at_midpoint(self) -> "PhyloTree":
        """Copy rerooted at the midpoint of the longest leaf-leaf path."""
        names, dist = self.cophenetic_matrix()
        if len(names) < 2:
            return self.copy()
        i, j = np.unravel_index(np.argmax(dist), dist.shape)
        target = dist[i, j] / 2.0
        tree = self.copy()
        # Walk from leaf i toward leaf j accumulating branch length until
        # the midpoint edge is reached.
        node = tree.find(names[i])
        ancestor = tree.lca([names[i], names[j]])
        walked = 0.0
        path_up: list[PhyloNode] = []
        cursor = node
        while cursor is not ancestor:
            path_up.append(cursor)
            assert cursor.parent is not None
            cursor = cursor.parent
        for edge_node in path_up:
            if walked + edge_node.branch_length >= target:
                offset = target - walked
                return tree._reroot_on_edge(edge_node, offset)
            walked += edge_node.branch_length
        # Midpoint lies on leaf j's side; walk down from the LCA.
        node = tree.find(names[j])
        path_up = []
        cursor = node
        while cursor is not ancestor:
            path_up.append(cursor)
            assert cursor.parent is not None
            cursor = cursor.parent
        remaining = dist[i, j] - target
        walked = 0.0
        for edge_node in path_up:
            if walked + edge_node.branch_length >= remaining:
                offset = remaining - walked
                return tree._reroot_on_edge(edge_node, offset)
            walked += edge_node.branch_length
        return tree

    def _reroot_on_edge(self, below: PhyloNode, offset: float) -> "PhyloTree":
        """Reroot on the edge above *below*, *offset* above that node.

        Mutates and returns this tree (callers pass a private copy). The
        edge of length L splits into ``offset`` (kept by *below*) and
        ``L - offset`` (given to the old-parent side). Parent pointers on
        the path from the old parent to the old root are reversed.
        """
        if below.parent is None:
            return self
        edge_length = below.branch_length
        offset = min(max(offset, 0.0), edge_length)
        upper_length = edge_length - offset

        old_parent = below.parent
        old_parent.remove_child(below)
        new_root = PhyloNode("", 0.0)
        below.branch_length = offset
        new_root.add_child(below)

        prev = new_root
        attach_length = upper_length
        node: Optional[PhyloNode] = old_parent
        while node is not None:
            parent = node.parent
            if parent is not None:
                parent.remove_child(node)
            next_attach = node.branch_length
            node.branch_length = attach_length
            prev.add_child(node)
            prev = node
            attach_length = next_attach
            node = parent
        return PhyloTree(_suppress_unary(new_root))

    def ladderize(self) -> None:
        """Sort children in place by subtree leaf count (small first)."""
        sizes: dict[int, int] = {}
        for node in self.postorder():
            if node.is_leaf:
                sizes[node.node_id] = 1
            else:
                sizes[node.node_id] = sum(
                    sizes[child.node_id] for child in node.children
                )
        for node in self.preorder():
            node.children.sort(
                key=lambda child: (sizes[child.node_id], child.name)
            )

    def total_branch_length(self) -> float:
        return sum(
            node.branch_length for node in self.preorder()
            if node.parent is not None
        )

    # -- comparison ---------------------------------------------------

    def bipartitions(self) -> set[frozenset[str]]:
        """Non-trivial leaf bipartitions (as the smaller-side leaf sets).

        Each internal edge splits the leaves in two; the split is encoded
        canonically so two trees over the same taxa can be compared.
        """
        all_leaves = frozenset(self.leaf_names())
        splits: set[frozenset[str]] = set()
        for node_id, clade in self.clades().items():
            if len(clade) <= 1 or len(clade) >= len(all_leaves) - 1:
                continue
            other = all_leaves - clade
            canonical = min(clade, other, key=lambda s: (len(s), sorted(s)))
            splits.add(frozenset(canonical))
        return splits

    def robinson_foulds(self, other: "PhyloTree") -> int:
        """Robinson–Foulds distance (symmetric-difference of splits)."""
        if set(self.leaf_names()) != set(other.leaf_names()):
            raise TreeError("trees must share the same leaf set")
        return len(self.bipartitions() ^ other.bipartitions())

    # -- Newick I/O ---------------------------------------------------

    def to_newick(self, include_lengths: bool = True) -> str:
        """Render the tree as a Newick string (terminated with ``;``)."""

        def render(node: PhyloNode) -> str:
            if node.is_leaf:
                text = _quote_label(node.name)
            else:
                inner = ",".join(render(child) for child in node.children)
                text = f"({inner}){_quote_label(node.name)}"
            if include_lengths and node.parent is not None:
                text = f"{text}:{node.branch_length:g}"
            return text

        return f"{render(self.root)};"


def _suppress_unary(root: PhyloNode) -> PhyloNode:
    """Collapse unary internal nodes, merging their branch lengths."""
    while len(root.children) == 1 and not root.children[0].is_leaf:
        only = root.children[0]
        root.remove_child(only)
        only.parent = None
        only.branch_length = 0.0
        root = only
    for node in list(root.preorder()):
        for child in list(node.children):
            while len(child.children) == 1:
                grandchild = child.children[0]
                child.remove_child(grandchild)
                node.remove_child(child)
                grandchild.branch_length += child.branch_length
                node.add_child(grandchild)
                child = grandchild
    return root


def _quote_label(label: str) -> str:
    if not label:
        return ""
    specials = set("();,: \t'[]")
    if any(char in specials for char in label):
        escaped = label.replace("'", "''")
        return f"'{escaped}'"
    return label


class _NewickParser:
    """Recursive-descent parser for Newick tree text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> PhyloNode:
        node = self._parse_node()
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != ";":
            raise TreeError("Newick text must end with ';'")
        self.pos += 1
        self._skip_ws()
        if self.pos != len(self.text):
            raise TreeError("trailing characters after Newick ';'")
        return node

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise TreeError("unexpected end of Newick text")
        return self.text[self.pos]

    def _parse_node(self) -> PhyloNode:
        children: list[PhyloNode] = []
        if self._peek() == "(":
            self.pos += 1
            children.append(self._parse_node())
            while self._peek() == ",":
                self.pos += 1
                children.append(self._parse_node())
            if self._peek() != ")":
                raise TreeError("expected ')' in Newick text")
            self.pos += 1
        name = self._parse_label()
        branch = 0.0
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ":":
            self.pos += 1
            branch = self._parse_number()
        node = PhyloNode(name, branch)
        for child in children:
            node.add_child(child)
        return node

    def _parse_label(self) -> str:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == "'":
            return self._parse_quoted()
        start = self.pos
        stops = set("();,:")
        while (self.pos < len(self.text)
               and self.text[self.pos] not in stops
               and not self.text[self.pos].isspace()):
            self.pos += 1
        return self.text[start:self.pos]

    def _parse_quoted(self) -> str:
        self.pos += 1  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise TreeError("unterminated quoted Newick label")
            char = self.text[self.pos]
            if char == "'":
                if (self.pos + 1 < len(self.text)
                        and self.text[self.pos + 1] == "'"):
                    chars.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return "".join(chars)
            chars.append(char)
            self.pos += 1

    def _parse_number(self) -> float:
        self._skip_ws()
        start = self.pos
        allowed = set("0123456789+-.eE")
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        token = self.text[start:self.pos]
        try:
            value = float(token)
        except ValueError:
            raise TreeError(f"bad branch length {token!r}") from None
        if math.isnan(value) or math.isinf(value):
            raise TreeError(f"non-finite branch length {token!r}")
        if value < 0:
            raise TreeError(f"negative branch length {token!r}")
        return value


def parse_newick(text: str) -> PhyloTree:
    """Parse Newick *text* into a :class:`PhyloTree`."""
    if not text or not text.strip():
        raise TreeError("empty Newick text")
    return PhyloTree(_NewickParser(text.strip()).parse())


def balanced_tree(leaf_names: list[str],
                  branch_length: float = 1.0) -> PhyloTree:
    """Build a balanced binary tree over *leaf_names* (test helper)."""
    if not leaf_names:
        raise TreeError("need at least one leaf")

    def build(names: list[str]) -> PhyloNode:
        if len(names) == 1:
            return PhyloNode(names[0], branch_length)
        mid = len(names) // 2
        node = PhyloNode("", branch_length)
        node.add_child(build(names[:mid]))
        node.add_child(build(names[mid:]))
        return node

    root = build(list(leaf_names))
    root.branch_length = 0.0
    return PhyloTree(root)
