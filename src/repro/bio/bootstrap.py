"""Bootstrap support values for distance-based trees.

Columns of a multiple alignment are resampled with replacement; a tree is
rebuilt from each pseudo-replicate and every internal edge of the
reference tree is scored by the fraction of replicates containing the
same bipartition.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.bio.distance import DistanceMatrix, distance_matrix_from_msa
from repro.bio.msa import MultipleAlignment
from repro.bio.nj import neighbor_joining
from repro.bio.tree import PhyloTree
from repro.errors import TreeError

TreeBuilder = Callable[[DistanceMatrix], PhyloTree]


def resample_alignment(alignment: MultipleAlignment,
                       rng: random.Random) -> MultipleAlignment:
    """Sample alignment columns with replacement (one bootstrap draw)."""
    width = alignment.width
    columns = [rng.randrange(width) for _ in range(width)]
    rows = tuple(
        "".join(row[c] for c in columns) for row in alignment.rows
    )
    return MultipleAlignment(alignment.names, rows)


def bootstrap_support(reference: PhyloTree,
                      alignment: MultipleAlignment,
                      replicates: int = 100,
                      builder: TreeBuilder = neighbor_joining,
                      correction: str = "p",
                      seed: int | None = None) -> dict[frozenset[str], float]:
    """Support for each non-trivial bipartition of *reference*.

    Returns a mapping from bipartition (canonical smaller-side leaf set,
    as produced by :meth:`PhyloTree.bipartitions`) to the fraction of
    bootstrap replicates whose tree contains that bipartition.
    """
    if replicates < 1:
        raise TreeError("need at least one bootstrap replicate")
    if set(reference.leaf_names()) != set(alignment.names):
        raise TreeError("alignment names do not match tree leaves")
    rng = random.Random(seed)
    targets = reference.bipartitions()
    counts = {split: 0 for split in targets}
    for _ in range(replicates):
        draw = resample_alignment(alignment, rng)
        matrix = distance_matrix_from_msa(draw.names, draw.rows,
                                          correction=correction)
        replicate_tree = builder(matrix)
        found = replicate_tree.bipartitions()
        for split in targets:
            if split in found:
                counts[split] += 1
    return {split: count / replicates for split, count in counts.items()}


def annotate_support(tree: PhyloTree,
                     support: dict[frozenset[str], float]) -> None:
    """Write support percentages into internal node names, in place.

    Nodes whose clade matches a scored bipartition get a name like
    ``"87"``; others are left untouched.
    """
    all_leaves = frozenset(tree.leaf_names())
    clades = tree.clades()
    by_id = {node.node_id: node for node in tree.preorder()}
    for node_id, clade in clades.items():
        node = by_id[node_id]
        if node.is_leaf or node.is_root:
            continue
        other = all_leaves - clade
        canonical = min(clade, other, key=lambda s: (len(s), sorted(s)))
        value = support.get(frozenset(canonical))
        if value is not None:
            node.name = str(round(value * 100))
