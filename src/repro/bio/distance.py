"""Evolutionary distances between protein sequences.

Provides the classic distance corrections used to build phylogenies from
alignments (p-distance, Poisson, Kimura) and a :class:`DistanceMatrix`
value type shared by the tree-building algorithms.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.bio import alphabet
from repro.bio.align import PairwiseAlignment, global_align
from repro.bio.matrices import BLOSUM62, SubstitutionMatrix
from repro.bio.seq import ProteinSequence
from repro.errors import AlignmentError, TreeError

#: Cap applied when a correction formula diverges (p close to saturation).
MAX_DISTANCE = 10.0


def p_distance(alignment: PairwiseAlignment) -> float:
    """Proportion of differing residues over gap-free columns."""
    columns = alignment.matched_columns()
    if not columns:
        raise AlignmentError("alignment has no gap-free columns")
    diffs = sum(res_a != res_b for res_a, res_b in columns)
    return diffs / len(columns)


def poisson_distance(alignment: PairwiseAlignment) -> float:
    """Poisson-corrected distance, ``-ln(1 - p)``.

    Corrects for multiple substitutions at the same site under a simple
    Poisson model; saturates at :data:`MAX_DISTANCE`.
    """
    p = p_distance(alignment)
    if p >= 1.0:
        return MAX_DISTANCE
    return min(-math.log(1.0 - p), MAX_DISTANCE)


def kimura_distance(alignment: PairwiseAlignment) -> float:
    """Kimura's (1983) empirical protein distance correction.

    ``d = -ln(1 - p - 0.2 p^2)``; accurate for p below roughly 0.75 and
    capped at :data:`MAX_DISTANCE` beyond that.
    """
    p = p_distance(alignment)
    inner = 1.0 - p - 0.2 * p * p
    if inner <= 0.0:
        return MAX_DISTANCE
    return min(-math.log(inner), MAX_DISTANCE)


#: Named correction functions, for configuration-driven selection.
CORRECTIONS: dict[str, Callable[[PairwiseAlignment], float]] = {
    "p": p_distance,
    "poisson": poisson_distance,
    "kimura": kimura_distance,
}


@dataclass(frozen=True)
class DistanceMatrix:
    """A symmetric matrix of pairwise distances between named taxa."""

    names: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.names)
        if len(set(self.names)) != n:
            raise TreeError("distance matrix taxa must be unique")
        if self.values.shape != (n, n):
            raise TreeError(
                f"distance matrix shape {self.values.shape} does not match "
                f"{n} taxa"
            )
        if not np.allclose(self.values, self.values.T):
            raise TreeError("distance matrix must be symmetric")
        if not np.allclose(np.diag(self.values), 0.0):
            raise TreeError("distance matrix diagonal must be zero")
        if (self.values < 0).any():
            raise TreeError("distances must be non-negative")
        self.values.setflags(write=False)

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise TreeError(f"unknown taxon {name!r}") from None

    def get(self, name_a: str, name_b: str) -> float:
        """Distance between two taxa by name."""
        return float(self.values[self.index_of(name_a), self.index_of(name_b)])

    def submatrix(self, keep: Sequence[str]) -> "DistanceMatrix":
        """Restrict to the taxa in *keep* (preserving their given order)."""
        idx = [self.index_of(name) for name in keep]
        return DistanceMatrix(tuple(keep), self.values[np.ix_(idx, idx)].copy())

    def is_additive(self, tolerance: float = 1e-6) -> bool:
        """Check the four-point condition on every quartet.

        Used by tests to verify that simulated tree distances are additive
        (so neighbor-joining must reconstruct the tree exactly). O(n^4);
        intended for small matrices only.
        """
        n = len(self.names)
        d = self.values
        for i in range(n):
            for j in range(i + 1, n):
                for k in range(j + 1, n):
                    for l in range(k + 1, n):
                        sums = sorted(
                            (
                                d[i, j] + d[k, l],
                                d[i, k] + d[j, l],
                                d[i, l] + d[j, k],
                            )
                        )
                        if sums[2] - sums[1] > tolerance:
                            return False
        return True


def distance_matrix(sequences: Sequence[ProteinSequence],
                    correction: str = "kimura",
                    matrix: SubstitutionMatrix = BLOSUM62,
                    gap_open: int = 11, gap_extend: int = 1,
                    ) -> DistanceMatrix:
    """All-pairs evolutionary distances from global alignments.

    Aligns every pair with Needleman–Wunsch and applies the named
    *correction* (one of ``p``, ``poisson``, ``kimura``).
    """
    try:
        correct = CORRECTIONS[correction]
    except KeyError:
        known = ", ".join(sorted(CORRECTIONS))
        raise AlignmentError(
            f"unknown distance correction {correction!r} (known: {known})"
        ) from None
    names = tuple(seq.seq_id for seq in sequences)
    n = len(sequences)
    if n < 2:
        raise AlignmentError("need at least two sequences for distances")
    values = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            aln = global_align(sequences[i], sequences[j], matrix=matrix,
                               gap_open=gap_open, gap_extend=gap_extend)
            dist = correct(aln)
            values[i, j] = dist
            values[j, i] = dist
    return DistanceMatrix(names, values)


def distance_matrix_from_msa(names: Sequence[str],
                             rows: Sequence[str],
                             correction: str = "kimura") -> DistanceMatrix:
    """Distances from pre-aligned rows of a multiple alignment.

    *rows* are equal-length aligned strings (with gaps); pairwise
    distances consider only columns where neither row has a gap.
    """
    try:
        correct = CORRECTIONS[correction]
    except KeyError:
        known = ", ".join(sorted(CORRECTIONS))
        raise AlignmentError(
            f"unknown distance correction {correction!r} (known: {known})"
        ) from None
    if len(names) != len(rows):
        raise AlignmentError("names and rows must have equal length")
    widths = {len(row) for row in rows}
    if len(widths) > 1:
        raise AlignmentError("alignment rows have differing widths")
    n = len(rows)
    values = np.zeros((n, n), dtype=np.float64)
    # Wrap each row pair in a PairwiseAlignment so the correction
    # functions see the same interface as the pairwise path.
    placeholder = {
        name: ProteinSequence(name, rows[i].replace(alphabet.GAP, "") or "A")
        for i, name in enumerate(names)
    }
    for i in range(n):
        for j in range(i + 1, n):
            aln = PairwiseAlignment(
                placeholder[names[i]], placeholder[names[j]],
                rows[i], rows[j], score=0, mode="msa",
            )
            dist = correct(aln)
            values[i, j] = dist
            values[j, i] = dist
    return DistanceMatrix(tuple(names), values)
