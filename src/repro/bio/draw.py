"""ASCII rendering of phylogenetic trees.

Produces the box-drawing tree layout familiar from ``tree(1)``,
optionally annotating each node with a caller-supplied label (the CLI
uses this to show per-clade binding statistics next to the topology).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bio.tree import PhyloNode, PhyloTree

#: Optional per-node annotation callback.
Annotator = Callable[[PhyloNode], str]

_TEE = "├── "
_ELBOW = "└── "
_PIPE = "│   "
_SPACE = "    "


def ascii_tree(tree: PhyloTree,
               annotate: Annotator | None = None,
               max_depth: int | None = None,
               show_branch_lengths: bool = False) -> str:
    """Render *tree* as indented ASCII art.

    ``annotate(node)`` may return extra text appended to a node's line;
    ``max_depth`` collapses deeper subtrees into a ``… (n leaves)``
    summary line.
    """
    lines: list[str] = []

    def label_of(node: PhyloNode) -> str:
        label = node.name or "•"
        if show_branch_lengths and node.parent is not None:
            label = f"{label}:{node.branch_length:.3g}"
        if annotate is not None:
            extra = annotate(node)
            if extra:
                label = f"{label}  {extra}"
        return label

    def walk(node: PhyloNode, prefix: str, connector: str,
             depth: int) -> None:
        lines.append(f"{prefix}{connector}{label_of(node)}")
        if node.is_leaf:
            return
        if max_depth is not None and depth >= max_depth:
            child_prefix = prefix + (_SPACE if connector == _ELBOW
                                     else _PIPE)
            if connector == "":
                child_prefix = prefix + _SPACE
            lines.append(
                f"{child_prefix}{_ELBOW}… ({node.leaf_count()} leaves)"
            )
            return
        child_prefix = prefix
        if connector == _TEE:
            child_prefix += _PIPE
        elif connector == _ELBOW:
            child_prefix += _SPACE
        for position, child in enumerate(node.children):
            last = position == len(node.children) - 1
            walk(child, child_prefix, _ELBOW if last else _TEE,
                 depth + 1)

    walk(tree.root, "", "", 0)
    return "\n".join(lines)


def leaf_aligned_tree(tree: PhyloTree, width: int = 48) -> str:
    """A cladogram with leaves right-aligned at a fixed column.

    Branch lengths map to horizontal distance (normalised so the
    deepest leaf reaches *width* characters), which is the compact form
    field biologists expect in terminal output.
    """
    depths = {
        node.node_id: node.distance_to_root()
        for node in tree.preorder()
    }
    max_depth = max(
        (depths[leaf.node_id] for leaf in tree.leaves()), default=0.0,
    )
    scale = (width / max_depth) if max_depth > 0 else 0.0

    lines: list[str] = []

    def column(node: PhyloNode) -> int:
        return int(round(depths[node.node_id] * scale))

    def walk(node: PhyloNode, prefix: str, is_last: bool) -> None:
        if node.is_leaf:
            bar = "─" * max(1, column(node) - len(prefix) - 1)
            joint = "└" if is_last else "├"
            if node.is_root:
                lines.append(f"{node.name}")
            else:
                lines.append(f"{prefix}{joint}{bar} {node.name}")
            return
        joint = "" if node.is_root else ("└" if is_last else "├")
        label = node.name or ""
        if not node.is_root:
            lines.append(f"{prefix}{joint}─┐ {label}".rstrip())
        child_prefix = prefix if node.is_root else (
            prefix + ("  " if is_last else "│ ")
        )
        for position, child in enumerate(node.children):
            walk(child, child_prefix,
                 position == len(node.children) - 1)

    walk(tree.root, "", True)
    return "\n".join(lines)
