"""Progressive multiple sequence alignment.

The classic ClustalW-style pipeline: pairwise distances → UPGMA guide
tree → progressive profile alignment along the guide tree. Profiles are
aligned with a profile-sum-of-pairs Needleman–Wunsch, which is accurate
enough for the families the workload generator produces and keeps the
code free of external aligner dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bio import alphabet
from repro.bio.distance import distance_matrix
from repro.bio.matrices import BLOSUM62, SubstitutionMatrix
from repro.bio.seq import ProteinSequence
from repro.bio.tree import PhyloNode, PhyloTree
from repro.bio.upgma import upgma
from repro.errors import AlignmentError


@dataclass(frozen=True)
class MultipleAlignment:
    """An aligned set of sequences.

    ``rows[i]`` is the gapped text of the sequence named ``names[i]``;
    all rows share the same width.
    """

    names: tuple[str, ...]
    rows: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.rows):
            raise AlignmentError("names/rows length mismatch")
        if not self.rows:
            raise AlignmentError("empty alignment")
        widths = {len(row) for row in self.rows}
        if len(widths) != 1:
            raise AlignmentError("alignment rows have differing widths")

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def width(self) -> int:
        return len(self.rows[0])

    def row(self, name: str) -> str:
        try:
            return self.rows[self.names.index(name)]
        except ValueError:
            raise AlignmentError(f"no aligned row for {name!r}") from None

    def column(self, index: int) -> str:
        """Residues (and gaps) of one alignment column."""
        return "".join(row[index] for row in self.rows)

    def ungapped(self, name: str) -> str:
        """The original (gap-free) sequence text of one row."""
        return self.row(name).replace(alphabet.GAP, "")

    def conservation(self) -> list[float]:
        """Per-column fraction of the most common non-gap residue."""
        scores: list[float] = []
        for index in range(self.width):
            column = [char for char in self.column(index)
                      if char != alphabet.GAP]
            if not column:
                scores.append(0.0)
                continue
            top = max(column.count(char) for char in set(column))
            scores.append(top / len(self.rows))
        return scores


class _Profile:
    """A gapped alignment block with per-column residue frequencies."""

    def __init__(self, names: list[str], rows: list[str]) -> None:
        self.names = names
        self.rows = rows
        self.width = len(rows[0]) if rows else 0

    def column_counts(self, matrix_order: str) -> np.ndarray:
        """(width, |alphabet|+1) counts; last slot counts gaps."""
        counts = np.zeros((self.width, len(matrix_order) + 1),
                          dtype=np.float64)
        index = {aa: k for k, aa in enumerate(matrix_order)}
        gap_slot = len(matrix_order)
        for row in self.rows:
            canonical = alphabet.canonicalize(row.replace(alphabet.GAP, "*"))
            for pos, char in enumerate(canonical):
                if char == "*":
                    counts[pos, gap_slot] += 1
                else:
                    counts[pos, index[char]] += 1
        return counts


def _profile_scores(profile_a: _Profile, profile_b: _Profile,
                    matrix: SubstitutionMatrix,
                    gap_residue_score: float) -> np.ndarray:
    """Sum-of-pairs expected score for every column pair."""
    order = alphabet.AMINO_ACIDS
    table = matrix.as_array(order).astype(np.float64)
    counts_a = profile_a.column_counts(order)
    counts_b = profile_b.column_counts(order)
    res_a, gaps_a = counts_a[:, :-1], counts_a[:, -1]
    res_b, gaps_b = counts_b[:, :-1], counts_b[:, -1]
    # Residue-vs-residue expectation plus residue-vs-gap penalties.
    scores = res_a @ table @ res_b.T
    total_res_a = res_a.sum(axis=1)
    total_res_b = res_b.sum(axis=1)
    scores += gap_residue_score * (
        np.outer(gaps_a, total_res_b) + np.outer(total_res_a, gaps_b)
    )
    pairs = len(profile_a.rows) * len(profile_b.rows)
    return scores / pairs


def _align_profiles(profile_a: _Profile, profile_b: _Profile,
                    matrix: SubstitutionMatrix,
                    gap_open: float, gap_extend: float) -> _Profile:
    """Needleman–Wunsch over profile columns with affine gaps."""
    pair = _profile_scores(profile_a, profile_b, matrix,
                           gap_residue_score=-gap_extend)
    n, m = profile_a.width, profile_b.width
    neg_inf = -1e18
    match = np.full((n + 1, m + 1), neg_inf)
    gap_a = np.full((n + 1, m + 1), neg_inf)
    gap_b = np.full((n + 1, m + 1), neg_inf)
    match[0, 0] = 0.0
    for j in range(1, m + 1):
        gap_a[0, j] = -(gap_open + (j - 1) * gap_extend)
    for i in range(1, n + 1):
        gap_b[i, 0] = -(gap_open + (i - 1) * gap_extend)

    for i in range(1, n + 1):
        prev_m, prev_a, prev_b = match[i - 1], gap_a[i - 1], gap_b[i - 1]
        best_prev = np.maximum(np.maximum(prev_m, prev_a), prev_b)
        gap_b[i] = np.maximum(
            np.maximum(prev_m, prev_a) - gap_open, prev_b - gap_extend
        )
        gap_b[i, 0] = -(gap_open + (i - 1) * gap_extend)
        row_m, row_a = match[i], gap_a[i]
        row_pair = pair[i - 1]
        for j in range(1, m + 1):
            row_m[j] = best_prev[j - 1] + row_pair[j - 1]
            row_a[j] = max(
                max(row_m[j - 1], gap_b[i, j - 1]) - gap_open,
                row_a[j - 1] - gap_extend,
            )

    # Traceback by score recomputation.
    out_a_cols: list[int] = []  # -1 marks a gap column
    out_b_cols: list[int] = []
    i, j = n, m
    scores = {"m": match, "a": gap_a, "b": gap_b}
    state = max(scores, key=lambda key: scores[key][n, m])
    while i > 0 or j > 0:
        if state == "m" and i > 0 and j > 0:
            out_a_cols.append(i - 1)
            out_b_cols.append(j - 1)
            prev_val = match[i, j] - pair[i - 1, j - 1]
            i -= 1
            j -= 1
            state = _pick_state(match[i, j], gap_a[i, j], gap_b[i, j],
                                prev_val)
        elif state == "a" and j > 0:
            out_a_cols.append(-1)
            out_b_cols.append(j - 1)
            value = gap_a[i, j]
            j -= 1
            if abs(gap_a[i, j] - gap_extend - value) < 1e-9:
                state = "a"
            elif abs(match[i, j] - gap_open - value) < 1e-9:
                state = "m"
            else:
                state = "b"
        elif state == "b" and i > 0:
            out_a_cols.append(i - 1)
            out_b_cols.append(-1)
            value = gap_b[i, j]
            i -= 1
            if abs(gap_b[i, j] - gap_extend - value) < 1e-9:
                state = "b"
            elif abs(match[i, j] - gap_open - value) < 1e-9:
                state = "m"
            else:
                state = "a"
        elif j > 0:
            state = "a"
        else:
            state = "b"

    out_a_cols.reverse()
    out_b_cols.reverse()

    def expand(rows: list[str], cols: list[int]) -> list[str]:
        return [
            "".join(row[c] if c >= 0 else alphabet.GAP for c in cols)
            for row in rows
        ]

    return _Profile(
        profile_a.names + profile_b.names,
        expand(profile_a.rows, out_a_cols) + expand(profile_b.rows,
                                                    out_b_cols),
    )


def _pick_state(val_m: float, val_a: float, val_b: float,
                target: float) -> str:
    for state, value in (("m", val_m), ("a", val_a), ("b", val_b)):
        if abs(value - target) < 1e-9:
            return state
    # Floating-point drift: fall back to the best-scoring state.
    best = max((val_m, "m"), (val_a, "a"), (val_b, "b"))
    return best[1]


def progressive_align(sequences: Sequence[ProteinSequence],
                      matrix: SubstitutionMatrix = BLOSUM62,
                      gap_open: float = 11.0, gap_extend: float = 1.0,
                      guide_tree: PhyloTree | None = None,
                      ) -> MultipleAlignment:
    """Progressively align *sequences* along a UPGMA guide tree.

    A *guide_tree* whose leaf names match the sequence ids may be passed
    to skip the distance-matrix step (used when the caller already built
    the phylogeny).
    """
    if len(sequences) == 0:
        raise AlignmentError("no sequences to align")
    by_id = {seq.seq_id: seq for seq in sequences}
    if len(by_id) != len(sequences):
        raise AlignmentError("duplicate sequence ids")
    if len(sequences) == 1:
        only = sequences[0]
        return MultipleAlignment((only.seq_id,), (only.residues,))

    if guide_tree is None:
        guide_tree = upgma(distance_matrix(sequences, correction="p",
                                           matrix=matrix))
    else:
        tree_names = set(guide_tree.leaf_names())
        if tree_names != set(by_id):
            raise AlignmentError(
                "guide tree leaves do not match sequence ids"
            )

    def align_node(node: PhyloNode) -> _Profile:
        if node.is_leaf:
            seq = by_id[node.name]
            return _Profile([seq.seq_id], [seq.residues])
        profiles = [align_node(child) for child in node.children]
        merged = profiles[0]
        for nxt in profiles[1:]:
            merged = _align_profiles(merged, nxt, matrix,
                                     gap_open, gap_extend)
        return merged

    profile = align_node(guide_tree.root)
    # Restore caller order.
    order = {seq.seq_id: pos for pos, seq in enumerate(sequences)}
    paired = sorted(zip(profile.names, profile.rows),
                    key=lambda item: order[item[0]])
    names = tuple(name for name, _ in paired)
    rows = tuple(row for _, row in paired)
    return MultipleAlignment(names, rows)
