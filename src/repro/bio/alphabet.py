"""Amino-acid alphabet and residue validation.

The twenty standard amino acids, ordered by their one-letter codes. The
ambiguity codes ``B`` (Asx), ``Z`` (Glx) and ``X`` (unknown) are accepted on
input but are not part of the canonical alphabet; distance and alignment
routines treat them through :func:`canonicalize`.
"""

from __future__ import annotations

from repro.errors import SequenceError

#: The twenty standard amino acids, one-letter codes, alphabetical order.
AMINO_ACIDS: str = "ACDEFGHIKLMNPQRSTVWY"

#: Ambiguity codes accepted on input.
AMBIGUOUS: str = "BZX"

#: The gap character used by alignments.
GAP: str = "-"

#: Index of each canonical residue, for matrix lookups.
AA_INDEX: dict[str, int] = {aa: i for i, aa in enumerate(AMINO_ACIDS)}

#: Three-letter names, for pretty-printing and PDB-shaped records.
THREE_LETTER: dict[str, str] = {
    "A": "ALA", "C": "CYS", "D": "ASP", "E": "GLU", "F": "PHE",
    "G": "GLY", "H": "HIS", "I": "ILE", "K": "LYS", "L": "LEU",
    "M": "MET", "N": "ASN", "P": "PRO", "Q": "GLN", "R": "ARG",
    "S": "SER", "T": "THR", "V": "VAL", "W": "TRP", "Y": "TYR",
}

#: Average residue masses in Daltons (monoisotopic masses are not needed
#: for this system; averages match what sequence viewers report).
RESIDUE_MASS: dict[str, float] = {
    "A": 71.08, "C": 103.14, "D": 115.09, "E": 129.12, "F": 147.18,
    "G": 57.05, "H": 137.14, "I": 113.16, "K": 128.17, "L": 113.16,
    "M": 131.19, "N": 114.10, "P": 97.12, "Q": 128.13, "R": 156.19,
    "S": 87.08, "T": 101.10, "V": 99.13, "W": 186.21, "Y": 163.18,
}

#: Mass of one water molecule, added once per peptide chain.
WATER_MASS: float = 18.02

_VALID = set(AMINO_ACIDS) | set(AMBIGUOUS)

#: Ambiguity resolution used by :func:`canonicalize`. ``B`` resolves to
#: aspartate, ``Z`` to glutamate and ``X`` to alanine: the most common
#: member of each ambiguity class, which keeps scoring deterministic.
_RESOLVE = {"B": "D", "Z": "E", "X": "A"}


def is_valid_residue(char: str) -> bool:
    """Return True if *char* is a standard or ambiguous residue code."""
    return char in _VALID


def validate(residues: str) -> str:
    """Validate *residues*, returning the upper-cased sequence text.

    Raises :class:`~repro.errors.SequenceError` if the text is empty or
    contains a character outside the accepted alphabet.
    """
    if not residues:
        raise SequenceError("empty sequence")
    upper = residues.upper()
    for pos, char in enumerate(upper):
        if char not in _VALID:
            raise SequenceError(
                f"invalid residue {char!r} at position {pos}"
            )
    return upper


def canonicalize(residues: str) -> str:
    """Map ambiguity codes to canonical residues (B→D, Z→E, X→A)."""
    if not any(char in _RESOLVE for char in residues):
        return residues
    return "".join(_RESOLVE.get(char, char) for char in residues)


def molecular_weight(residues: str) -> float:
    """Average molecular weight of the peptide, in Daltons."""
    canonical = canonicalize(validate(residues))
    return WATER_MASS + sum(RESIDUE_MASS[aa] for aa in canonical)
