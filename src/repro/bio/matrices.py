"""Substitution matrices (BLOSUM62, PAM250) for protein alignment.

The matrices are stored in the conventional ``ARNDCQEGHILKMFPSTWYV``
publication order and exposed through :class:`SubstitutionMatrix`, which
resolves ambiguity codes and validates symmetry on construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio import alphabet
from repro.errors import SequenceError

#: Residue order used by the raw matrix literals below.
MATRIX_ORDER = "ARNDCQEGHILKMFPSTWYV"

_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""

_PAM250_ROWS = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
"""


def _parse_rows(text: str) -> np.ndarray:
    rows = [
        [int(value) for value in line.split()]
        for line in text.strip().splitlines()
    ]
    matrix = np.array(rows, dtype=np.int64)
    if matrix.shape != (20, 20):
        raise ValueError(f"bad matrix shape {matrix.shape}")
    return matrix


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A symmetric residue substitution scoring matrix.

    Scores are looked up with :meth:`score`, which resolves ambiguity
    codes (B/Z/X) through :func:`repro.bio.alphabet.canonicalize`.
    """

    name: str
    _scores: dict[tuple[str, str], int]

    @classmethod
    def from_rows(cls, name: str, matrix: np.ndarray,
                  order: str = MATRIX_ORDER) -> "SubstitutionMatrix":
        """Build a matrix from a square array in residue *order*."""
        if matrix.shape != (len(order), len(order)):
            raise ValueError("matrix shape does not match residue order")
        if not np.array_equal(matrix, matrix.T):
            raise ValueError(f"substitution matrix {name!r} is not symmetric")
        scores = {
            (a, b): int(matrix[i, j])
            for i, a in enumerate(order)
            for j, b in enumerate(order)
        }
        return cls(name, scores)

    def score(self, res_a: str, res_b: str) -> int:
        """Substitution score between two one-letter residue codes."""
        key = (alphabet.canonicalize(res_a), alphabet.canonicalize(res_b))
        try:
            return self._scores[key]
        except KeyError:
            raise SequenceError(
                f"cannot score residue pair {res_a!r}/{res_b!r}"
            ) from None

    def as_array(self, order: str = alphabet.AMINO_ACIDS) -> np.ndarray:
        """Scores as a dense array in the given residue *order*."""
        size = len(order)
        out = np.empty((size, size), dtype=np.int64)
        for i, res_a in enumerate(order):
            for j, res_b in enumerate(order):
                out[i, j] = self._scores[(res_a, res_b)]
        return out

    def max_score(self) -> int:
        """Largest diagonal score (used for score normalisation)."""
        return max(self._scores[(aa, aa)] for aa in alphabet.AMINO_ACIDS)


BLOSUM62 = SubstitutionMatrix.from_rows("BLOSUM62", _parse_rows(_BLOSUM62_ROWS))
PAM250 = SubstitutionMatrix.from_rows("PAM250", _parse_rows(_PAM250_ROWS))

#: Matrices by name, for configuration-driven lookup.
MATRICES: dict[str, SubstitutionMatrix] = {
    "BLOSUM62": BLOSUM62,
    "PAM250": PAM250,
}


def get_matrix(name: str) -> SubstitutionMatrix:
    """Look up a matrix by (case-insensitive) name."""
    try:
        return MATRICES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(MATRICES))
        raise SequenceError(
            f"unknown substitution matrix {name!r} (known: {known})"
        ) from None
