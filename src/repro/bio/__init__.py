"""Phylogenetics substrate: sequences, alignment, distances, trees.

This subpackage implements everything DrugTree needs from classic
molecular phylogenetics, from FASTA parsing up to bootstrapped
neighbor-joining trees.
"""

from repro.bio.align import PairwiseAlignment, global_align, local_align
from repro.bio.bootstrap import annotate_support, bootstrap_support
from repro.bio.consensus import (
    majority_rule_consensus,
    strict_consensus,
    support_values,
)
from repro.bio.draw import ascii_tree, leaf_aligned_tree
from repro.bio.distance import (
    DistanceMatrix,
    distance_matrix,
    distance_matrix_from_msa,
    kimura_distance,
    p_distance,
    poisson_distance,
)
from repro.bio.matrices import BLOSUM62, PAM250, SubstitutionMatrix, get_matrix
from repro.bio.msa import MultipleAlignment, progressive_align
from repro.bio.nj import neighbor_joining
from repro.bio.seq import ProteinSequence, parse_fasta, write_fasta
from repro.bio.seqsearch import KmerIndex, SearchHit
from repro.bio.simulate import (
    EvolutionModel,
    birth_death_tree,
    caterpillar_tree,
    evolve_sequences,
)
from repro.bio.tree import PhyloNode, PhyloTree, balanced_tree, parse_newick
from repro.bio.upgma import upgma, wpgma

__all__ = [
    "BLOSUM62",
    "PAM250",
    "DistanceMatrix",
    "EvolutionModel",
    "MultipleAlignment",
    "PairwiseAlignment",
    "PhyloNode",
    "PhyloTree",
    "ProteinSequence",
    "SubstitutionMatrix",
    "KmerIndex",
    "SearchHit",
    "annotate_support",
    "ascii_tree",
    "balanced_tree",
    "birth_death_tree",
    "bootstrap_support",
    "caterpillar_tree",
    "distance_matrix",
    "distance_matrix_from_msa",
    "evolve_sequences",
    "get_matrix",
    "global_align",
    "kimura_distance",
    "leaf_aligned_tree",
    "local_align",
    "majority_rule_consensus",
    "neighbor_joining",
    "p_distance",
    "parse_fasta",
    "parse_newick",
    "poisson_distance",
    "progressive_align",
    "strict_consensus",
    "support_values",
    "upgma",
    "wpgma",
    "write_fasta",
]
