"""Protein sequences and FASTA input/output.

:class:`ProteinSequence` is an immutable value object: two sequences with the
same identifier and residues compare equal and hash identically, which lets
higher layers use them as dictionary keys and set members.
"""

from __future__ import annotations

import io
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.bio import alphabet
from repro.errors import SequenceError


@dataclass(frozen=True, slots=True)
class ProteinSequence:
    """An identified protein sequence.

    Parameters
    ----------
    seq_id:
        Stable identifier (e.g. an accession like ``"DHFR_HUMAN"``).
    residues:
        One-letter residue codes; validated and upper-cased on creation.
    description:
        Optional free-text description carried from FASTA headers.
    """

    seq_id: str
    residues: str
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.seq_id:
            raise SequenceError("sequence id must be non-empty")
        object.__setattr__(self, "residues", alphabet.validate(self.residues))

    def __len__(self) -> int:
        return len(self.residues)

    def __iter__(self) -> Iterator[str]:
        return iter(self.residues)

    def __getitem__(self, index: int | slice) -> str:
        return self.residues[index]

    @property
    def canonical(self) -> str:
        """Residues with ambiguity codes resolved."""
        return alphabet.canonicalize(self.residues)

    @property
    def molecular_weight(self) -> float:
        """Average molecular weight in Daltons."""
        return alphabet.molecular_weight(self.residues)

    def composition(self) -> dict[str, float]:
        """Fraction of each canonical residue present in the sequence."""
        counts = Counter(self.canonical)
        total = len(self.residues)
        return {aa: counts.get(aa, 0) / total for aa in alphabet.AMINO_ACIDS}

    def identity(self, other: "ProteinSequence") -> float:
        """Fraction of matching positions against *other*.

        Both sequences must have equal length (use alignment first
        otherwise); raises :class:`~repro.errors.SequenceError` if not.
        """
        if len(self) != len(other):
            raise SequenceError(
                "identity requires equal-length sequences; "
                f"got {len(self)} and {len(other)}"
            )
        matches = sum(a == b for a, b in zip(self.residues, other.residues))
        return matches / len(self)

    def to_fasta(self, width: int = 60) -> str:
        """Render this sequence as a FASTA record."""
        header = f">{self.seq_id}"
        if self.description:
            header = f"{header} {self.description}"
        body = "\n".join(
            self.residues[i:i + width]
            for i in range(0, len(self.residues), width)
        )
        return f"{header}\n{body}\n"


def parse_fasta(text: str) -> list[ProteinSequence]:
    """Parse FASTA *text* into a list of sequences.

    Handles multi-line records, blank lines, and ``;`` comment lines.
    Raises :class:`~repro.errors.SequenceError` on structural problems
    (residue data before any header, a header with no residues, or a
    duplicated identifier).
    """
    sequences: list[ProteinSequence] = []
    seen_ids: set[str] = set()
    header: str | None = None
    chunks: list[str] = []

    def flush() -> None:
        if header is None:
            return
        seq_id, _, description = header.partition(" ")
        residues = "".join(chunks)
        if not residues:
            raise SequenceError(f"FASTA record {seq_id!r} has no residues")
        if seq_id in seen_ids:
            raise SequenceError(f"duplicate FASTA id {seq_id!r}")
        seen_ids.add(seq_id)
        sequences.append(ProteinSequence(seq_id, residues, description))

    for raw_line in io.StringIO(text):
        line = raw_line.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                raise SequenceError("FASTA header with no identifier")
            chunks = []
        else:
            if header is None:
                raise SequenceError("residue data before any FASTA header")
            chunks.append(line)
    flush()
    return sequences


def write_fasta(sequences: Iterable[ProteinSequence], width: int = 60) -> str:
    """Render *sequences* as FASTA text."""
    return "".join(seq.to_fasta(width=width) for seq in sequences)
