"""UPGMA and WPGMA hierarchical clustering tree construction.

UPGMA produces an ultrametric (clock-like) rooted tree; it is the method
used for guide trees in progressive multiple alignment and the fast
baseline compared against neighbor-joining in the tree-build benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.bio.distance import DistanceMatrix
from repro.bio.tree import PhyloNode, PhyloTree
from repro.errors import TreeError


def upgma(matrix: DistanceMatrix, weighted: bool = False) -> PhyloTree:
    """Build a rooted ultrametric tree by average-linkage clustering.

    With ``weighted=True`` this is WPGMA (simple average of the two
    merged clusters); the default is UPGMA proper (average weighted by
    cluster sizes).
    """
    n = len(matrix)
    if n < 2:
        raise TreeError("UPGMA needs at least two taxa")

    dist = matrix.values.astype(np.float64).copy()
    np.fill_diagonal(dist, np.inf)
    nodes: list[PhyloNode | None] = [
        PhyloNode(name, 0.0) for name in matrix.names
    ]
    heights = [0.0] * n
    sizes = [1] * n
    active = set(range(n))

    while len(active) > 1:
        flat = int(np.argmin(dist))
        i, j = divmod(flat, dist.shape[0])
        if i == j or i not in active or j not in active:
            raise TreeError("UPGMA internal error: bad merge pair")
        merge_height = dist[i, j] / 2.0

        node_i, node_j = nodes[i], nodes[j]
        assert node_i is not None and node_j is not None
        node_i.branch_length = max(merge_height - heights[i], 0.0)
        node_j.branch_length = max(merge_height - heights[j], 0.0)
        parent = PhyloNode("", 0.0)
        parent.add_child(node_i)
        parent.add_child(node_j)

        # Merge cluster j into slot i; retire slot j.
        if weighted:
            merged = (dist[i, :] + dist[j, :]) / 2.0
        else:
            weight_i = sizes[i] / (sizes[i] + sizes[j])
            weight_j = sizes[j] / (sizes[i] + sizes[j])
            merged = weight_i * dist[i, :] + weight_j * dist[j, :]
        dist[i, :] = merged
        dist[:, i] = merged
        dist[i, i] = np.inf
        dist[j, :] = np.inf
        dist[:, j] = np.inf

        nodes[i] = parent
        nodes[j] = None
        heights[i] = merge_height
        sizes[i] += sizes[j]
        active.remove(j)

    root_index = next(iter(active))
    root = nodes[root_index]
    assert root is not None
    return PhyloTree(root)


def wpgma(matrix: DistanceMatrix) -> PhyloTree:
    """WPGMA clustering (see :func:`upgma` with ``weighted=True``)."""
    return upgma(matrix, weighted=True)
