"""Neighbor-joining tree construction (Saitou & Nei 1987).

Given an additive distance matrix, neighbor-joining reconstructs the
generating tree exactly; on real (non-additive) distances it is the
standard fast distance-based method. This implementation is O(n^3) with
numpy-vectorised Q-matrix computation.
"""

from __future__ import annotations

import numpy as np

from repro.bio.distance import DistanceMatrix
from repro.bio.tree import PhyloNode, PhyloTree
from repro.errors import TreeError


def neighbor_joining(matrix: DistanceMatrix) -> PhyloTree:
    """Build an (unrooted, represented as rooted-at-trifurcation) NJ tree.

    The returned tree's root has three children (the conventional
    representation of an unrooted binary tree); use
    :meth:`PhyloTree.reroot_at_midpoint` for a rooted display form.
    """
    n = len(matrix)
    if n < 2:
        raise TreeError("neighbor joining needs at least two taxa")
    if n == 2:
        half = matrix.values[0, 1] / 2.0
        root = PhyloNode("", 0.0)
        root.add_child(PhyloNode(matrix.names[0], half))
        root.add_child(PhyloNode(matrix.names[1], half))
        return PhyloTree(root)

    dist = matrix.values.astype(np.float64).copy()
    nodes: list[PhyloNode] = [
        PhyloNode(name, 0.0) for name in matrix.names
    ]
    active = list(range(n))

    while len(active) > 3:
        sub = dist[np.ix_(active, active)]
        m = len(active)
        totals = sub.sum(axis=1)
        # Q[i,j] = (m-2) d(i,j) - r(i) - r(j); minimise over i != j.
        q = (m - 2) * sub - totals[:, None] - totals[None, :]
        np.fill_diagonal(q, np.inf)
        flat = int(np.argmin(q))
        i_local, j_local = divmod(flat, m)
        i_global, j_global = active[i_local], active[j_local]

        d_ij = sub[i_local, j_local]
        delta = (totals[i_local] - totals[j_local]) / (m - 2)
        limb_i = 0.5 * (d_ij + delta)
        limb_j = d_ij - limb_i
        limb_i = max(limb_i, 0.0)
        limb_j = max(limb_j, 0.0)

        parent = PhyloNode("", 0.0)
        child_i, child_j = nodes[i_global], nodes[j_global]
        child_i.branch_length = limb_i
        child_j.branch_length = limb_j
        parent.add_child(child_i)
        parent.add_child(child_j)

        # Distances from the new node to every remaining taxon.
        new_row = np.zeros(dist.shape[0] + 1, dtype=np.float64)
        for k_global in active:
            if k_global in (i_global, j_global):
                continue
            new_row[k_global] = 0.5 * (
                dist[i_global, k_global]
                + dist[j_global, k_global]
                - d_ij
            )
        dist = np.pad(dist, ((0, 1), (0, 1)))
        dist[-1, :-1] = new_row[:-1]
        dist[:-1, -1] = new_row[:-1]
        new_index = dist.shape[0] - 1
        nodes.append(parent)
        active = [k for k in active if k not in (i_global, j_global)]
        active.append(new_index)

    # Join the final three nodes under an unrooted trifurcation.
    a, b, c = active
    d_ab = dist[a, b]
    d_ac = dist[a, c]
    d_bc = dist[b, c]
    limb_a = max(0.5 * (d_ab + d_ac - d_bc), 0.0)
    limb_b = max(0.5 * (d_ab + d_bc - d_ac), 0.0)
    limb_c = max(0.5 * (d_ac + d_bc - d_ab), 0.0)
    root = PhyloNode("", 0.0)
    for index, limb in ((a, limb_a), (b, limb_b), (c, limb_c)):
        node = nodes[index]
        node.branch_length = limb
        root.add_child(node)
    return PhyloTree(root)
