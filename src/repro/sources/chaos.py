"""Deterministic fault injection: seeded, virtual-time fault schedules.

The paper's pain point — "data is being obtained from multiple sources"
— is really about surviving *flaky* sources, not just averaging fast
ones. This module makes whole failure scenarios first-class and
replayable: a :class:`FaultSchedule` is a composition of virtual-time
windows (outages, latency spikes, error bursts, flapping), and a
:class:`ChaosSource` wrapper applies one schedule to any source that
speaks the uniform dialect. Because every effect is driven by the
:class:`~repro.sources.clock.SimulatedClock` and a seeded RNG, the same
``(seed, schedule)`` pair replays the exact same failure timeline,
round-trip for round-trip — which is what lets experiment E12 compare
resilience policies under *identical* fault injections.

Fault windows compose: a latency spike overlapping an error burst
yields slow *and* flaky round-trips, exactly like a degrading real
service. Outside every window the wrapper is pass-through (the
zero-overhead happy path).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.errors import SourceError, SourceUnavailableError
from repro.obs import get_metrics, get_tracer
from repro.sources.base import DataSource
from repro.sources.clock import SimulatedClock
from repro.sources.wrappers import SourceWrapper


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0 or end_s <= start_s:
        raise SourceError(
            f"fault window [{start_s}, {end_s}) is not a valid "
            "virtual-time interval"
        )


@dataclass(frozen=True)
class Outage:
    """The source is dark for the whole window: every call times out."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)

    def down_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class Flapping:
    """The source alternates up/down inside the window.

    Each ``period_s`` starts with a down phase lasting ``duty`` of the
    period — a service crash-looping behind a load balancer.
    """

    start_s: float
    end_s: float
    period_s: float = 2.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.period_s <= 0:
            raise SourceError("flapping period must be positive")
        if not 0.0 < self.duty < 1.0:
            raise SourceError("flapping duty must be in (0, 1)")

    def down_at(self, t: float) -> bool:
        if not self.start_s <= t < self.end_s:
            return False
        phase = (t - self.start_s) % self.period_s
        return phase < self.period_s * self.duty


@dataclass(frozen=True)
class LatencySpike:
    """Round-trips inside the window cost extra virtual latency."""

    start_s: float
    end_s: float
    extra_s: float = 0.0
    #: Multiplier applied to the wrapped call's own virtual cost.
    factor: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.extra_s < 0:
            raise SourceError("latency spike extra must be >= 0")
        if self.factor < 1.0:
            raise SourceError("latency spike factor must be >= 1")

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class ErrorBurst:
    """Calls inside the window fail with the given probability.

    Failures draw from the schedule's seeded RNG, so the burst's exact
    victim sequence replays with the schedule.
    """

    start_s: float
    end_s: float
    failure_rate: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not 0.0 < self.failure_rate <= 1.0:
            raise SourceError("error-burst rate must be in (0, 1]")

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


#: Anything a FaultSchedule can hold.
FaultEvent = Outage | Flapping | LatencySpike | ErrorBurst


@dataclass(frozen=True)
class ChaosEffect:
    """The combined fault state of one instant of virtual time."""

    down: bool = False
    extra_latency_s: float = 0.0
    latency_factor: float = 1.0
    failure_rate: float = 0.0

    @property
    def clean(self) -> bool:
        return (not self.down and self.extra_latency_s == 0.0
                and self.latency_factor == 1.0
                and self.failure_rate == 0.0)


class FaultSchedule:
    """A composable, seeded set of fault windows for one source."""

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent]
                 = (), seed: int = 0) -> None:
        self.events = tuple(events)
        self.seed = seed
        self._rng = random.Random(seed)

    def effect_at(self, t: float) -> ChaosEffect:
        """Merge every window covering virtual time *t*."""
        down = False
        extra = 0.0
        factor = 1.0
        failure_rate = 0.0
        for event in self.events:
            if isinstance(event, (Outage, Flapping)):
                down = down or event.down_at(t)
            elif isinstance(event, LatencySpike):
                if event.active_at(t):
                    extra += event.extra_s
                    factor *= event.factor
            elif event.active_at(t):  # ErrorBurst
                failure_rate = max(failure_rate, event.failure_rate)
        return ChaosEffect(down=down, extra_latency_s=extra,
                           latency_factor=factor,
                           failure_rate=failure_rate)

    def draw_failure(self, rate: float) -> bool:
        """One seeded Bernoulli draw (consumed per chaos-window call)."""
        return rate > 0 and self._rng.random() < rate

    def horizon_s(self) -> float:
        """Virtual time at which the last window ends."""
        return max((event.end_s for event in self.events), default=0.0)

    def describe(self) -> list[str]:
        return [
            f"{type(event).__name__}[{event.start_s:g}s, "
            f"{event.end_s:g}s)"
            for event in self.events
        ]

    def __repr__(self) -> str:
        return (f"FaultSchedule({len(self.events)} events, "
                f"seed={self.seed})")


@dataclass
class ChaosStats:
    """What one ChaosSource injected so far."""

    calls: int = 0
    injected_failures: int = 0
    injected_latency_s: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "injected_failures": self.injected_failures,
            "injected_latency_s": round(self.injected_latency_s, 6),
        }


class ChaosSource(SourceWrapper):
    """Applies a :class:`FaultSchedule` to the wrapped source.

    Stacks like every other wrapper. A call landing in a down window
    charges ``timeout_s`` of virtual latency (a real client pays for
    its timeouts) and raises :class:`SourceUnavailableError`; a call in
    a latency window pays the extra/multiplied cost; a call in an error
    burst fails per the schedule's seeded RNG. Outside every window the
    wrapper delegates untouched.
    """

    def __init__(self, inner: DataSource, schedule: FaultSchedule,
                 timeout_s: float = 0.25) -> None:
        super().__init__(inner)
        if timeout_s < 0:
            raise SourceError("chaos timeout must be >= 0")
        self.schedule = schedule
        self.timeout_s = timeout_s
        self.chaos_stats = ChaosStats()
        # Scheduler workers hit the same wrapper concurrently; stats
        # increments are read-modify-writes and need the guard.  Clock
        # charges stay outside it so waiters never pay for advances.
        self._chaos_lock = threading.Lock()

    # -- fault application ------------------------------------------------

    def _fail(self, reason: str) -> None:
        with self._chaos_lock:
            self.chaos_stats.injected_failures += 1
            self.chaos_stats.injected_latency_s += self.timeout_s
        metrics = get_metrics()
        metrics.counter(f"chaos.injected_failures.{self.name}").inc()
        # A timeout is paid for: the client waited before giving up.
        self.clock.advance(self.timeout_s)
        raise SourceUnavailableError(
            f"source {self.name!r} {reason} (chaos-injected)"
        )

    def _guarded(self, call):
        """Apply the schedule's effect at now() around one delegate."""
        with self._chaos_lock:
            self.chaos_stats.calls += 1
        effect = self.schedule.effect_at(self.clock.now())
        if effect.clean:
            return call()
        with get_tracer().span("chaos.window", source=self.name,
                               down=effect.down):
            if effect.down:
                self._fail("is in an outage window")
            if self.schedule.draw_failure(effect.failure_rate):
                self._fail("dropped the request (error burst)")
            if effect.extra_latency_s:
                with self._chaos_lock:
                    self.chaos_stats.injected_latency_s += \
                        effect.extra_latency_s
                get_metrics().counter(
                    f"chaos.injected_latency_s.{self.name}"
                ).inc(effect.extra_latency_s)
                self.clock.advance(effect.extra_latency_s)
            if effect.latency_factor > 1.0:
                started = self.clock.now()
                result = call()
                slowdown = ((self.clock.now() - started)
                            * (effect.latency_factor - 1.0))
                with self._chaos_lock:
                    self.chaos_stats.injected_latency_s += slowdown
                self.clock.advance(slowdown)
                return result
            return call()

    def fetch_many(self, kind: str, keys) -> dict[str, object]:
        key_list = list(keys)
        return self._guarded(
            lambda: self.inner.fetch_many(kind, key_list)
        )

    def scan_keys(self, kind: str) -> list[str]:
        return self._guarded(lambda: self.inner.scan_keys(kind))


# -- scenario library -----------------------------------------------------

#: Named scenarios for ``repro chaos`` and experiment E12. Each maps the
#: three standard dataset sources to a schedule factory taking a seed.
SCENARIOS = ("calm", "blackout", "flaky", "rushhour", "cascade")


def scenario_schedules(name: str, seed: int = 0,
                       ) -> dict[str, FaultSchedule]:
    """Fault schedules per source name for a named scenario.

    ``calm``     — no faults anywhere (the control arm).
    ``blackout`` — the annotation service goes completely dark for a
                   long window; structures stay healthy.
    ``flaky``    — every source suffers staggered error bursts.
    ``rushhour`` — latency spikes everywhere plus a flapping activity
                   service (the overloaded-backend picture).
    ``cascade``  — an outage rolls from source to source, with error
                   bursts trailing each recovery.
    """
    if name not in SCENARIOS:
        raise SourceError(
            f"unknown chaos scenario {name!r} (known: {SCENARIOS})"
        )
    if name == "calm":
        return {
            "pdb-sim": FaultSchedule(seed=seed),
            "chembl-sim": FaultSchedule(seed=seed + 1),
            "go-sim": FaultSchedule(seed=seed + 2),
        }
    if name == "blackout":
        return {
            "pdb-sim": FaultSchedule(seed=seed),
            "chembl-sim": FaultSchedule(seed=seed + 1),
            "go-sim": FaultSchedule(
                [Outage(2.0, 120.0)], seed=seed + 2,
            ),
        }
    if name == "flaky":
        return {
            "pdb-sim": FaultSchedule(
                [ErrorBurst(1.0, 40.0, failure_rate=0.5),
                 ErrorBurst(60.0, 90.0, failure_rate=0.7)],
                seed=seed,
            ),
            "chembl-sim": FaultSchedule(
                [ErrorBurst(10.0, 55.0, failure_rate=0.5)],
                seed=seed + 1,
            ),
            "go-sim": FaultSchedule(
                [ErrorBurst(20.0, 70.0, failure_rate=0.6)],
                seed=seed + 2,
            ),
        }
    if name == "rushhour":
        return {
            "pdb-sim": FaultSchedule(
                [LatencySpike(0.0, 90.0, factor=4.0)], seed=seed,
            ),
            "chembl-sim": FaultSchedule(
                [Flapping(5.0, 80.0, period_s=4.0, duty=0.4),
                 LatencySpike(0.0, 90.0, extra_s=0.05)],
                seed=seed + 1,
            ),
            "go-sim": FaultSchedule(
                [LatencySpike(0.0, 90.0, factor=2.0, extra_s=0.02)],
                seed=seed + 2,
            ),
        }
    # cascade: outage rolls pdb -> chembl -> go.
    return {
        "pdb-sim": FaultSchedule(
            [Outage(2.0, 25.0), ErrorBurst(25.0, 40.0, 0.4)],
            seed=seed,
        ),
        "chembl-sim": FaultSchedule(
            [Outage(25.0, 50.0), ErrorBurst(50.0, 65.0, 0.4)],
            seed=seed + 1,
        ),
        "go-sim": FaultSchedule(
            [Outage(50.0, 75.0), ErrorBurst(75.0, 90.0, 0.4)],
            seed=seed + 2,
        ),
    }


def wrap_registry(registry, schedules: dict[str, FaultSchedule],
                  timeout_s: float = 0.25):
    """A new registry with each source wrapped in its schedule's chaos.

    Sources without a schedule (or with an empty one) are passed through
    unwrapped, keeping the happy path allocation-free.
    """
    from repro.sources.registry import SourceRegistry

    wrapped = SourceRegistry()
    for source in registry.sources():
        schedule = schedules.get(source.name)
        if schedule is None or not schedule.events:
            wrapped.register(source)
        else:
            wrapped.register(ChaosSource(source, schedule,
                                         timeout_s=timeout_s))
    return wrapped
