"""Simulated (virtual) time, with sequential *and* parallel regions.

Every latency in the federation layer — remote round-trips, rate-limit
windows, cache TTLs, network transfer times — is charged against a
:class:`SimulatedClock` rather than the wall clock. That keeps the
experiments deterministic and lets a benchmark "spend" minutes of remote
latency in microseconds of real time, while still measuring real CPU cost
separately (pytest-benchmark times the wall clock).

By default the clock is sequential: every ``advance`` accumulates, so N
round-trips cost the *sum* of their latencies. A federated system that
scatter/gathers overlapping requests pays the *max* instead; that is
modelled with :meth:`SimulatedClock.concurrently`::

    with clock.concurrently() as region:
        # each overlapping task runs under its own timeline, typically
        # on a worker thread:
        with region.task():
            source_a.fetch_many(...)   # advances the task timeline
        with region.task():
            source_b.fetch_many(...)
    # on join the clock advanced by max(task costs), not the sum

Task timelines are tracked per thread, so the same ``clock.advance()``
call sites in the sources work unchanged whether they run sequentially
or inside a parallel region. Regions nest: a task may open its own inner
``concurrently()`` region, whose join advances the enclosing task's
timeline. Two invariants hold throughout: time never runs backwards, and
a region with a single task degrades to exactly the sequential cost.
"""

from __future__ import annotations

import threading

from repro.errors import SourceError


class SimulatedClock:
    """A monotonically advancing virtual clock, in seconds.

    Thread-safe: worker threads inside a :meth:`concurrently` region
    advance their own task timelines; everything else advances the
    global time under a lock.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SourceError("clock cannot start before time zero")
        self._now = float(start)
        self._lock = threading.RLock()
        self._local = threading.local()

    # -- timeline resolution ------------------------------------------------

    def _timeline_stack(self) -> list["TaskTimeline"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def now(self) -> float:
        """Current virtual time (of the calling thread's timeline)."""
        stack = self._timeline_stack()
        if stack:
            return stack[-1].now()
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time."""
        if seconds < 0:
            raise SourceError(f"cannot advance clock by {seconds}s")
        stack = self._timeline_stack()
        if stack:
            return stack[-1].advance(seconds)
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance`, matching the blocking-call idiom."""
        self.advance(seconds)

    def concurrently(self) -> "ParallelRegion":
        """A scope whose overlapping tasks cost ``max(...)``, not the sum."""
        return ParallelRegion(self)

    def _advance_to(self, deadline: float) -> None:
        """Move global time forward to *deadline*; never backwards."""
        with self._lock:
            if deadline > self._now:
                self._now = deadline

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self.now():.6f}s)"


class TaskTimeline:
    """One task's private timeline inside a :class:`ParallelRegion`.

    Context manager: entering pushes the timeline onto the *current
    thread's* timeline stack so that plain ``clock.advance()`` calls
    made by that thread (deep inside source code) charge this task.
    """

    __slots__ = ("_clock", "started_at", "_now")

    def __init__(self, clock: SimulatedClock, started_at: float) -> None:
        self._clock = clock
        self.started_at = started_at
        self._now = started_at

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise SourceError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        return self._now

    @property
    def elapsed(self) -> float:
        return self._now - self.started_at

    def __enter__(self) -> "TaskTimeline":
        self._clock._timeline_stack().append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        stack = self._clock._timeline_stack()
        if not stack or stack[-1] is not self:
            raise SourceError("task timeline exited out of order")
        stack.pop()


class ParallelRegion:
    """N overlapping tasks; joining costs ``max`` of their virtual times.

    The region's base time is the opener's current time. Each
    :meth:`task` starts a fresh :class:`TaskTimeline` at that base; on
    exit the region advances the opener's timeline (or the global
    clock) to the latest task end — never backwards, and exactly the
    task's own cost when there is only one task.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._tasks: list[TaskTimeline] = []
        self._tasks_lock = threading.Lock()
        self._active = False
        self.started_at = 0.0
        #: Set on exit: the region's critical-path virtual duration.
        self.elapsed_s = 0.0
        #: Set on exit: what the same work would have cost sequentially.
        self.sequential_s = 0.0

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def overlap_saved_s(self) -> float:
        """Virtual seconds saved versus running the tasks back-to-back."""
        return max(0.0, self.sequential_s - self.elapsed_s)

    def task(self) -> TaskTimeline:
        """A new task timeline (enter it on the thread running the task).

        Reads ``_active``/``started_at`` under ``_tasks_lock``: workers
        call this while the opener may be in ``__enter__``/``__exit__``,
        and the lock is what publishes the region state to them.
        """
        with self._tasks_lock:
            if not self._active:
                raise SourceError("task() outside an open parallel region")
            timeline = TaskTimeline(self._clock, self.started_at)
            self._tasks.append(timeline)
        return timeline

    def __enter__(self) -> "ParallelRegion":
        # Read the clock before taking the lock: now() may touch the
        # clock's own RLock, and nesting it under _tasks_lock would add
        # a _tasks_lock -> clock._lock edge to the global lock order.
        started = self._clock.now()
        with self._tasks_lock:
            self.started_at = started
            self._active = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._tasks_lock:
            self._active = False
            ends = [timeline.now() for timeline in self._tasks]
            self.sequential_s = sum(
                timeline.elapsed for timeline in self._tasks
            )
            started = self.started_at
            joined = max(ends, default=started)
            if joined < started:
                raise SourceError(
                    "parallel region would move time backwards "
                    f"({joined:.6f} < {started:.6f})"
                )
            self.elapsed_s = joined - started
        # Advance the opener's context (outer task timeline, or the
        # global clock) to the join point; clamp at zero so time never
        # runs backwards even if the opener advanced meanwhile.
        stack = self._clock._timeline_stack()
        if stack:
            stack[-1].advance(max(0.0, joined - stack[-1].now()))
        else:
            self._clock._advance_to(joined)


class Stopwatch:
    """Measures elapsed virtual time across a block of work."""

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = self._clock.now() - self._start
