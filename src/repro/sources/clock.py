"""Simulated (virtual) time.

Every latency in the federation layer — remote round-trips, rate-limit
windows, cache TTLs, network transfer times — is charged against a
:class:`SimulatedClock` rather than the wall clock. That keeps the
experiments deterministic and lets a benchmark "spend" minutes of remote
latency in microseconds of real time, while still measuring real CPU cost
separately (pytest-benchmark times the wall clock).
"""

from __future__ import annotations

from repro.errors import SourceError


class SimulatedClock:
    """A monotonically advancing virtual clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SourceError("clock cannot start before time zero")
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time."""
        if seconds < 0:
            raise SourceError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance`, matching the blocking-call idiom."""
        self.advance(seconds)

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.6f}s)"


class Stopwatch:
    """Measures elapsed virtual time across a block of work."""

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = self._clock.now() - self._start
