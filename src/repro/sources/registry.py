"""Federation catalog: which source serves which record kind.

The query engine and the integration pipeline never talk to a concrete
source class — they resolve kinds through a :class:`SourceRegistry`,
which also aggregates traffic statistics across the federation for the
experiment reports.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SourceError
from repro.sources.base import DataSource
from repro.sources.wrappers import SourceWrapper

#: Anything that speaks the uniform source dialect.
SourceLike = DataSource | SourceWrapper


class SourceRegistry:
    """Maps record kinds to the (possibly wrapped) source serving them."""

    def __init__(self) -> None:
        self._by_kind: dict[str, SourceLike] = {}
        self._sources: list[SourceLike] = []

    def register(self, source: SourceLike) -> None:
        """Register *source* for every kind it serves.

        A kind served by two sources is a configuration error — the
        federation has exactly one authority per kind.
        """
        for kind in sorted(source.kinds()):
            if kind in self._by_kind:
                raise SourceError(
                    f"kind {kind!r} already served by "
                    f"{self._by_kind[kind].name!r}"
                )
            self._by_kind[kind] = source
        self._sources.append(source)

    def source_for(self, kind: str) -> SourceLike:
        try:
            return self._by_kind[kind]
        except KeyError:
            known = ", ".join(sorted(self._by_kind))
            raise SourceError(
                f"no source serves kind {kind!r} (known kinds: {known})"
            ) from None

    def kinds(self) -> frozenset[str]:
        return frozenset(self._by_kind)

    def sources(self) -> list[SourceLike]:
        return list(self._sources)

    # -- convenience passthroughs ----------------------------------------

    def fetch(self, kind: str, key: str) -> object | None:
        return self.source_for(kind).fetch(kind, key)

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        return self.source_for(kind).fetch_many(kind, keys)

    def scan_keys(self, kind: str) -> list[str]:
        return self.source_for(kind).scan_keys(kind)

    # -- fleet statistics --------------------------------------------------

    def combined_stats(self) -> dict[str, float]:
        """Sum of traffic meters across every registered source."""
        totals = {
            "roundtrips": 0.0,
            "records_returned": 0.0,
            "keys_requested": 0.0,
            "errors": 0.0,
            "virtual_latency_s": 0.0,
        }
        for source in self._sources:
            for key, value in source.stats.snapshot().items():
                totals[key] += value
        totals["virtual_latency_s"] = round(totals["virtual_latency_s"], 6)
        return totals

    def reset_stats(self) -> None:
        for source in self._sources:
            source.stats.reset()
