"""PDB-shaped protein structure source.

Serves :class:`ProteinEntry` records: sequence, organism, experimental
metadata and the identifiers of co-crystallised ligands — the fields the
DrugTree integration pipeline reads when it decorates tree leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.seq import ProteinSequence
from repro.errors import SourceError
from repro.sources.base import FaultModel, LatencyModel, TableBackedSource
from repro.sources.clock import SimulatedClock

KIND_PROTEIN = "protein"
KIND_PROTEINS_BY_ORGANISM = "proteins_by_organism"


@dataclass(frozen=True)
class ProteinEntry:
    """One protein structure record (PDB-entry shaped)."""

    protein_id: str
    sequence: str
    organism: str
    family: str = ""
    resolution_angstrom: float = 2.0
    method: str = "X-RAY DIFFRACTION"
    ligand_ids: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.protein_id:
            raise SourceError("protein entry needs an id")
        if self.resolution_angstrom <= 0:
            raise SourceError("resolution must be positive")

    def to_sequence(self) -> ProteinSequence:
        """The entry's sequence as a :class:`ProteinSequence`."""
        return ProteinSequence(self.protein_id, self.sequence,
                               description=self.organism)


class ProteinStructureSource(TableBackedSource):
    """Simulated remote PDB.

    Kinds served:

    * ``protein`` — ``protein_id`` → :class:`ProteinEntry`
    * ``proteins_by_organism`` — organism → tuple of protein ids
    """

    def __init__(self, clock: SimulatedClock,
                 entries: list[ProteinEntry],
                 name: str = "pdb-sim",
                 latency: LatencyModel | None = None,
                 faults: FaultModel | None = None,
                 page_size: int = 100) -> None:
        by_id: dict[str, object] = {}
        by_organism: dict[str, list[str]] = {}
        for entry in entries:
            if entry.protein_id in by_id:
                raise SourceError(
                    f"duplicate protein id {entry.protein_id!r}"
                )
            by_id[entry.protein_id] = entry
            by_organism.setdefault(entry.organism, []).append(
                entry.protein_id
            )
        tables: dict[str, dict[str, object]] = {
            KIND_PROTEIN: by_id,
            KIND_PROTEINS_BY_ORGANISM: {
                organism: tuple(ids)
                for organism, ids in by_organism.items()
            },
        }
        super().__init__(name, clock, tables, latency, faults, page_size)

    # -- typed helpers ----------------------------------------------------

    def get_entry(self, protein_id: str) -> ProteinEntry | None:
        record = self.fetch(KIND_PROTEIN, protein_id)
        return record  # type: ignore[return-value]

    def get_entries(self, protein_ids: list[str]) -> dict[str, ProteinEntry]:
        return self.fetch_many(KIND_PROTEIN, protein_ids)  # type: ignore

    def list_protein_ids(self) -> list[str]:
        return self.scan_keys(KIND_PROTEIN)

    def proteins_of_organism(self, organism: str) -> tuple[str, ...]:
        record = self.fetch(KIND_PROTEINS_BY_ORGANISM, organism)
        return record if record is not None else ()  # type: ignore
