"""The remote data-source protocol and its cost/fault models.

DrugTree's defining problem (per the paper abstract) is that "data is
being obtained from multiple sources, integrated and then presented to
the user". Each source here simulates a remote service: every call costs
a round-trip of virtual latency, results are paged, the service may rate
limit or fail transiently, and all traffic is metered so experiments can
report round-trip counts next to latencies.

All sources speak one uniform key-value dialect:

* ``kinds()`` — the record kinds this source serves (``"protein"``,
  ``"activity_by_protein"``, ...);
* ``fetch_many(kind, keys)`` — one round-trip returning a dict of the
  found records;
* ``scan_keys(kind)`` — all keys of a kind, charged per page.

Typed convenience methods on the concrete sources are sugar over these
three, which is what lets the caching/batching/prefetching wrappers stay
generic.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import RateLimitError, SourceError, SourceUnavailableError
from repro.obs import get_metrics, get_tracer
from repro.sources.clock import SimulatedClock


@dataclass
class LatencyModel:
    """Virtual-time cost of one round-trip to a remote source.

    ``base_s`` is the fixed per-request cost (network RTT plus service
    overhead); ``per_item_s`` the marginal cost of each returned record;
    ``jitter_fraction`` adds deterministic pseudo-random variation.
    """

    base_s: float = 0.050
    per_item_s: float = 0.0005
    jitter_fraction: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_item_s < 0:
            raise SourceError("latency components must be non-negative")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise SourceError("jitter fraction must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def sample(self, item_count: int) -> float:
        """Latency of one round-trip returning *item_count* records."""
        nominal = self.base_s + self.per_item_s * max(item_count, 0)
        if self.jitter_fraction == 0.0:
            return nominal
        spread = nominal * self.jitter_fraction
        return max(0.0, nominal + self._rng.uniform(-spread, spread))


@dataclass
class SourceStats:
    """Traffic meter attached to every source."""

    roundtrips: int = 0
    records_returned: int = 0
    keys_requested: int = 0
    errors: int = 0
    virtual_latency_s: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "roundtrips": self.roundtrips,
            "records_returned": self.records_returned,
            "keys_requested": self.keys_requested,
            "errors": self.errors,
            "virtual_latency_s": round(self.virtual_latency_s, 6),
        }

    def reset(self) -> None:
        self.roundtrips = 0
        self.records_returned = 0
        self.keys_requested = 0
        self.errors = 0
        self.virtual_latency_s = 0.0


@dataclass
class FaultModel:
    """Transient failures and rate limiting.

    ``failure_rate`` is the probability that a round-trip raises
    :class:`SourceUnavailableError` (after charging latency, like a real
    timeout). ``max_calls_per_window`` bounds round-trips per
    ``window_s`` of virtual time; excess calls raise
    :class:`RateLimitError` without charging latency.
    """

    failure_rate: float = 0.0
    max_calls_per_window: int | None = None
    window_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise SourceError("failure rate must be in [0, 1)")
        if (self.max_calls_per_window is not None
                and self.max_calls_per_window < 1):
            raise SourceError("rate limit must allow at least one call")
        if self.window_s <= 0:
            raise SourceError("rate-limit window must be positive")
        self._rng = random.Random(self.seed)

    def draw_failure(self) -> bool:
        return self.failure_rate > 0 and self._rng.random() < self.failure_rate


class DataSource(ABC):
    """Base class for simulated remote sources."""

    def __init__(self, name: str, clock: SimulatedClock,
                 latency: LatencyModel | None = None,
                 faults: FaultModel | None = None,
                 page_size: int = 100) -> None:
        if page_size < 1:
            raise SourceError("page size must be positive")
        self.name = name
        self.clock = clock
        self.latency = latency or LatencyModel()
        self.faults = faults or FaultModel()
        self.page_size = page_size
        self.stats = SourceStats()
        self._window_start = clock.now()
        self._window_calls = 0
        # The fetch scheduler dispatches round-trips from worker
        # threads; the meters, rate-limit window, and fault/latency RNGs
        # are shared state and need one lock.
        self._meter_lock = threading.Lock()

    # -- protocol -------------------------------------------------------

    @abstractmethod
    def kinds(self) -> frozenset[str]:
        """Record kinds this source serves."""

    @abstractmethod
    def _lookup(self, kind: str, keys: Sequence[str]) -> dict[str, object]:
        """Backend lookup; no cost accounting (subclasses implement)."""

    @abstractmethod
    def _all_keys(self, kind: str) -> list[str]:
        """All keys of *kind*; no cost accounting."""

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        """Fetch several records in a single charged round-trip.

        Missing keys are silently absent from the result, as a REST
        batch endpoint would behave. Requests larger than the page size
        are charged one round-trip per page.
        """
        self._check_kind(kind)
        key_list = list(keys)
        if not key_list:
            # Nothing to ask for: a real client never issues the
            # round-trip, so neither do we (no page, no charge).
            return {}
        found: dict[str, object] = {}
        with get_tracer().span("source.fetch_many", source=self.name,
                               kind=kind, keys=len(key_list)) as span:
            for start in range(0, len(key_list), self.page_size):
                page = key_list[start:start + self.page_size]
                records = self._lookup(kind, page)
                self._charge(len(records), len(page))
                found.update(records)
            span.set("records", len(found))
        return found

    def fetch(self, kind: str, key: str) -> object | None:
        """Fetch one record (one full round-trip — the naive pattern)."""
        return self.fetch_many(kind, [key]).get(key)

    def scan_keys(self, kind: str) -> list[str]:
        """List every key of *kind*, charged one round-trip per page."""
        self._check_kind(kind)
        all_keys = self._all_keys(kind)
        with get_tracer().span("source.scan_keys", source=self.name,
                               kind=kind, keys=len(all_keys)):
            for start in range(0, len(all_keys), self.page_size):
                page = all_keys[start:start + self.page_size]
                self._charge(len(page), len(page))
        return all_keys

    # -- cost accounting --------------------------------------------------

    def _check_kind(self, kind: str) -> None:
        if kind not in self.kinds():
            raise SourceError(
                f"source {self.name!r} does not serve kind {kind!r}"
            )

    def _charge(self, records: int, requested: int) -> None:
        metrics = get_metrics()
        with self._meter_lock:
            self._enforce_rate_limit(metrics)
            cost = self.latency.sample(records)
            failed = self.faults.draw_failure()
            self.stats.roundtrips += 1
            self.stats.records_returned += records
            self.stats.keys_requested += requested
            self.stats.virtual_latency_s += cost
            metrics.counter(f"source.roundtrips.{self.name}").inc()
            metrics.counter(f"source.records.{self.name}").inc(records)
            metrics.counter(f"source.virtual_s.{self.name}").inc(cost)
            metrics.histogram("source.roundtrip_latency_s").observe(cost)
            if failed:
                self.stats.errors += 1
                metrics.counter(f"source.errors.{self.name}").inc()
        # The clock advance happens outside the meter lock: under a
        # parallel region it only touches the calling thread's timeline.
        self.clock.advance(cost)
        if failed:
            raise SourceUnavailableError(
                f"source {self.name!r} timed out (simulated)"
            )

    def _enforce_rate_limit(self, metrics) -> None:
        """Check/advance the rate-limit window (meter lock held)."""
        limit = self.faults.max_calls_per_window
        if limit is None:
            return
        now = self.clock.now()
        if now - self._window_start >= self.faults.window_s:
            self._window_start = now
            self._window_calls = 0
        if self._window_calls >= limit:
            self.stats.errors += 1
            metrics.counter(f"source.rate_limited.{self.name}").inc()
            raise RateLimitError(
                f"source {self.name!r} rate limit of {limit} calls per "
                f"{self.faults.window_s}s exceeded"
            )
        self._window_calls += 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class TableBackedSource(DataSource):
    """A source whose kinds are in-memory dictionaries.

    The concrete protein/activity/annotation sources all store their data
    this way; they differ only in how the tables are populated and which
    typed helpers they expose.
    """

    def __init__(self, name: str, clock: SimulatedClock,
                 tables: dict[str, dict[str, object]],
                 latency: LatencyModel | None = None,
                 faults: FaultModel | None = None,
                 page_size: int = 100) -> None:
        super().__init__(name, clock, latency, faults, page_size)
        self._tables = tables

    def kinds(self) -> frozenset[str]:
        return frozenset(self._tables)

    def _lookup(self, kind: str, keys: Sequence[str]) -> dict[str, object]:
        table = self._tables[kind]
        return {key: table[key] for key in keys if key in table}

    def _all_keys(self, kind: str) -> list[str]:
        return sorted(self._tables[kind])

    def record_count(self, kind: str) -> int:
        """Backend record count (free: used by test assertions only)."""
        self._check_kind(kind)
        return len(self._tables[kind])
