"""Source wrappers: the "standards" part of the paper's optimizations.

The abstract says the approach "applies standards as well as uses novel
mechanisms". The standards, for a federated system, are exactly these
wrappers:

* :class:`CachingSource` — answer repeated lookups from a local LRU/TTL
  cache instead of going back to the remote source;
* :class:`PrefetchingSource` — when one key is fetched, pull keys a
  predictor expects next in the *same* round-trip;
* :class:`RetryingSource` — absorb transient outages with bounded
  retries (each retry is charged, like a real timeout-and-retry).

All wrappers implement the same uniform protocol as
:class:`~repro.sources.base.DataSource`, so they stack in any order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable

from repro.errors import (
    RateLimitError,
    SourceError,
    SourceUnavailableError,
)
from repro.obs import get_metrics, get_tracer
from repro.sources.base import DataSource


def faults_of(source) -> object | None:
    """The fault model behind *source*, unwrapping stacked wrappers."""
    current = source
    while current is not None:
        faults = getattr(current, "faults", None)
        if faults is not None:
            return faults
        current = getattr(current, "inner", None)
    return None


class SourceWrapper:
    """Delegating base for source wrappers (shares the uniform dialect)."""

    def __init__(self, inner: DataSource) -> None:
        self.inner = inner

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def clock(self):
        return self.inner.clock

    @property
    def stats(self):
        return self.inner.stats

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    def kinds(self) -> frozenset[str]:
        return self.inner.kinds()

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        return self.inner.fetch_many(kind, keys)

    def fetch(self, kind: str, key: str) -> object | None:
        return self.fetch_many(kind, [key]).get(key)

    def scan_keys(self, kind: str) -> list[str]:
        return self.inner.scan_keys(kind)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class CachingSource(SourceWrapper):
    """LRU + TTL read-through cache over a source.

    TTL is measured in *virtual* seconds. Negative results (key absent at
    the source) are cached too — repeated queries for missing proteins
    are a real workload pattern.
    """

    _MISSING = object()

    def __init__(self, inner: DataSource, capacity: int = 10_000,
                 ttl_s: float | None = None) -> None:
        super().__init__(inner)
        if capacity < 1:
            raise SourceError("cache capacity must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise SourceError("cache TTL must be positive")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.hits = 0
        self.misses = 0
        self._cache: OrderedDict[tuple[str, str], tuple[float, object]] = (
            OrderedDict()
        )
        # The scheduler may fetch through one cache from several worker
        # threads at once; the LRU dict (and hit/miss meters) mutate
        # under this lock. Round-trips to the inner source deliberately
        # happen *outside* it so concurrent misses still overlap.
        self._cache_lock = threading.RLock()

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        found: dict[str, object] = {}
        missing: list[str] = []
        hits = 0
        with get_tracer().span("source_cache.fetch_many",
                               source=self.name, kind=kind) as span:
            with self._cache_lock:
                now = self.clock.now()
                for key in keys:
                    slot = (kind, key)
                    entry = self._cache.get(slot)
                    if entry is not None:
                        stored_at, value = entry
                        if (self.ttl_s is None
                                or now - stored_at <= self.ttl_s):
                            self._cache.move_to_end(slot)
                            hits += 1
                            if value is not self._MISSING:
                                found[key] = value
                            continue
                        del self._cache[slot]
                    missing.append(key)
                self.hits += hits
                self.misses += len(missing)
            if missing:
                fetched = self.inner.fetch_many(kind, missing)
                found.update(fetched)
                with self._cache_lock:
                    stored_at = self.clock.now()
                    for key in missing:
                        value = fetched.get(key, self._MISSING)
                        self._store((kind, key), stored_at, value)
            span.set("hits", hits)
            span.set("misses", len(missing))
        metrics = get_metrics()
        if hits:
            metrics.counter(f"source_cache.hits.{self.name}").inc(hits)
        if missing:
            metrics.counter(f"source_cache.misses.{self.name}").inc(
                len(missing)
            )
        return found

    def _store(self, slot: tuple[str, str], stored_at: float,
               value: object) -> None:
        self._cache[slot] = (stored_at, value)
        self._cache.move_to_end(slot)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def peek(self, kind: str, key: str) -> bool:
        """True if the key is cached and fresh (no hit/miss accounting)."""
        with self._cache_lock:
            entry = self._cache.get((kind, key))
            if entry is None:
                return False
            stored_at, _ = entry
            return (self.ttl_s is None
                    or self.clock.now() - stored_at <= self.ttl_s)

    def invalidate(self, kind: str | None = None) -> None:
        """Drop cached entries (all, or one kind's)."""
        with self._cache_lock:
            if kind is None:
                self._cache.clear()
                return
            for slot in [s for s in self._cache if s[0] == kind]:
                del self._cache[slot]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Given (kind, key), return extra keys likely to be needed soon.
Predictor = Callable[[str, str], list[str]]


class PrefetchingSource(SourceWrapper):
    """Fetch predicted-next keys in the same round-trip.

    Prefetching is only useful if what it pulls is *retained*, so this
    wrapper owns a :class:`CachingSource` internally: each fetch is
    widened with the predictor's suggestions, everything lands in the
    cache, and only the requested keys are returned. A later fetch of a
    predicted key is then a cache hit with zero round-trips.
    """

    def __init__(self, inner: DataSource, predictor: Predictor,
                 capacity: int = 10_000, ttl_s: float | None = None,
                 max_prefetch: int = 32) -> None:
        super().__init__(inner)
        if max_prefetch < 0:
            raise SourceError("max_prefetch must be non-negative")
        self.cache = CachingSource(inner, capacity=capacity, ttl_s=ttl_s)
        self.predictor = predictor
        self.max_prefetch = max_prefetch
        self.prefetched_keys = 0
        # Concurrent scheduler pages share this wrapper; the stat
        # increment is a read-modify-write and needs the guard.
        self._stats_lock = threading.Lock()

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        key_list = list(keys)
        # Prefetching piggybacks on round-trips that have to happen
        # anyway: if every requested key is already cached, no widening.
        any_miss = any(
            not self.cache.peek(kind, key) for key in key_list
        )
        predictions: list[str] = []
        if any_miss:
            seen = set(key_list)
            for key in key_list:
                for predicted in self.predictor(kind, key):
                    if predicted not in seen and not self.cache.peek(
                            kind, predicted):
                        seen.add(predicted)
                        predictions.append(predicted)
                    if len(predictions) >= self.max_prefetch:
                        break
                if len(predictions) >= self.max_prefetch:
                    break
            with self._stats_lock:
                self.prefetched_keys += len(predictions)
            if predictions:
                get_metrics().counter(
                    f"source_prefetch.keys.{self.name}"
                ).inc(len(predictions))
        everything = self.cache.fetch_many(kind, key_list + predictions)
        return {key: everything[key] for key in key_list
                if key in everything}

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate


class RetryingSource(SourceWrapper):
    """Retry transient :class:`SourceUnavailableError` failures.

    Each attempt is charged full latency by the inner source; an optional
    backoff adds virtual think-time between attempts.
    :class:`RateLimitError` rejections are handled the same way the
    fetch scheduler handles them — wait out the source's window (in
    virtual time) a bounded number of times — so a stacked
    ``RetryingSource`` and a scheduler-dispatched fetch behave alike.
    """

    def __init__(self, inner: DataSource, max_attempts: int = 3,
                 backoff_s: float = 0.0,
                 max_rate_limit_waits: int = 8) -> None:
        super().__init__(inner)
        if max_attempts < 1:
            raise SourceError("need at least one attempt")
        if backoff_s < 0:
            raise SourceError("backoff must be non-negative")
        if max_rate_limit_waits < 0:
            raise SourceError("rate-limit wait budget must be >= 0")
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.max_rate_limit_waits = max_rate_limit_waits
        self.retries = 0
        self.rate_limit_waits = 0
        # Shared across scheduler workers; guards the stat increments
        # (never held across the delegate call or a clock charge).
        self._stats_lock = threading.Lock()

    def _with_retries(self, call):
        """Run *call* under the retry/rate-limit policy (shared by
        ``fetch_many`` and ``scan_keys``)."""
        attempts = 0
        rate_waits = 0
        while True:
            try:
                return call()
            except SourceUnavailableError:
                attempts += 1
                if attempts >= self.max_attempts:
                    raise
                with self._stats_lock:
                    self.retries += 1
                get_metrics().counter(
                    f"source_retry.retries.{self.name}"
                ).inc()
                if self.backoff_s:
                    self.clock.advance(
                        self.backoff_s * (2 ** (attempts - 1))
                    )
            except RateLimitError:
                rate_waits += 1
                if rate_waits > self.max_rate_limit_waits:
                    raise
                with self._stats_lock:
                    self.rate_limit_waits += 1
                get_metrics().counter(
                    f"source_retry.rate_limit_waits.{self.name}"
                ).inc()
                window_s = getattr(faults_of(self.inner), "window_s",
                                   None)
                self.clock.sleep(window_s if window_s
                                 else (self.backoff_s or 0.05))

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        key_list = list(keys)
        return self._with_retries(
            lambda: self.inner.fetch_many(kind, key_list)
        )

    def scan_keys(self, kind: str) -> list[str]:
        return self._with_retries(lambda: self.inner.scan_keys(kind))
