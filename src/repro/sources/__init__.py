"""Simulated heterogeneous remote data sources.

Stands in for the live services the paper's system federated (PDB,
ligand activity databases, annotation services): every call costs
virtual latency, results are paged, and services can rate-limit or fail.
See DESIGN.md for why this substitution preserves the paper's behaviour.
"""

from repro.sources.activity import (
    KIND_ACTIVITY_BY_LIGAND,
    KIND_ACTIVITY_BY_PROTEIN,
    KIND_COMPOUND,
    CompoundEntry,
    LigandActivitySource,
)
from repro.sources.annotation import (
    KIND_ANNOTATION,
    KIND_PROTEINS_BY_FAMILY,
    AnnotationEntry,
    AnnotationSource,
)
from repro.sources.base import (
    DataSource,
    FaultModel,
    LatencyModel,
    SourceStats,
    TableBackedSource,
)
from repro.sources.chaos import (
    SCENARIOS,
    ChaosEffect,
    ChaosSource,
    ErrorBurst,
    FaultSchedule,
    Flapping,
    LatencySpike,
    Outage,
    scenario_schedules,
    wrap_registry,
)
from repro.sources.clock import (
    ParallelRegion,
    SimulatedClock,
    Stopwatch,
    TaskTimeline,
)
from repro.sources.protein import (
    KIND_PROTEIN,
    KIND_PROTEINS_BY_ORGANISM,
    ProteinEntry,
    ProteinStructureSource,
)
from repro.sources.registry import SourceRegistry
from repro.sources.resilience import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_PARTIAL,
    STATUS_STALE,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    FetchOutcome,
)
from repro.sources.scheduler import FetchScheduler, SchedulerStats
from repro.sources.wrappers import (
    CachingSource,
    PrefetchingSource,
    RetryingSource,
    SourceWrapper,
)

__all__ = [
    "KIND_ACTIVITY_BY_LIGAND",
    "KIND_ACTIVITY_BY_PROTEIN",
    "KIND_ANNOTATION",
    "KIND_COMPOUND",
    "KIND_PROTEIN",
    "KIND_PROTEINS_BY_FAMILY",
    "KIND_PROTEINS_BY_ORGANISM",
    "SCENARIOS",
    "STATUS_FRESH",
    "STATUS_MISSING",
    "STATUS_PARTIAL",
    "STATUS_STALE",
    "AnnotationEntry",
    "AnnotationSource",
    "BreakerBoard",
    "BreakerConfig",
    "CachingSource",
    "ChaosEffect",
    "ChaosSource",
    "CircuitBreaker",
    "CompoundEntry",
    "DataSource",
    "Deadline",
    "ErrorBurst",
    "FaultModel",
    "FaultSchedule",
    "FetchOutcome",
    "FetchScheduler",
    "Flapping",
    "LatencyModel",
    "LatencySpike",
    "LigandActivitySource",
    "Outage",
    "ParallelRegion",
    "PrefetchingSource",
    "ProteinEntry",
    "ProteinStructureSource",
    "RetryingSource",
    "SchedulerStats",
    "SimulatedClock",
    "SourceRegistry",
    "SourceStats",
    "SourceWrapper",
    "Stopwatch",
    "TableBackedSource",
    "TaskTimeline",
    "scenario_schedules",
    "wrap_registry",
]
