"""Concurrent multi-source fetch scheduler (scatter/gather).

The abstract blames DrugTree's lag on "data … being obtained from
multiple sources, integrated and then presented to the user". A
federated system does not pay those sources one after another: it
scatters independent round-trips, gathers the results, and pays the
*maximum* latency instead of the sum. :class:`FetchScheduler` is that
scatter/gather layer for this reproduction:

* **Overlap** — a batch of ``(kind, keys)`` requests is fanned across
  the sources on a real thread pool, inside a
  :meth:`~repro.sources.clock.SimulatedClock.concurrently` region, so
  both wall time and virtual time reflect the critical path rather than
  the sum of round-trips.
* **Paging** — key sets larger than a source's page size are split into
  pages *before* dispatch, so the pages themselves overlap instead of
  being serialized inside ``fetch_many``.
* **Coalescing** — duplicate ``(source, kind, key)`` requests are
  served single-flight: duplicates inside one batch collapse before
  dispatch, and a key already in flight (from any thread) is borrowed
  from the existing round-trip instead of re-fetched.
* **Resilience** — transient :class:`SourceUnavailableError` failures
  are retried with exponential virtual backoff (the
  :class:`~repro.sources.wrappers.RetryingSource` semantics), and
  :class:`RateLimitError` rejections wait out the source's window a
  bounded number of times. With a :class:`~repro.sources.resilience
  .BreakerBoard` attached, a source that keeps failing trips its
  per-``(source, kind)`` circuit breaker and later calls are refused
  instantly (:class:`~repro.errors.BreakerOpenError`, no latency
  charged, no retry ladder) until a half-open probe succeeds. A
  :class:`~repro.sources.resilience.Deadline` propagates down into
  page fetches: once the virtual budget is gone, remaining pages are
  cancelled (:class:`~repro.errors.DeadlineExceededError`) instead of
  blocking the caller. :meth:`fetch_all_resilient` turns both into
  graceful degradation — partial results annotated per kind.

Everything is metered: an in-flight gauge (``scheduler.inflight``),
coalesced/page/retry counters, breaker-state gauges, deadline and
borrow-timeout counters, and per-batch spans carrying the overlap
savings (``sequential - critical path`` virtual seconds) that
``EXPLAIN ANALYZE`` and ``repro stats`` surface.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import (
    BorrowTimeoutError,
    BreakerOpenError,
    DeadlineExceededError,
    RateLimitError,
    SourceError,
    SourceUnavailableError,
)
from repro.obs import get_metrics, get_tracer
from repro.sources.clock import SimulatedClock
from repro.sources.registry import SourceRegistry
from repro.sources.resilience import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_PARTIAL,
    BreakerBoard,
    BreakerConfig,
    Deadline,
    FetchOutcome,
)
from repro.sources.wrappers import faults_of

#: Default wall-clock ceiling for borrowing a result from another
#: thread's in-flight round-trip; hitting it means the owner died
#: without resolving its flights (a scheduler bug, not a simulated
#: fault). Configurable per scheduler via ``borrow_timeout_s``.
BORROW_TIMEOUT_S = 30.0


@dataclass
class SchedulerStats:
    """Cumulative scatter/gather accounting for one scheduler."""

    batches: int = 0
    keys_requested: int = 0
    pages_dispatched: int = 0
    coalesced: int = 0
    retries: int = 0
    rate_limit_waits: int = 0
    breaker_skips: int = 0
    deadline_cancelled: int = 0
    borrow_timeouts: int = 0
    degraded_batches: int = 0
    elapsed_virtual_s: float = 0.0
    sequential_virtual_s: float = 0.0

    @property
    def overlap_saved_s(self) -> float:
        """Virtual seconds saved versus sequential round-trips."""
        return max(0.0,
                   self.sequential_virtual_s - self.elapsed_virtual_s)

    def snapshot(self) -> dict[str, float]:
        return {
            "batches": self.batches,
            "keys_requested": self.keys_requested,
            "pages_dispatched": self.pages_dispatched,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "rate_limit_waits": self.rate_limit_waits,
            "breaker_skips": self.breaker_skips,
            "deadline_cancelled": self.deadline_cancelled,
            "borrow_timeouts": self.borrow_timeouts,
            "degraded_batches": self.degraded_batches,
            "elapsed_virtual_s": round(self.elapsed_virtual_s, 6),
            "sequential_virtual_s": round(self.sequential_virtual_s, 6),
            "overlap_saved_s": round(self.overlap_saved_s, 6),
        }


class _Flight:
    """One in-flight ``(source, kind, key)`` lookup, single-flight style."""

    __slots__ = ("event", "found", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.found = False
        self.value: object = None
        self.error: SourceError | None = None


class FetchScheduler:
    """Scatter/gather dispatcher over a :class:`SourceRegistry`.

    ``fetch_all`` is the batch entry point: one call may name several
    kinds (hence several sources) and oversized key sets; everything is
    paged, coalesced, and dispatched concurrently. ``fetch_many`` /
    ``fetch`` are single-kind conveniences over it, and
    ``fetch_all_resilient`` is the degrade-don't-raise variant the
    executor and mobile server use.
    """

    def __init__(self, registry: SourceRegistry,
                 clock: SimulatedClock | None = None,
                 max_workers: int = 8,
                 max_attempts: int = 3,
                 backoff_s: float = 0.0,
                 max_rate_limit_waits: int = 8,
                 page_size: int | None = None,
                 borrow_timeout_s: float = BORROW_TIMEOUT_S,
                 breakers: BreakerBoard | None = None,
                 breaker_config: BreakerConfig | None = None) -> None:
        if max_workers < 1:
            raise SourceError("scheduler needs at least one worker")
        if max_attempts < 1:
            raise SourceError("need at least one attempt")
        if backoff_s < 0:
            raise SourceError("backoff must be non-negative")
        if max_rate_limit_waits < 0:
            raise SourceError("rate-limit wait budget must be >= 0")
        if page_size is not None and page_size < 1:
            raise SourceError("page size must be positive")
        if borrow_timeout_s <= 0:
            raise SourceError("borrow timeout must be positive")
        if clock is None:
            sources = registry.sources()
            if not sources:
                raise SourceError(
                    "scheduler needs a clock or a non-empty registry"
                )
            clock = sources[0].clock
        self.registry = registry
        self.clock = clock
        self.max_workers = max_workers
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.max_rate_limit_waits = max_rate_limit_waits
        self.page_size = page_size
        self.borrow_timeout_s = borrow_timeout_s
        #: Per-(source, kind) circuit breakers; ``None`` disables the
        #: breaker path entirely (the zero-overhead default).
        if breakers is None and breaker_config is not None:
            breakers = BreakerBoard(clock, breaker_config)
        self.breakers = breakers
        self.stats = SchedulerStats()
        self._lock = threading.Lock()
        self._inflight: dict[tuple[str, str, str], _Flight] = {}
        self._inflight_pages = 0

    # -- public API ---------------------------------------------------------

    def fetch(self, kind: str, key: str) -> object | None:
        return self.fetch_many(kind, [key]).get(key)

    def fetch_many(self, kind: str,
                   keys: Iterable[str]) -> dict[str, object]:
        """Fetch one kind's keys (pages still dispatched concurrently)."""
        return self.fetch_all([(kind, keys)]).get(kind, {})

    def fetch_all(
        self, requests: Sequence[tuple[str, Iterable[str]]],
        deadline: Deadline | None = None,
    ) -> dict[str, dict[str, object]]:
        """Fetch several ``(kind, keys)`` requests as one overlapped batch.

        Returns ``{kind: {key: record}}`` with missing keys absent, like
        ``fetch_many``. Requests naming the same kind are merged;
        duplicate keys are fetched once. Any page failure (after the
        retry budget, a tripped breaker, or an expired deadline)
        re-raises here; use :meth:`fetch_all_resilient` to degrade
        instead.
        """
        results, kind_errors = self._gather(requests, deadline)
        for error in kind_errors.values():
            raise error
        return results

    def fetch_all_resilient(
        self, requests: Sequence[tuple[str, Iterable[str]]],
        deadline: Deadline | None = None,
    ) -> FetchOutcome:
        """Like :meth:`fetch_all`, but failures degrade instead of raise.

        Every requested kind comes back annotated: ``fresh`` (all pages
        answered), ``partial`` (some records lost to faults, breakers,
        or the deadline), or ``missing`` (nothing could be served).
        Only :class:`BorrowTimeoutError` — a scheduler bug, not a
        simulated fault — still propagates.
        """
        results, kind_errors = self._gather(requests, deadline)
        outcome = FetchOutcome(records=results)
        for kind, records in results.items():
            error = kind_errors.get(kind)
            if error is None:
                outcome.statuses[kind] = STATUS_FRESH
                continue
            outcome.statuses[kind] = (STATUS_PARTIAL if records
                                      else STATUS_MISSING)
            outcome.errors[kind] = str(error)
        if outcome.degraded:
            with self._lock:
                self.stats.degraded_batches += 1
            get_metrics().counter("scheduler.degraded_batches").inc()
        return outcome

    # -- the gather core ----------------------------------------------------

    def _gather(
        self, requests: Sequence[tuple[str, Iterable[str]]],
        deadline: Deadline | None,
    ) -> tuple[dict[str, dict[str, object]], dict[str, SourceError]]:
        """Scatter/gather one batch; returns results + first error per
        kind (empty dict when everything answered)."""
        metrics = get_metrics()
        wanted, dupes = self._normalize(requests)
        sources = {kind: self.registry.source_for(kind)
                   for kind in wanted}
        results: dict[str, dict[str, object]] = {
            kind: {} for kind in wanted
        }
        kind_errors: dict[str, SourceError] = {}

        owned, borrowed = self._claim_flights(wanted, sources)
        pages = self._paginate(owned, sources)
        coalesced = dupes + len(borrowed)

        with self._lock:
            self.stats.batches += 1
            self.stats.keys_requested += sum(
                len(keys) for keys in wanted.values()
            )
            self.stats.pages_dispatched += len(pages)
            self.stats.coalesced += coalesced
        metrics.counter("scheduler.batches").inc()
        metrics.counter("scheduler.pages").inc(len(pages))
        metrics.counter("scheduler.coalesced").inc(coalesced)

        with get_tracer().span(
            "scheduler.fetch_all",
            kinds=len(wanted), pages=len(pages), coalesced=coalesced,
        ) as span:
            with self.clock.concurrently() as region:
                if pages:
                    workers = min(self.max_workers, len(pages))
                    with ThreadPoolExecutor(
                        max_workers=workers,
                        thread_name_prefix="fetch-scheduler",
                    ) as pool:
                        futures = [
                            (kind, page,
                             pool.submit(self._run_page, region,
                                         sources[kind], kind, page,
                                         deadline))
                            for kind, page in pages
                        ]
                        for kind, page, future in futures:
                            try:
                                records = future.result()
                            except SourceError as exc:
                                kind_errors.setdefault(kind, exc)
                                self._resolve(sources[kind], kind, page,
                                              {}, error=exc)
                            else:
                                results[kind].update(records)
                                self._resolve(sources[kind], kind, page,
                                              records)
            with self._lock:
                self.stats.elapsed_virtual_s += region.elapsed_s
                self.stats.sequential_virtual_s += region.sequential_s
            metrics.counter("scheduler.overlap_saved_virtual_s").inc(
                region.overlap_saved_s
            )
            span.set("elapsed_virtual_s", round(region.elapsed_s, 6))
            span.set("sequential_virtual_s",
                     round(region.sequential_s, 6))
            span.set("overlap_saved_s", round(region.overlap_saved_s, 6))

            for kind, key, flight in borrowed:
                if not flight.event.wait(self.borrow_timeout_s):
                    with self._lock:
                        self.stats.borrow_timeouts += 1
                    metrics.counter("scheduler.borrow_timeout").inc()
                    raise BorrowTimeoutError(
                        f"coalesced fetch of ({kind!r}, {key!r}) was "
                        "never resolved by its owning round-trip "
                        f"within {self.borrow_timeout_s:.1f}s"
                    )
                if flight.error is not None:
                    kind_errors.setdefault(kind, flight.error)
                elif flight.found:
                    results[kind][key] = flight.value

        return results, kind_errors

    # -- batch preparation --------------------------------------------------

    def _normalize(
        self, requests: Sequence[tuple[str, Iterable[str]]],
    ) -> tuple[dict[str, list[str]], int]:
        """Merge requests per kind; count intra-batch duplicate keys."""
        wanted: dict[str, list[str]] = {}
        seen: set[tuple[str, str]] = set()
        dupes = 0
        for kind, keys in requests:
            bucket = wanted.setdefault(kind, [])
            for key in keys:
                slot = (kind, key)
                if slot in seen:
                    dupes += 1
                    continue
                seen.add(slot)
                bucket.append(key)
        return wanted, dupes

    def _claim_flights(
        self, wanted: dict[str, list[str]], sources: dict[str, object],
    ) -> tuple[dict[str, list[str]],
               list[tuple[str, str, _Flight]]]:
        """Split keys into owned (we fetch) and borrowed (in flight)."""
        owned: dict[str, list[str]] = {}
        borrowed: list[tuple[str, str, _Flight]] = []
        with self._lock:
            for kind, keys in wanted.items():
                source_name = sources[kind].name
                for key in keys:
                    slot = (source_name, kind, key)
                    flight = self._inflight.get(slot)
                    if flight is None:
                        self._inflight[slot] = _Flight()
                        owned.setdefault(kind, []).append(key)
                    else:
                        borrowed.append((kind, key, flight))
        return owned, borrowed

    def _paginate(
        self, owned: dict[str, list[str]], sources: dict[str, object],
    ) -> list[tuple[str, list[str]]]:
        pages: list[tuple[str, list[str]]] = []
        for kind, keys in owned.items():
            size = self.page_size or getattr(
                sources[kind], "page_size", len(keys) or 1
            )
            for start in range(0, len(keys), size):
                pages.append((kind, keys[start:start + size]))
        return pages

    def _resolve(self, source, kind: str, page: list[str],
                 records: dict[str, object],
                 error: SourceError | None = None) -> None:
        """Publish a page's outcome to its flights and release them."""
        source_name = source.name
        with self._lock:
            flights = [
                (key, self._inflight.pop((source_name, kind, key), None))
                for key in page
            ]
        for key, flight in flights:
            if flight is None:
                continue
            if error is not None:
                flight.error = error
            elif key in records:
                flight.found = True
                flight.value = records[key]
            flight.event.set()

    # -- page execution (worker threads) -------------------------------------

    def _run_page(self, region, source, kind: str,
                  page: list[str],
                  deadline: Deadline | None) -> dict[str, object]:
        metrics = get_metrics()
        with self._lock:
            self._inflight_pages += 1
            metrics.gauge("scheduler.inflight").set(self._inflight_pages)
        try:
            with region.task():
                return self._fetch_with_retry(source, kind, page,
                                              deadline)
        finally:
            with self._lock:
                self._inflight_pages -= 1
                metrics.gauge("scheduler.inflight").set(
                    self._inflight_pages
                )

    def _check_deadline(self, deadline: Deadline | None,
                        source, kind: str) -> None:
        if deadline is None or not deadline.exceeded():
            return
        metrics = get_metrics()
        with self._lock:
            self.stats.deadline_cancelled += 1
        metrics.counter("source.deadline_exceeded").inc()
        metrics.counter(
            f"source.deadline_exceeded.{source.name}"
        ).inc()
        raise DeadlineExceededError(
            f"deadline expired before fetching {kind!r} from "
            f"{source.name!r} (budget {deadline.budget_s:.3f}s)"
        )

    def _fetch_with_retry(self, source, kind: str, page: list[str],
                          deadline: Deadline | None = None,
                          ) -> dict[str, object]:
        metrics = get_metrics()
        breaker = (self.breakers.breaker(source.name, kind)
                   if self.breakers is not None else None)
        attempts = 0
        rate_waits = 0
        while True:
            # Cancelled work costs nothing: the deadline and breaker
            # are consulted before any latency is charged.
            self._check_deadline(deadline, source, kind)
            if breaker is not None and not breaker.allow():
                with self._lock:
                    self.stats.breaker_skips += 1
                metrics.counter("scheduler.breaker_skips").inc()
                raise BreakerOpenError(
                    f"breaker open for ({source.name!r}, {kind!r}); "
                    "call skipped without a round-trip"
                )
            try:
                records = source.fetch_many(kind, page)
            except SourceUnavailableError:
                if breaker is not None:
                    breaker.record_failure()
                attempts += 1
                if attempts >= self.max_attempts:
                    raise
                with self._lock:
                    self.stats.retries += 1
                metrics.counter("scheduler.retries").inc()
                if self.backoff_s:
                    self.clock.advance(
                        self.backoff_s * (2 ** (attempts - 1))
                    )
            except RateLimitError:
                # Rate limiting is load shedding, not darkness: it
                # does not feed the breaker.
                rate_waits += 1
                if rate_waits > self.max_rate_limit_waits:
                    raise
                with self._lock:
                    self.stats.rate_limit_waits += 1
                metrics.counter("scheduler.rate_limit_waits").inc()
                window_s = getattr(faults_of(source), "window_s", None)
                self.clock.sleep(window_s if window_s
                                 else (self.backoff_s or 0.05))
            else:
                if breaker is not None:
                    breaker.record_success()
                return records

    def __repr__(self) -> str:
        return (f"FetchScheduler(workers={self.max_workers}, "
                f"batches={self.stats.batches}, "
                f"coalesced={self.stats.coalesced})")
