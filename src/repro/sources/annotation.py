"""GO/EC-shaped functional annotation source.

The third source the DrugTree integration pipeline consults: per-protein
functional annotations (GO terms, EC number, family membership) used to
label tree leaves and to filter queries by function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceError
from repro.sources.base import FaultModel, LatencyModel, TableBackedSource
from repro.sources.clock import SimulatedClock

KIND_ANNOTATION = "annotation"
KIND_PROTEINS_BY_FAMILY = "proteins_by_family"


@dataclass(frozen=True)
class AnnotationEntry:
    """Functional annotation of one protein."""

    protein_id: str
    go_terms: tuple[str, ...] = field(default_factory=tuple)
    ec_number: str = ""
    family: str = ""
    keywords: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.protein_id:
            raise SourceError("annotation entry needs a protein id")

    def has_go_term(self, term: str) -> bool:
        return term in self.go_terms


class AnnotationSource(TableBackedSource):
    """Simulated remote annotation service.

    Kinds served:

    * ``annotation`` — ``protein_id`` → :class:`AnnotationEntry`
    * ``proteins_by_family`` — family name → tuple of protein ids
    """

    def __init__(self, clock: SimulatedClock,
                 entries: list[AnnotationEntry],
                 name: str = "go-sim",
                 latency: LatencyModel | None = None,
                 faults: FaultModel | None = None,
                 page_size: int = 100) -> None:
        by_id: dict[str, object] = {}
        by_family: dict[str, list[str]] = {}
        for entry in entries:
            if entry.protein_id in by_id:
                raise SourceError(
                    f"duplicate annotation for {entry.protein_id!r}"
                )
            by_id[entry.protein_id] = entry
            if entry.family:
                by_family.setdefault(entry.family, []).append(
                    entry.protein_id
                )
        tables: dict[str, dict[str, object]] = {
            KIND_ANNOTATION: by_id,
            KIND_PROTEINS_BY_FAMILY: {
                family: tuple(ids) for family, ids in by_family.items()
            },
        }
        super().__init__(name, clock, tables, latency, faults, page_size)

    # -- typed helpers ----------------------------------------------------

    def annotation(self, protein_id: str) -> AnnotationEntry | None:
        return self.fetch(KIND_ANNOTATION, protein_id)  # type: ignore

    def annotations(self,
                    protein_ids: list[str]) -> dict[str, AnnotationEntry]:
        return self.fetch_many(KIND_ANNOTATION, protein_ids)  # type: ignore

    def proteins_of_family(self, family: str) -> tuple[str, ...]:
        record = self.fetch(KIND_PROTEINS_BY_FAMILY, family)
        return record if record is not None else ()  # type: ignore
