"""Resilience primitives: circuit breakers, deadlines, result statuses.

The federation's failure story used to be "retry with backoff and hope":
every fetch against a dark source re-paid the full retry ladder, and one
slow source could stall a whole mobile tap. This module provides the
three primitives the resilient path is built from:

* :class:`CircuitBreaker` / :class:`BreakerBoard` — per ``(source,
  kind)`` closed → open → half-open state machines in *virtual* time.
  After ``failure_threshold`` consecutive failures the breaker opens and
  callers are refused instantly (:class:`~repro.errors.BreakerOpenError`,
  zero latency charged) until ``reset_timeout_s`` has elapsed, when a
  bounded number of half-open probes test the source; a probe success
  closes the breaker, a probe failure re-opens it.
* :class:`Deadline` — a virtual-time budget carried from
  ``QueryEngine.execute`` / mobile taps down into page fetches; once
  expired, remaining pages are cancelled instead of charged.
* :class:`FetchOutcome` + the ``STATUS_*`` constants — the vocabulary of
  graceful degradation: every kind in a resilient fetch is annotated
  ``fresh`` / ``partial`` / ``stale`` / ``missing`` so partial answers
  are *flagged*, never silently passed off as complete.

Everything here runs against a :class:`~repro.sources.clock
.SimulatedClock`, so whole failure scenarios (see
:mod:`repro.sources.chaos`) replay bit-identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import SourceError
from repro.obs import get_metrics
from repro.sources.clock import SimulatedClock

#: Result produced from live source round-trips, complete.
STATUS_FRESH = "fresh"
#: Some keys answered, some lost to faults/deadline — flagged partial.
STATUS_PARTIAL = "partial"
#: Served from a cache past its freshness horizon (better than nothing).
STATUS_STALE = "stale"
#: Nothing could be served for this kind.
STATUS_MISSING = "missing"

#: Degradation order; a batch's status is the worst of its flushes.
_STATUS_SEVERITY = {STATUS_FRESH: 0, STATUS_STALE: 1,
                    STATUS_PARTIAL: 2, STATUS_MISSING: 3}


def worst_status(first: str, second: str) -> str:
    """The more degraded of two statuses (fresh < stale < partial <
    missing)."""
    if _STATUS_SEVERITY[second] > _STATUS_SEVERITY[first]:
        return second
    return first


#: Breaker states, with the gauge encoding used in metrics snapshots.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"
_STATE_GAUGE = {STATE_CLOSED: 0.0, STATE_HALF_OPEN: 1.0, STATE_OPEN: 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of one circuit breaker (see docs/RESILIENCE.md)."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 5
    #: Virtual seconds an open breaker refuses calls before half-open.
    reset_timeout_s: float = 30.0
    #: Concurrent probe calls allowed through a half-open breaker.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SourceError("breaker threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise SourceError("breaker reset timeout must be positive")
        if self.half_open_probes < 1:
            raise SourceError("breaker needs >= 1 half-open probe")


class Deadline:
    """A virtual-time budget: ``now + budget_s`` at construction.

    Deadlines are *propagated*, not enforced by alarm: every layer that
    is about to pay a round-trip asks :meth:`exceeded` first and cancels
    instead of charging when the budget is gone. Inside a parallel
    region each task timeline checks against its own virtual clock, so
    a deadline carried into scatter/gather behaves per-task.
    """

    __slots__ = ("clock", "budget_s", "expires_at")

    def __init__(self, clock: SimulatedClock, budget_s: float) -> None:
        if budget_s <= 0:
            raise SourceError("deadline budget must be positive")
        self.clock = clock
        self.budget_s = budget_s
        self.expires_at = clock.now() + budget_s

    def remaining_s(self) -> float:
        return max(0.0, self.expires_at - self.clock.now())

    def exceeded(self) -> bool:
        return self.clock.now() >= self.expires_at

    def __repr__(self) -> str:
        return (f"Deadline(budget={self.budget_s:.3f}s, "
                f"remaining={self.remaining_s():.3f}s)")


class CircuitBreaker:
    """Closed → open → half-open breaker for one ``(source, kind)``.

    Thread-safe: the fetch scheduler records successes/failures from
    worker threads. All timing is virtual, so breaker behaviour replays
    deterministically under a seeded chaos scenario.
    """

    def __init__(self, clock: SimulatedClock,
                 config: BreakerConfig | None = None,
                 name: str = "") -> None:
        self.clock = clock
        self.config = config or BreakerConfig()
        self.name = name
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Cumulative transitions to open (trips), for reports.
        self.trips = 0
        #: Calls refused while open (the round-trips never paid).
        self.short_circuits = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    # -- state machine (lock held by callers of the _ methods) ---------

    def _maybe_half_open(self) -> None:
        if (self._state == STATE_OPEN
                and self.clock.now() - self._opened_at
                >= self.config.reset_timeout_s):
            self._set_state(STATE_HALF_OPEN)
            self._probes_inflight = 0

    def _set_state(self, state: str) -> None:
        self._state = state
        if self.name:
            get_metrics().gauge(
                f"breaker.state.{self.name}"
            ).set(_STATE_GAUGE[state])

    def allow(self) -> bool:
        """May a call proceed right now? (Half-open admits probes.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                self.short_circuits += 1
                if self.name:
                    get_metrics().counter(
                        f"breaker.short_circuits.{self.name}"
                    ).inc()
                return False
            # Half-open: admit a bounded number of probe calls.
            if self._probes_inflight < self.config.half_open_probes:
                self._probes_inflight += 1
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != STATE_CLOSED:
                self._set_state(STATE_CLOSED)
                self._probes_inflight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self._trip()  # the probe failed: back to open
            elif (self._state == STATE_CLOSED
                    and self._consecutive_failures
                    >= self.config.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._set_state(STATE_OPEN)
        self._opened_at = self.clock.now()
        self._probes_inflight = 0
        self.trips += 1
        if self.name:
            get_metrics().counter(f"breaker.opened.{self.name}").inc()

    def reset(self) -> None:
        """Force-close (operator override / test helper)."""
        with self._lock:
            self._set_state(STATE_CLOSED)
            self._consecutive_failures = 0
            self._probes_inflight = 0

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


class BreakerBoard:
    """Lazily-built breakers keyed by ``(source_name, kind[, node])``.

    The optional ``node`` component lets the cluster layer keep one
    breaker per *replica node* rather than per logical source, so a
    single crashed node trips its own breaker without darkening the
    healthy replicas of the same partition.
    """

    def __init__(self, clock: SimulatedClock,
                 config: BreakerConfig | None = None) -> None:
        self.clock = clock
        self.config = config or BreakerConfig()
        self._lock = threading.Lock()
        self._breakers: dict[tuple[str, str, str | None],
                             CircuitBreaker] = {}

    def breaker(self, source_name: str, kind: str,
                node: str | None = None) -> CircuitBreaker:
        slot = (source_name, kind, node)
        with self._lock:
            breaker = self._breakers.get(slot)
            if breaker is None:
                name = f"{source_name}.{kind}"
                if node is not None:
                    name += f"@{node}"
                breaker = CircuitBreaker(
                    self.clock, self.config, name=name,
                )
                self._breakers[slot] = breaker
            return breaker

    def snapshot(self) -> dict[str, str]:
        """``"source/kind[@node]" -> state`` for every breaker seen."""
        with self._lock:
            items = list(self._breakers.items())
        snapshot = {}
        for (source, kind, node), breaker in sorted(
                items, key=lambda item: (item[0][0], item[0][1],
                                         item[0][2] or "")):
            key = f"{source}/{kind}"
            if node is not None:
                key += f"@{node}"
            snapshot[key] = breaker.state
        return snapshot

    def open_fraction(self) -> float:
        """Share of known breakers currently not closed."""
        states = list(self.snapshot().values())
        if not states:
            return 0.0
        return sum(s != STATE_CLOSED for s in states) / len(states)

    def trips(self) -> int:
        with self._lock:
            return sum(b.trips for b in self._breakers.values())


@dataclass
class FetchOutcome:
    """A resilient fetch's records plus per-kind degradation flags."""

    records: dict[str, dict[str, object]] = field(default_factory=dict)
    #: kind -> STATUS_FRESH / STATUS_PARTIAL / STATUS_MISSING.
    statuses: dict[str, str] = field(default_factory=dict)
    #: kind -> first error message seen for that kind, if any.
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return any(status != STATUS_FRESH
                   for status in self.statuses.values())

    def summary(self) -> str:
        """One-line ``kind=status`` rendering for logs and trailers."""
        return ", ".join(f"{kind}={status}"
                         for kind, status in sorted(self.statuses.items()))
