"""ChEMBL/BindingDB-shaped ligand activity source.

Serves compound records (SMILES plus precomputed descriptors) and binding
activities, indexed both by protein and by ligand — mirroring how the
real activity databases expose their REST endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.affinity import BindingRecord
from repro.errors import SourceError
from repro.sources.base import FaultModel, LatencyModel, TableBackedSource
from repro.sources.clock import SimulatedClock

KIND_COMPOUND = "compound"
KIND_ACTIVITY_BY_PROTEIN = "activity_by_protein"
KIND_ACTIVITY_BY_LIGAND = "activity_by_ligand"


@dataclass(frozen=True)
class CompoundEntry:
    """One compound record as an activity database reports it."""

    ligand_id: str
    smiles: str
    molecular_weight: float
    logp: float
    tpsa: float
    hbd: int
    hba: int
    rotatable_bonds: int
    ring_count: int

    def __post_init__(self) -> None:
        if not self.ligand_id or not self.smiles:
            raise SourceError("compound entry needs an id and SMILES")


class LigandActivitySource(TableBackedSource):
    """Simulated remote activity database.

    Kinds served:

    * ``compound`` — ``ligand_id`` → :class:`CompoundEntry`
    * ``activity_by_protein`` — ``protein_id`` → tuple of
      :class:`~repro.chem.affinity.BindingRecord`
    * ``activity_by_ligand`` — ``ligand_id`` → tuple of records
    """

    def __init__(self, clock: SimulatedClock,
                 compounds: list[CompoundEntry],
                 activities: list[BindingRecord],
                 name: str = "chembl-sim",
                 latency: LatencyModel | None = None,
                 faults: FaultModel | None = None,
                 page_size: int = 100) -> None:
        compound_table: dict[str, object] = {}
        for compound in compounds:
            if compound.ligand_id in compound_table:
                raise SourceError(
                    f"duplicate ligand id {compound.ligand_id!r}"
                )
            compound_table[compound.ligand_id] = compound
        by_protein: dict[str, list[BindingRecord]] = {}
        by_ligand: dict[str, list[BindingRecord]] = {}
        for record in activities:
            by_protein.setdefault(record.protein_id, []).append(record)
            by_ligand.setdefault(record.ligand_id, []).append(record)
        tables: dict[str, dict[str, object]] = {
            KIND_COMPOUND: compound_table,
            KIND_ACTIVITY_BY_PROTEIN: {
                key: tuple(value) for key, value in by_protein.items()
            },
            KIND_ACTIVITY_BY_LIGAND: {
                key: tuple(value) for key, value in by_ligand.items()
            },
        }
        super().__init__(name, clock, tables, latency, faults, page_size)

    # -- typed helpers ----------------------------------------------------

    def compound(self, ligand_id: str) -> CompoundEntry | None:
        return self.fetch(KIND_COMPOUND, ligand_id)  # type: ignore

    def compounds(self, ligand_ids: list[str]) -> dict[str, CompoundEntry]:
        return self.fetch_many(KIND_COMPOUND, ligand_ids)  # type: ignore

    def list_ligand_ids(self) -> list[str]:
        return self.scan_keys(KIND_COMPOUND)

    def activities_for_protein(self,
                               protein_id: str) -> tuple[BindingRecord, ...]:
        record = self.fetch(KIND_ACTIVITY_BY_PROTEIN, protein_id)
        return record if record is not None else ()  # type: ignore

    def activities_for_proteins(
        self, protein_ids: list[str],
    ) -> dict[str, tuple[BindingRecord, ...]]:
        return self.fetch_many(KIND_ACTIVITY_BY_PROTEIN,
                               protein_ids)  # type: ignore

    def activities_for_ligand(self,
                              ligand_id: str) -> tuple[BindingRecord, ...]:
        record = self.fetch(KIND_ACTIVITY_BY_LIGAND, ligand_id)
        return record if record is not None else ()  # type: ignore
