"""Molecular descriptors for drug-likeness filtering and query predicates.

The descriptor set mirrors what a ligand-activity database exposes per
compound: molecular weight, a coarse logP estimate, polar surface area,
hydrogen-bond donor/acceptor counts, rotatable bonds, ring count, and the
Lipinski rule-of-five verdict. The logP and TPSA models are deliberately
simple fragment-contribution tables (Wildman–Crippen- and Ertl-inspired);
they produce realistic *distributions* and orderings, which is what the
query benchmarks need, not publication-grade predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.mol import Molecule

#: Coarse per-atom logP contributions (hydrophobicity up, polarity down).
_LOGP_ATOM = {
    "C": 0.14, "B": 0.05, "N": -0.60, "O": -0.45, "P": -0.40,
    "S": 0.25, "F": 0.22, "Cl": 0.65, "Br": 0.85, "I": 1.05, "H": 0.0,
}
_LOGP_AROMATIC_CARBON = 0.30
_LOGP_HYDROGEN_ON_POLAR = -0.30


def estimate_logp(mol: Molecule) -> float:
    """Crude octanol/water partition estimate by atom contributions."""
    total = 0.0
    for atom in mol.atoms:
        if atom.element == "C" and atom.aromatic:
            total += _LOGP_AROMATIC_CARBON
        else:
            total += _LOGP_ATOM[atom.element]
        if atom.element in ("N", "O"):
            total += _LOGP_HYDROGEN_ON_POLAR * mol.implicit_hydrogens(
                atom.index
            )
    return round(total, 3)


def hydrogen_bond_donors(mol: Molecule) -> int:
    """Count of N–H and O–H groups (each group counted once)."""
    return sum(
        1
        for atom in mol.atoms
        if atom.element in ("N", "O")
        and mol.implicit_hydrogens(atom.index) > 0
    )


def hydrogen_bond_acceptors(mol: Molecule) -> int:
    """Count of nitrogen and oxygen atoms (Lipinski convention)."""
    return sum(1 for atom in mol.atoms if atom.element in ("N", "O"))


def rotatable_bonds(mol: Molecule) -> int:
    """Single, non-ring bonds between two non-terminal heavy atoms."""
    ring_bonds = mol.ring_bonds()
    count = 0
    for bond in mol.bonds:
        if bond.order != 1 or bond.aromatic or bond.key in ring_bonds:
            continue
        if mol.degree(bond.first) < 2 or mol.degree(bond.second) < 2:
            continue
        if (mol.atoms[bond.first].element == "H"
                or mol.atoms[bond.second].element == "H"):
            continue
        count += 1
    return count


def topological_polar_surface_area(mol: Molecule) -> float:
    """Ertl-style TPSA from per-atom N/O/S environment contributions."""
    total = 0.0
    for atom in mol.atoms:
        element = atom.element
        if element not in ("N", "O", "S"):
            continue
        hydrogens = mol.implicit_hydrogens(atom.index)
        double_bonds = sum(
            1 for bond in mol.bonds_of(atom.index) if bond.order == 2
        )
        if element == "O":
            if atom.aromatic:
                total += 13.14
            elif double_bonds:
                total += 17.07
            elif hydrogens:
                total += 20.23
            else:
                total += 9.23
        elif element == "N":
            if atom.aromatic:
                total += 4.93 + (10.0 if hydrogens else 0.0)
            elif hydrogens >= 2:
                total += 26.02
            elif hydrogens == 1:
                total += 12.03
            elif double_bonds:
                total += 12.36
            else:
                total += 3.24
        else:  # sulfur
            total += 25.30 if hydrogens else (28.24 if double_bonds
                                              else 0.0)
    return round(total, 2)


@dataclass(frozen=True)
class DescriptorSet:
    """All per-compound descriptors, as stored in the ligand tables."""

    molecular_weight: float
    logp: float
    tpsa: float
    hbd: int
    hba: int
    rotatable_bonds: int
    ring_count: int
    heavy_atoms: int
    aromatic_atoms: int

    @property
    def lipinski_violations(self) -> int:
        """Number of rule-of-five violations (MW/logP/HBD/HBA)."""
        violations = 0
        if self.molecular_weight > 500:
            violations += 1
        if self.logp > 5:
            violations += 1
        if self.hbd > 5:
            violations += 1
        if self.hba > 10:
            violations += 1
        return violations

    @property
    def is_drug_like(self) -> bool:
        """Lipinski's rule of five: at most one violation."""
        return self.lipinski_violations <= 1

    def as_dict(self) -> dict[str, float | int | bool]:
        return {
            "molecular_weight": self.molecular_weight,
            "logp": self.logp,
            "tpsa": self.tpsa,
            "hbd": self.hbd,
            "hba": self.hba,
            "rotatable_bonds": self.rotatable_bonds,
            "ring_count": self.ring_count,
            "heavy_atoms": self.heavy_atoms,
            "aromatic_atoms": self.aromatic_atoms,
            "lipinski_violations": self.lipinski_violations,
            "is_drug_like": self.is_drug_like,
        }


def compute_descriptors(mol: Molecule) -> DescriptorSet:
    """Compute the full descriptor set for one molecule."""
    return DescriptorSet(
        molecular_weight=round(mol.molecular_weight, 3),
        logp=estimate_logp(mol),
        tpsa=topological_polar_surface_area(mol),
        hbd=hydrogen_bond_donors(mol),
        hba=hydrogen_bond_acceptors(mol),
        rotatable_bonds=rotatable_bonds(mol),
        ring_count=len(mol.rings()),
        heavy_atoms=mol.heavy_atom_count,
        aromatic_atoms=sum(1 for atom in mol.atoms if atom.aromatic),
    )
