"""Random drug-like molecule generation.

Stands in for the real ligand libraries (ChEMBL/BindingDB extracts) the
paper's system queried — see DESIGN.md. Molecules are assembled from a
recipe (scaffold + substituents drawn from a curated fragment grammar),
which makes two things easy: deterministic regeneration from a seed, and
*analog series* — families of near-identical compounds that give the
similarity-search benchmark realistic neighbourhood structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.chem.descriptors import DescriptorSet, compute_descriptors
from repro.chem.fingerprint import (
    DEFAULT_BITS,
    DEFAULT_RADIUS,
    Fingerprint,
    circular_fingerprint,
)
from repro.chem.mol import Molecule
from repro.chem.smiles import parse_smiles
from repro.errors import ChemError

#: Ring scaffolds with one or two substitution points.
SCAFFOLDS: tuple[str, ...] = (
    "c1ccc({0})cc1",                # monosubstituted benzene
    "c1ccc({0})c({1})c1",           # ortho-disubstituted benzene
    "c1cc({0})ccc1{1}",             # para-disubstituted benzene
    "c1ccnc({0})c1",                # 2-substituted pyridine
    "c1cnc({0})cn1",                # substituted pyrimidine
    "c1cc({0})oc1",                 # substituted furan
    "c1cc({0})sc1",                 # substituted thiophene
    "c1cc({0})[nH]c1",              # substituted pyrrole
    "C1CCN({0})CC1",                # N-substituted piperidine
    "C1CN({0})CCN1{1}",             # disubstituted piperazine
    "C1CCC({0})CC1",                # substituted cyclohexane
    "c1ccc2c(c1)cc({0})cc2",        # substituted naphthalene
)

#: Linkers joining a scaffold to a terminal group (may be empty).
LINKERS: tuple[str, ...] = (
    "", "C", "CC", "CCC", "O", "OC", "N", "NC", "C(=O)", "C(=O)N",
    "C(=O)O", "S(=O)(=O)", "C=C",
)

#: Terminal groups. Ring terminals use ring-bond number 9 so they can
#: never collide with a scaffold ring that is still open at the point of
#: substitution.
TERMINALS: tuple[str, ...] = (
    "C", "CC", "C(C)C", "O", "N", "F", "Cl", "Br", "C(F)(F)F",
    "C#N", "C(=O)O", "C(=O)N", "OC", "N(C)C", "CO", "CN",
    "c9ccccc9", "c9ccncc9", "C9CCCCC9",
)


@dataclass(frozen=True)
class Recipe:
    """A reproducible molecule construction plan."""

    scaffold_index: int
    substituents: tuple[tuple[int, int], ...]  # (linker idx, terminal idx)

    def render(self) -> str:
        scaffold = SCAFFOLDS[self.scaffold_index]
        subs = [
            LINKERS[linker] + TERMINALS[terminal]
            for linker, terminal in self.substituents
        ]
        return scaffold.format(*subs)


@dataclass(frozen=True)
class Ligand:
    """A generated compound with precomputed search artefacts."""

    ligand_id: str
    smiles: str
    molecule: Molecule
    descriptors: DescriptorSet
    fingerprint: Fingerprint
    recipe: Recipe | None = None

    def __repr__(self) -> str:
        return f"Ligand({self.ligand_id}, {self.smiles})"


def _slots_in(scaffold: str) -> int:
    return scaffold.count("{")


def random_recipe(rng: random.Random) -> Recipe:
    """Draw one random construction recipe."""
    scaffold_index = rng.randrange(len(SCAFFOLDS))
    slots = _slots_in(SCAFFOLDS[scaffold_index])
    substituents = tuple(
        (rng.randrange(len(LINKERS)), rng.randrange(len(TERMINALS)))
        for _ in range(slots)
    )
    return Recipe(scaffold_index, substituents)


def mutate_recipe(recipe: Recipe, rng: random.Random) -> Recipe:
    """Change one substituent — the 'analog' move of a med-chem series."""
    if not recipe.substituents:
        return recipe
    position = rng.randrange(len(recipe.substituents))
    substituents = list(recipe.substituents)
    if rng.random() < 0.5:
        substituents[position] = (
            rng.randrange(len(LINKERS)), substituents[position][1]
        )
    else:
        substituents[position] = (
            substituents[position][0], rng.randrange(len(TERMINALS))
        )
    return replace(recipe, substituents=tuple(substituents))


def build_ligand(recipe: Recipe, ligand_id: str,
                 radius: int = DEFAULT_RADIUS,
                 n_bits: int = DEFAULT_BITS) -> Ligand:
    """Materialise a recipe into a parsed, profiled ligand."""
    smiles = recipe.render()
    molecule = parse_smiles(smiles, name=ligand_id)
    return Ligand(
        ligand_id=ligand_id,
        smiles=smiles,
        molecule=molecule,
        descriptors=compute_descriptors(molecule),
        fingerprint=circular_fingerprint(molecule, radius=radius,
                                         n_bits=n_bits),
        recipe=recipe,
    )


def generate_ligand(ligand_id: str, rng: random.Random,
                    max_attempts: int = 50) -> Ligand:
    """Generate one random valid ligand (retrying invalid assemblies)."""
    for _ in range(max_attempts):
        recipe = random_recipe(rng)
        try:
            return build_ligand(recipe, ligand_id)
        except ChemError:
            continue
    raise ChemError("could not assemble a valid molecule")


def generate_library(size: int,
                     seed: int | None = None,
                     id_prefix: str = "LIG",
                     analog_fraction: float = 0.3) -> list[Ligand]:
    """Generate a ligand library with embedded analog series.

    A fraction of compounds are analogs of an earlier library member
    (one substituent changed), giving the library the clustered
    similarity structure of a real screening collection.
    """
    if size < 1:
        raise ChemError("library size must be positive")
    if not 0.0 <= analog_fraction <= 1.0:
        raise ChemError("analog fraction must be within [0, 1]")
    rng = random.Random(seed)
    library: list[Ligand] = []
    seen_smiles: set[str] = set()
    attempts = 0
    while len(library) < size and attempts < size * 100:
        attempts += 1
        ligand_id = f"{id_prefix}{len(library):05d}"
        if library and rng.random() < analog_fraction:
            parent = rng.choice(library)
            if parent.recipe is None:
                continue
            recipe = mutate_recipe(parent.recipe, rng)
            try:
                ligand = build_ligand(recipe, ligand_id)
            except ChemError:
                continue
        else:
            ligand = generate_ligand(ligand_id, rng)
        if ligand.smiles in seen_smiles:
            continue
        seen_smiles.add(ligand.smiles)
        library.append(ligand)
    if len(library) < size:
        raise ChemError(
            f"could not generate {size} unique ligands "
            f"(got {len(library)})"
        )
    return library
