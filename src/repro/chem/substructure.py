"""Substructure matching: "which molecules contain this fragment?"

The classic chemical-database query, implemented the classic way:

1. a cheap **count screen** discards molecules that cannot possibly
   contain the fragment (fewer atoms of some element, fewer rings,
   fewer bonds than the fragment requires);
2. survivors are checked exactly with VF2 subgraph **monomorphism**
   (pattern bonds must exist in the target; extra target bonds are
   allowed), with element and aromaticity matched per atom and bond
   order per bond.

The screen is sound (never discards a true match — property-tested) but
not complete; VF2 settles the survivors.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx
from networkx.algorithms import isomorphism

from repro.chem.mol import Molecule
from repro.chem.smiles import parse_smiles
from repro.errors import ChemError


def _typed_graph(mol: Molecule) -> nx.Graph:
    graph = nx.Graph()
    for atom in mol.atoms:
        graph.add_node(atom.index, element=atom.element,
                       aromatic=atom.aromatic)
    for bond in mol.bonds:
        graph.add_edge(bond.first, bond.second,
                       order=bond.order, aromatic=bond.aromatic)
    return graph


def _atoms_match(target_attrs: dict, pattern_attrs: dict) -> bool:
    return (target_attrs["element"] == pattern_attrs["element"]
            and target_attrs["aromatic"] == pattern_attrs["aromatic"])


def _bonds_match(target_attrs: dict, pattern_attrs: dict) -> bool:
    if pattern_attrs["aromatic"] or target_attrs["aromatic"]:
        return pattern_attrs["aromatic"] == target_attrs["aromatic"]
    return pattern_attrs["order"] == target_attrs["order"]


class SubstructurePattern:
    """A parsed, screen-profiled fragment ready for repeated matching."""

    def __init__(self, smiles: str) -> None:
        if not smiles:
            raise ChemError("substructure pattern needs SMILES text")
        self.smiles = smiles
        self.fragment = parse_smiles(smiles)
        self.graph = _typed_graph(self.fragment)
        self.element_counts = Counter(
            atom.element for atom in self.fragment.atoms
        )
        self.bond_count = len(self.fragment.bonds)
        self.ring_count = len(self.fragment.rings())
        self.aromatic_atoms = sum(
            1 for atom in self.fragment.atoms if atom.aromatic
        )

    # -- stage 1: the count screen ----------------------------------------

    def screen(self, mol: Molecule) -> bool:
        """Can *mol* possibly contain the fragment? (Sound, incomplete.)"""
        if len(mol.bonds) < self.bond_count:
            return False
        if len(mol.rings()) < self.ring_count:
            return False
        if sum(1 for a in mol.atoms if a.aromatic) < self.aromatic_atoms:
            return False
        counts = Counter(atom.element for atom in mol.atoms)
        return all(
            counts.get(element, 0) >= needed
            for element, needed in self.element_counts.items()
        )

    # -- stage 2: exact matching ----------------------------------------------

    def matches(self, mol: Molecule) -> bool:
        """True if *mol* contains the fragment (screen + VF2)."""
        if not self.screen(mol):
            return False
        matcher = isomorphism.GraphMatcher(
            _typed_graph(mol), self.graph,
            node_match=_atoms_match, edge_match=_bonds_match,
        )
        return matcher.subgraph_is_monomorphic()

    def match_count(self, mol: Molecule) -> int:
        """Number of distinct atom mappings (symmetry included)."""
        if not self.screen(mol):
            return 0
        matcher = isomorphism.GraphMatcher(
            _typed_graph(mol), self.graph,
            node_match=_atoms_match, edge_match=_bonds_match,
        )
        return sum(1 for _ in matcher.subgraph_monomorphisms_iter())

    def __repr__(self) -> str:
        return f"SubstructurePattern({self.smiles!r})"


def has_substructure(mol: Molecule, fragment_smiles: str) -> bool:
    """One-shot convenience wrapper around :class:`SubstructurePattern`."""
    return SubstructurePattern(fragment_smiles).matches(mol)


def filter_library(patterns: SubstructurePattern,
                   molecules: dict[str, Molecule]) -> tuple[frozenset[str],
                                                            int]:
    """Match a pattern over a keyed library.

    Returns (matching keys, how many survived the screen) — the second
    number is what the screening experiment reports.
    """
    screened = {
        key: mol for key, mol in molecules.items()
        if patterns.screen(mol)
    }
    matches = frozenset(
        key for key, mol in screened.items() if patterns.matches(mol)
    )
    return matches, len(screened)
