"""A mini SMILES dialect: parser and writer.

Supports the subset of SMILES that covers drug-like small molecules:

* organic-subset atoms ``B C N O P S F Cl Br I`` and aromatic
  ``b c n o p s``;
* bracket atoms with charge and explicit hydrogen count (``[NH+]``,
  ``[O-]``, ``[nH]``);
* single/double/triple bonds (``-``, ``=``, ``#``) and implicit single
  or aromatic bonds;
* branches ``( ... )`` and ring-closure digits ``1``–``9`` plus ``%nn``.

Stereochemistry and isotopes are out of scope: the DrugTree queries this
library reproduces never inspect them.
"""

from __future__ import annotations

from repro.chem.mol import Atom, Molecule
from repro.errors import ChemError

_ORGANIC_TWO_CHAR = ("Cl", "Br")
_ORGANIC_ONE_CHAR = set("BCNOPSFI")
_AROMATIC_CHARS = set("bcnops")
_BOND_CHARS = {"-": 1, "=": 2, "#": 3}


class _SmilesParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.mol = Molecule()
        self.prev_atom: int | None = None
        self.pending_bond: tuple[int, bool] | None = None  # (order, aromatic)
        self.branch_stack: list[int | None] = []
        self.ring_openings: dict[int, tuple[int, tuple[int, bool] | None]] = {}

    def parse(self) -> Molecule:
        if not self.text:
            raise ChemError("empty SMILES")
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "(":
                if self.prev_atom is None:
                    raise ChemError("branch before any atom")
                self.branch_stack.append(self.prev_atom)
                self.pos += 1
            elif char == ")":
                if not self.branch_stack:
                    raise ChemError("unbalanced ')' in SMILES")
                self.prev_atom = self.branch_stack.pop()
                self.pos += 1
            elif char in _BOND_CHARS:
                self.pending_bond = (_BOND_CHARS[char], False)
                self.pos += 1
            elif char == ":":
                self.pending_bond = (1, True)
                self.pos += 1
            elif char == ".":
                if self.pending_bond is not None:
                    raise ChemError("bond symbol before '.' separator")
                if self.prev_atom is None:
                    raise ChemError("'.' separator before any atom")
                self.prev_atom = None
                self.pos += 1
            elif char.isdigit() or char == "%":
                self._ring_closure()
            elif char == "[":
                self._bracket_atom()
            else:
                self._organic_atom()
        if self.branch_stack:
            raise ChemError("unbalanced '(' in SMILES")
        if self.ring_openings:
            numbers = sorted(self.ring_openings)
            raise ChemError(f"unclosed ring bond(s): {numbers}")
        if self.pending_bond is not None:
            raise ChemError("dangling bond at end of SMILES")
        self.mol.demote_nonring_aromatic_bonds()
        return self.mol.freeze()

    # -- token handlers -------------------------------------------------

    def _organic_atom(self) -> None:
        text = self.text
        if text.startswith(_ORGANIC_TWO_CHAR, self.pos):
            element = text[self.pos:self.pos + 2]
            self.pos += 2
            self._attach(Atom(element))
            return
        char = text[self.pos]
        if char in _ORGANIC_ONE_CHAR:
            self.pos += 1
            self._attach(Atom(char))
            return
        if char in _AROMATIC_CHARS:
            self.pos += 1
            self._attach(Atom(char.upper(), aromatic=True))
            return
        raise ChemError(
            f"unexpected character {char!r} at position {self.pos}"
        )

    def _bracket_atom(self) -> None:
        end = self.text.find("]", self.pos)
        if end < 0:
            raise ChemError("unterminated bracket atom")
        body = self.text[self.pos + 1:end]
        self.pos = end + 1
        if not body:
            raise ChemError("empty bracket atom")

        cursor = 0
        aromatic = False
        if body.startswith(_ORGANIC_TWO_CHAR):
            element = body[:2]
            cursor = 2
        elif body[0] in _AROMATIC_CHARS:
            element = body[0].upper()
            aromatic = True
            cursor = 1
        elif body[0].isupper():
            element = body[0]
            cursor = 1
        else:
            raise ChemError(f"bad bracket atom [{body}]")

        hydrogens = 0
        explicit_h = False
        charge = 0
        while cursor < len(body):
            char = body[cursor]
            if char == "H":
                explicit_h = True
                cursor += 1
                digits = ""
                while cursor < len(body) and body[cursor].isdigit():
                    digits += body[cursor]
                    cursor += 1
                hydrogens = int(digits) if digits else 1
            elif char in "+-":
                sign = 1 if char == "+" else -1
                cursor += 1
                digits = ""
                while cursor < len(body) and body[cursor].isdigit():
                    digits += body[cursor]
                    cursor += 1
                if digits:
                    charge = sign * int(digits)
                else:
                    charge = sign
                    while cursor < len(body) and body[cursor] == char:
                        charge += sign
                        cursor += 1
            else:
                raise ChemError(
                    f"unsupported bracket-atom feature {char!r} in [{body}]"
                )
        atom = Atom(element, aromatic=aromatic, charge=charge,
                    explicit_hydrogens=hydrogens if explicit_h else 0)
        self._attach(atom)

    def _ring_closure(self) -> None:
        char = self.text[self.pos]
        if char == "%":
            digits = self.text[self.pos + 1:self.pos + 3]
            if len(digits) != 2 or not digits.isdigit():
                raise ChemError("'%' ring closure needs two digits")
            number = int(digits)
            self.pos += 3
        else:
            number = int(char)
            self.pos += 1
        if self.prev_atom is None:
            raise ChemError("ring closure before any atom")
        bond_spec = self.pending_bond
        self.pending_bond = None
        if number in self.ring_openings:
            open_atom, open_spec = self.ring_openings.pop(number)
            spec = bond_spec or open_spec
            if spec is None:
                both_aromatic = (
                    self.mol.atoms[open_atom].aromatic
                    and self.mol.atoms[self.prev_atom].aromatic
                )
                spec = (1, both_aromatic)
            order, aromatic = spec
            self.mol.add_bond(open_atom, self.prev_atom, order, aromatic)
        else:
            self.ring_openings[number] = (self.prev_atom, bond_spec)

    def _attach(self, atom: Atom) -> None:
        index = self.mol.add_atom(atom)
        if self.prev_atom is not None:
            if self.pending_bond is not None:
                order, aromatic = self.pending_bond
            else:
                both_aromatic = (
                    self.mol.atoms[self.prev_atom].aromatic and atom.aromatic
                )
                order, aromatic = 1, both_aromatic
            self.mol.add_bond(self.prev_atom, index, order, aromatic)
        self.pending_bond = None
        self.prev_atom = index


def parse_smiles(text: str, name: str = "") -> Molecule:
    """Parse SMILES *text* into a frozen :class:`Molecule`."""
    try:
        mol = _SmilesParser(text.strip()).parse()
    except ChemError as exc:
        raise ChemError(f"bad SMILES {text!r}: {exc}") from None
    mol.name = name or text.strip()
    return mol


def write_smiles(mol: Molecule) -> str:
    """Write a molecule back to SMILES (DFS order, not canonical).

    The output re-parses to a molecule with the same formula, ring count
    and descriptor values — sufficient for storage and transfer; canonical
    ordering is out of scope.
    """
    if not mol.atoms:
        raise ChemError("cannot write an empty molecule")
    visited: set[int] = set()
    ring_bonds = _ring_closure_bonds(mol)
    ring_numbers: dict[tuple[int, int], int] = {}
    next_ring = [1]

    def atom_token(index: int) -> str:
        atom = mol.atoms[index]
        element = atom.element
        symbol = element.lower() if atom.aromatic else element
        needs_bracket = (
            atom.charge != 0
            or atom.explicit_hydrogens is not None
            or (atom.aromatic and element not in ("C",) and _needs_h(index))
        )
        if not needs_bracket:
            return symbol
        parts = [symbol]
        h_count = (atom.explicit_hydrogens
                   if atom.explicit_hydrogens is not None
                   else mol.implicit_hydrogens(index))
        if h_count == 1:
            parts.append("H")
        elif h_count > 1:
            parts.append(f"H{h_count}")
        if atom.charge > 0:
            parts.append("+" if atom.charge == 1 else f"+{atom.charge}")
        elif atom.charge < 0:
            parts.append("-" if atom.charge == -1 else f"-{-atom.charge}")
        return f"[{''.join(parts)}]"

    def _needs_h(index: int) -> bool:
        return (mol.atoms[index].explicit_hydrogens or 0) > 0

    def bond_token(order: int, aromatic: bool, between_aromatic: bool) -> str:
        if aromatic:
            return "" if between_aromatic else ":"
        if order == 1:
            return ""
        return {2: "=", 3: "#"}[order]

    def walk(index: int, via: tuple[int, int] | None) -> str:
        visited.add(index)
        pieces = [atom_token(index)]
        # Ring-closure digits on this atom; the bond symbol (if any) is
        # written at the opening endpoint.
        for key in sorted(ring_bonds):
            if index in key:
                number = ring_numbers.get(key)
                prefix = ""
                if number is None:
                    number = next_ring[0]
                    next_ring[0] += 1
                    ring_numbers[key] = number
                    bond = mol.bond_between(*key)
                    assert bond is not None
                    other = bond.other(index)
                    both_aromatic = (
                        mol.atoms[index].aromatic
                        and mol.atoms[other].aromatic
                    )
                    prefix = bond_token(bond.order, bond.aromatic,
                                        both_aromatic)
                token = str(number) if number < 10 else f"%{number:02d}"
                pieces.append(prefix + token)
        branches: list[str] = []
        for bond in mol.bonds_of(index):
            if bond.key in ring_bonds or bond.key == via:
                continue
            other = bond.other(index)
            if other in visited:
                continue
            both_aromatic = (
                mol.atoms[index].aromatic and mol.atoms[other].aromatic
            )
            prefix = bond_token(bond.order, bond.aromatic, both_aromatic)
            branches.append(prefix + walk(other, bond.key))
        for branch in branches[:-1]:
            pieces.append(f"({branch})")
        if branches:
            pieces.append(branches[-1])
        return "".join(pieces)

    components: list[str] = []
    for index in range(len(mol.atoms)):
        if index not in visited:
            components.append(walk(index, None))
    return ".".join(components)


def _ring_closure_bonds(mol: Molecule) -> set[tuple[int, int]]:
    """One bond per basis cycle to break during the DFS write."""
    closures: set[tuple[int, int]] = set()
    seen_edges: set[tuple[int, int]] = set()
    parent: dict[int, int | None] = {}
    for start in range(len(mol.atoms)):
        if start in parent:
            continue
        parent[start] = None
        stack = [start]
        while stack:
            node = stack.pop()
            for bond in mol.bonds_of(node):
                other = bond.other(node)
                if bond.key in seen_edges:
                    continue
                if other in parent:
                    closures.add(bond.key)
                    seen_edges.add(bond.key)
                else:
                    parent[other] = node
                    seen_edges.add(bond.key)
                    stack.append(other)
    return closures
