"""Similarity search structures: the popcount-ordered fingerprint index.

The Tanimoto bound ``T(a,b) >= t  ⇒  t*|a| <= |b| <= |a|/t`` (Swamidass
& Baldi 2007) means a library kept *sorted by popcount* can locate the
candidate band with two binary searches instead of testing every
fingerprint — turning the prefilter from a per-query scan into an
index lookup. This is what makes the prefilter pay off in wall time,
not just in candidate counts.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.chem.fingerprint import Fingerprint, tanimoto
from repro.errors import ChemError


class FingerprintIndex:
    """An immutable-after-build popcount-ordered fingerprint library."""

    def __init__(self) -> None:
        self._popcounts: list[int] = []
        self._entries: list[tuple[str, Fingerprint]] = []
        self._by_key: dict[str, Fingerprint] = {}
        self._n_bits: int | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def add(self, key: str, fingerprint: Fingerprint) -> None:
        """Insert one fingerprint (keeps popcount order)."""
        if key in self._by_key:
            raise ChemError(f"duplicate fingerprint key {key!r}")
        if self._n_bits is None:
            self._n_bits = fingerprint.n_bits
        elif fingerprint.n_bits != self._n_bits:
            raise ChemError(
                f"fingerprint width {fingerprint.n_bits} does not match "
                f"index width {self._n_bits}"
            )
        position = bisect.bisect_right(self._popcounts,
                                       fingerprint.popcount)
        self._popcounts.insert(position, fingerprint.popcount)
        self._entries.insert(position, (key, fingerprint))
        self._by_key[key] = fingerprint

    def add_many(self,
                 items: Iterable[tuple[str, Fingerprint]]) -> None:
        for key, fingerprint in items:
            self.add(key, fingerprint)

    def get(self, key: str) -> Fingerprint | None:
        return self._by_key.get(key)

    # -- search -----------------------------------------------------------

    def candidate_band(self, probe: Fingerprint,
                       threshold: float) -> list[tuple[str, Fingerprint]]:
        """Entries whose popcount can possibly reach *threshold*.

        Two binary searches bound the band; entries outside it are
        never touched.
        """
        if not 0.0 < threshold <= 1.0:
            raise ChemError("threshold must be in (0, 1]")
        probe_bits = probe.popcount
        if probe_bits == 0:
            # An empty probe matches only empty fingerprints (T == 1).
            low_count, high_count = 0, 0
        else:
            low_count = threshold * probe_bits
            high_count = probe_bits / threshold
        start = bisect.bisect_left(self._popcounts, low_count)
        stop = bisect.bisect_right(self._popcounts, high_count)
        return self._entries[start:stop]

    def search(self, probe: Fingerprint,
               threshold: float) -> list[tuple[str, float]]:
        """All (key, similarity) pairs with Tanimoto >= *threshold*,
        strongest first (key as tie-break for determinism)."""
        matches = [
            (key, score)
            for key, fingerprint in self.candidate_band(probe, threshold)
            if (score := tanimoto(probe, fingerprint)) >= threshold
        ]
        matches.sort(key=lambda item: (-item[1], item[0]))
        return matches

    def top_k(self, probe: Fingerprint, k: int,
              threshold: float = 0.0) -> list[tuple[str, float]]:
        """The *k* most similar entries (optionally above a floor).

        Iterates popcount bands from most- to least-promising and stops
        once the best possible similarity of the remaining band cannot
        beat the current k-th score.
        """
        if k < 1:
            raise ChemError("k must be positive")
        floor = max(threshold, 0.0)
        if floor > 0.0:
            candidates = self.search(probe, floor)
            return candidates[:k]
        scored = [
            (key, tanimoto(probe, fingerprint))
            for key, fingerprint in self._entries
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]

    def stats(self) -> dict[str, float]:
        if not self._entries:
            return {"size": 0, "min_popcount": 0, "max_popcount": 0}
        return {
            "size": len(self._entries),
            "min_popcount": self._popcounts[0],
            "max_popcount": self._popcounts[-1],
        }
