"""Molecular graph model: atoms, bonds, rings, implicit hydrogens.

A deliberately small subset of a cheminformatics toolkit — enough to
represent the drug-like ligands the DrugTree overlay stores, compute
descriptors over them, and fingerprint them for similarity search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ChemError

#: Average atomic masses of the elements the SMILES subset supports.
ATOMIC_MASS: dict[str, float] = {
    "H": 1.008, "B": 10.81, "C": 12.011, "N": 14.007, "O": 15.999,
    "F": 18.998, "P": 30.974, "S": 32.06, "Cl": 35.45, "Br": 79.904,
    "I": 126.904,
}

#: Default valences used to infer implicit hydrogen counts.
DEFAULT_VALENCE: dict[str, int] = {
    "H": 1, "B": 3, "C": 4, "N": 3, "O": 2, "F": 1, "P": 3, "S": 2,
    "Cl": 1, "Br": 1, "I": 1,
}

#: Elements with more than one allowed valence, smallest first
#: (hypervalent sulfur covers sulfoxides/sulfones, phosphorus covers
#: phosphates).
ALLOWED_VALENCES: dict[str, tuple[int, ...]] = {
    "S": (2, 4, 6),
    "P": (3, 5),
}

#: Elements that the mini SMILES dialect may write in aromatic (lowercase)
#: form.
AROMATIC_ELEMENTS = frozenset({"B", "C", "N", "O", "P", "S"})

#: Bond order used when summing valence over an aromatic bond.
AROMATIC_BOND_ORDER = 1.5


@dataclass
class Atom:
    """One atom of a molecule."""

    element: str
    aromatic: bool = False
    charge: int = 0
    explicit_hydrogens: int | None = None
    index: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.element not in ATOMIC_MASS:
            raise ChemError(f"unsupported element {self.element!r}")
        if self.aromatic and self.element not in AROMATIC_ELEMENTS:
            raise ChemError(f"element {self.element!r} cannot be aromatic")


@dataclass(frozen=True)
class Bond:
    """A bond between two atoms, identified by atom indexes."""

    first: int
    second: int
    order: int = 1
    aromatic: bool = False

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ChemError("self-bonds are not allowed")
        if self.order not in (1, 2, 3):
            raise ChemError(f"unsupported bond order {self.order}")

    @property
    def key(self) -> tuple[int, int]:
        return (min(self.first, self.second), max(self.first, self.second))

    @property
    def valence_order(self) -> float:
        return AROMATIC_BOND_ORDER if self.aromatic else float(self.order)

    def other(self, index: int) -> int:
        if index == self.first:
            return self.second
        if index == self.second:
            return self.first
        raise ChemError(f"atom {index} is not part of this bond")


class Molecule:
    """An immutable-after-construction molecular graph.

    Build with :meth:`add_atom`/:meth:`add_bond` then call :meth:`freeze`
    (the SMILES parser does this); afterwards ring membership, implicit
    hydrogens and derived counts are available and cached.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.atoms: list[Atom] = []
        self.bonds: list[Bond] = []
        self._adjacency: dict[int, list[Bond]] = {}
        self._frozen = False
        self._rings: list[list[int]] | None = None
        self._graph: nx.Graph | None = None

    # -- construction ---------------------------------------------------

    def add_atom(self, atom: Atom) -> int:
        if self._frozen:
            raise ChemError("molecule is frozen")
        atom.index = len(self.atoms)
        self.atoms.append(atom)
        self._adjacency[atom.index] = []
        return atom.index

    def add_bond(self, first: int, second: int, order: int = 1,
                 aromatic: bool = False) -> Bond:
        if self._frozen:
            raise ChemError("molecule is frozen")
        for idx in (first, second):
            if not 0 <= idx < len(self.atoms):
                raise ChemError(f"bond references missing atom {idx}")
        bond = Bond(first, second, order, aromatic)
        if any(existing.key == bond.key for existing in self.bonds):
            raise ChemError(
                f"duplicate bond between atoms {first} and {second}"
            )
        self.bonds.append(bond)
        self._adjacency[first].append(bond)
        self._adjacency[second].append(bond)
        return bond

    def demote_nonring_aromatic_bonds(self) -> None:
        """Turn aromatic bonds outside any ring into single bonds.

        SMILES writes an implicit bond between two aromatic atoms, but a
        bond is only genuinely aromatic when it lies on a ring — the
        biphenyl linkage between two aromatic rings is a rotatable single
        bond. The parser calls this once the whole graph is known.
        """
        if self._frozen:
            raise ChemError("molecule is frozen")
        ring_keys = self.ring_bonds()
        for position, bond in enumerate(self.bonds):
            if not bond.aromatic or bond.key in ring_keys:
                continue
            fresh = Bond(bond.first, bond.second, 1, False)
            self.bonds[position] = fresh
            for endpoint in (bond.first, bond.second):
                adjacency = self._adjacency[endpoint]
                for slot, existing in enumerate(adjacency):
                    if existing is bond:
                        adjacency[slot] = fresh
        self._rings = None
        self._graph = None

    def freeze(self) -> "Molecule":
        """Validate and finalise the molecule; returns self."""
        if not self.atoms:
            raise ChemError("empty molecule")
        self._frozen = True
        # Implicit-hydrogen computation doubles as a valence check.
        for atom in self.atoms:
            self.implicit_hydrogens(atom.index)
        return self

    # -- graph access ---------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        if self._graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(len(self.atoms)))
            graph.add_edges_from(bond.key for bond in self.bonds)
            self._graph = graph
        return self._graph

    def neighbors(self, index: int) -> list[int]:
        return [bond.other(index) for bond in self._adjacency[index]]

    def bonds_of(self, index: int) -> list[Bond]:
        return list(self._adjacency[index])

    def degree(self, index: int) -> int:
        return len(self._adjacency[index])

    def bond_between(self, first: int, second: int) -> Bond | None:
        for bond in self._adjacency.get(first, []):
            if bond.other(first) == second:
                return bond
        return None

    # -- derived chemistry ----------------------------------------------

    def implicit_hydrogens(self, index: int) -> int:
        """Hydrogens implied by default valence at atom *index*."""
        atom = self.atoms[index]
        if atom.explicit_hydrogens is not None:
            return atom.explicit_hydrogens
        used = sum(bond.valence_order for bond in self._adjacency[index])
        allowed = ALLOWED_VALENCES.get(
            atom.element, (DEFAULT_VALENCE[atom.element],)
        )
        # Aromatic systems blur bond orders: a pyrrole-type nitrogen or a
        # furan oxygen legitimately "uses" up to one unit beyond its
        # default valence (the lone pair donated to the pi system).
        slack = 1.0 if atom.aromatic else 0.0
        for valence in allowed:
            effective = valence + atom.charge
            if effective + slack >= used - 1e-9:
                return max(0, math.floor(effective - used + 1e-9))
        raise ChemError(
            f"valence of atom {index} ({atom.element}) exceeded: "
            f"{used} bonds for allowed valences {allowed}"
        )

    def total_hydrogens(self, index: int) -> int:
        return self.implicit_hydrogens(index)

    def rings(self) -> list[list[int]]:
        """Smallest cycle basis of the molecular graph (atom indexes)."""
        if self._rings is None:
            self._rings = [
                sorted(cycle) for cycle in nx.cycle_basis(self.graph)
            ]
        return self._rings

    def ring_atoms(self) -> set[int]:
        return {index for ring in self.rings() for index in ring}

    def ring_bonds(self) -> set[tuple[int, int]]:
        ring_sets = [set(ring) for ring in self.rings()]
        out: set[tuple[int, int]] = set()
        for bond in self.bonds:
            for ring in ring_sets:
                if bond.first in ring and bond.second in ring:
                    # Both endpoints in the same ring and the edge lies on
                    # a cycle (i.e. removing it keeps the graph connected
                    # between its endpoints).
                    out.add(bond.key)
                    break
        return out

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    @property
    def heavy_atom_count(self) -> int:
        return sum(1 for atom in self.atoms if atom.element != "H")

    @property
    def formula(self) -> str:
        """Hill-system molecular formula, counting implicit hydrogens."""
        counts: dict[str, int] = {}
        hydrogens = 0
        for atom in self.atoms:
            counts[atom.element] = counts.get(atom.element, 0) + 1
            hydrogens += self.implicit_hydrogens(atom.index)
        hydrogens += counts.pop("H", 0)
        parts: list[str] = []
        for element in ("C", "H"):
            count = counts.pop(element, 0) + (hydrogens if element == "H"
                                              else 0)
            if element == "C" and count == 0:
                continue
            if element == "H" and count == 0:
                continue
            parts.append(element + (str(count) if count > 1 else ""))
        for element in sorted(counts):
            count = counts[element]
            parts.append(element + (str(count) if count > 1 else ""))
        return "".join(parts)

    @property
    def molecular_weight(self) -> float:
        total = 0.0
        for atom in self.atoms:
            total += ATOMIC_MASS[atom.element]
            total += ATOMIC_MASS["H"] * self.implicit_hydrogens(atom.index)
        return total

    def __len__(self) -> int:
        return len(self.atoms)

    def __repr__(self) -> str:
        label = self.name or self.formula
        return f"Molecule({label}, atoms={len(self.atoms)}, bonds={len(self.bonds)})"
