"""Hashed circular fingerprints and molecular similarity.

A Morgan/ECFP-style fingerprint: every atom's environment out to a fixed
radius is hashed into a fixed-width bit vector. Hashing uses a stable
64-bit mix (independent of ``PYTHONHASHSEED``) so fingerprints are
reproducible across processes — which the semantic cache and the
benchmark harness both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.mol import Molecule
from repro.errors import ChemError

DEFAULT_BITS = 1024
DEFAULT_RADIUS = 2

_MASK64 = (1 << 64) - 1


def _mix(*values: int) -> int:
    """Stable 64-bit hash of an integer tuple (splitmix64-style)."""
    state = 0x9E3779B97F4A7C15
    for value in values:
        state = (state ^ (value & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        state = (state ^ (state >> 27)) * 0x94D049BB133111EB & _MASK64
        state ^= state >> 31
    return state


@dataclass(frozen=True)
class Fingerprint:
    """A fixed-width bit vector stored as a Python int bitmask."""

    bits: int
    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 8:
            raise ChemError("fingerprint width must be at least 8 bits")
        if self.bits < 0 or self.bits >> self.n_bits:
            raise ChemError("fingerprint bits exceed declared width")

    @property
    def popcount(self) -> int:
        return self.bits.bit_count()

    def on_bits(self) -> list[int]:
        """Indexes of set bits, ascending."""
        out = []
        bits = self.bits
        index = 0
        while bits:
            if bits & 1:
                out.append(index)
            bits >>= 1
            index += 1
        return out

    def __contains__(self, index: int) -> bool:
        return bool((self.bits >> index) & 1)


def tanimoto(first: Fingerprint, second: Fingerprint) -> float:
    """Jaccard similarity of the two bit sets; 1.0 for two empty sets."""
    if first.n_bits != second.n_bits:
        raise ChemError("fingerprints have different widths")
    union = (first.bits | second.bits).bit_count()
    if union == 0:
        return 1.0
    intersection = (first.bits & second.bits).bit_count()
    return intersection / union


def dice(first: Fingerprint, second: Fingerprint) -> float:
    """Dice similarity; 1.0 for two empty sets."""
    if first.n_bits != second.n_bits:
        raise ChemError("fingerprints have different widths")
    total = first.popcount + second.popcount
    if total == 0:
        return 1.0
    intersection = (first.bits & second.bits).bit_count()
    return 2.0 * intersection / total


_ELEMENT_CODE = {
    "H": 1, "B": 5, "C": 6, "N": 7, "O": 8, "F": 9, "P": 15, "S": 16,
    "Cl": 17, "Br": 35, "I": 53,
}


def _initial_invariants(mol: Molecule) -> list[int]:
    invariants = []
    for atom in mol.atoms:
        invariants.append(_mix(
            _ELEMENT_CODE[atom.element],
            mol.degree(atom.index),
            atom.charge + 8,
            int(atom.aromatic),
            mol.implicit_hydrogens(atom.index),
        ))
    return invariants


def circular_fingerprint(mol: Molecule,
                         radius: int = DEFAULT_RADIUS,
                         n_bits: int = DEFAULT_BITS) -> Fingerprint:
    """ECFP-style fingerprint of atom environments up to *radius*.

    Each iteration re-hashes every atom's invariant with its (sorted)
    bonded-neighbour invariants, and every intermediate invariant sets a
    bit. ``radius=2`` therefore corresponds to ECFP4-like environments.
    """
    if radius < 0:
        raise ChemError("radius must be non-negative")
    invariants = _initial_invariants(mol)
    bits = 0
    for invariant in invariants:
        bits |= 1 << (invariant % n_bits)
    for _ in range(radius):
        updated = []
        for atom in mol.atoms:
            neighbour_terms = sorted(
                _mix(
                    int(bond.aromatic) * 4 + bond.order,
                    invariants[bond.other(atom.index)],
                )
                for bond in mol.bonds_of(atom.index)
            )
            fresh = _mix(invariants[atom.index], *neighbour_terms)
            updated.append(fresh)
            bits |= 1 << (fresh % n_bits)
        invariants = updated
    return Fingerprint(bits, n_bits)


def bulk_tanimoto(query: Fingerprint,
                  library: list[Fingerprint]) -> list[float]:
    """Tanimoto of *query* against every fingerprint in *library*."""
    return [tanimoto(query, other) for other in library]
