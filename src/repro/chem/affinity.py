"""Binding-affinity records: the ligand-side payload of DrugTree.

A :class:`BindingRecord` states how strongly one ligand binds one protein,
in the units activity databases actually report (Ki/Kd/IC50/EC50 in nM,
µM, ...). Everything downstream works in pAffinity (``9 - log10(nM)``,
i.e. pKi-style) so that larger is stronger and values are comparable
across measurement types.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import ChemError


class ActivityType(enum.Enum):
    """What kind of measurement produced the affinity value."""

    KI = "Ki"
    KD = "Kd"
    IC50 = "IC50"
    EC50 = "EC50"


#: Multipliers to nanomolar.
_UNIT_TO_NM: dict[str, float] = {
    "pM": 1e-3,
    "nM": 1.0,
    "uM": 1e3,
    "µM": 1e3,
    "mM": 1e6,
    "M": 1e9,
}


def to_nanomolar(value: float, unit: str) -> float:
    """Convert an affinity *value* in *unit* to nanomolar."""
    if value <= 0:
        raise ChemError(f"affinity must be positive, got {value}")
    try:
        return value * _UNIT_TO_NM[unit]
    except KeyError:
        known = ", ".join(sorted(_UNIT_TO_NM))
        raise ChemError(f"unknown unit {unit!r} (known: {known})") from None


def p_affinity(nanomolar: float) -> float:
    """pAffinity = 9 - log10(value in nM); 1 nM → 9.0, 1 µM → 6.0."""
    if nanomolar <= 0:
        raise ChemError("affinity must be positive")
    return 9.0 - math.log10(nanomolar)


@dataclass(frozen=True)
class BindingRecord:
    """One measured interaction between a ligand and a protein.

    Parameters
    ----------
    ligand_id:
        Identifier of the compound (matches the ligand tables).
    protein_id:
        Identifier of the protein (matches a tree leaf / PDB entry).
    activity_type:
        The measurement kind (Ki, Kd, IC50, EC50).
    value_nm:
        The measured value, already normalised to nanomolar.
    assay_id:
        Identifier of the originating assay, for provenance.
    source:
        Name of the data source the record came from.
    """

    ligand_id: str
    protein_id: str
    activity_type: ActivityType
    value_nm: float
    assay_id: str = field(default="", compare=False)
    source: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.ligand_id or not self.protein_id:
            raise ChemError("binding record needs ligand and protein ids")
        if self.value_nm <= 0:
            raise ChemError(
                f"affinity must be positive, got {self.value_nm} nM"
            )

    @classmethod
    def from_measurement(cls, ligand_id: str, protein_id: str,
                         activity_type: ActivityType,
                         value: float, unit: str,
                         assay_id: str = "",
                         source: str = "") -> "BindingRecord":
        """Build a record from a raw (value, unit) measurement."""
        return cls(ligand_id, protein_id, activity_type,
                   to_nanomolar(value, unit), assay_id, source)

    @property
    def p_affinity(self) -> float:
        """pKi/pKd-style affinity; larger means stronger binding."""
        return p_affinity(self.value_nm)

    @property
    def is_potent(self) -> bool:
        """Sub-micromolar binding (the usual hit threshold)."""
        return self.value_nm < 1000.0

    def stronger_than(self, other: "BindingRecord") -> bool:
        """Lower concentration = stronger binding."""
        return self.value_nm < other.value_nm


def aggregate_p_affinity(records: list[BindingRecord]) -> dict[str, float]:
    """Summary statistics over a set of binding records.

    Returns count / mean / min / max of pAffinity plus the fraction of
    potent (sub-µM) records; the same statistics the clade materialized
    views maintain.
    """
    if not records:
        return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "potent_fraction": 0.0}
    values = [record.p_affinity for record in records]
    potent = sum(record.is_potent for record in records)
    return {
        "count": float(len(records)),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "potent_fraction": potent / len(records),
    }
