"""Cheminformatics substrate: molecules, descriptors, fingerprints.

Implements the ligand side of DrugTree: a mini SMILES toolkit, the
descriptors ligand databases expose, similarity fingerprints, binding
affinity records, and the random library generator used in place of
proprietary screening collections.
"""

from repro.chem.affinity import (
    ActivityType,
    BindingRecord,
    aggregate_p_affinity,
    p_affinity,
    to_nanomolar,
)
from repro.chem.descriptors import (
    DescriptorSet,
    compute_descriptors,
    estimate_logp,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    rotatable_bonds,
    topological_polar_surface_area,
)
from repro.chem.fingerprint import (
    Fingerprint,
    bulk_tanimoto,
    circular_fingerprint,
    dice,
    tanimoto,
)
from repro.chem.generator import (
    Ligand,
    Recipe,
    build_ligand,
    generate_library,
    generate_ligand,
    mutate_recipe,
    random_recipe,
)
from repro.chem.mol import Atom, Bond, Molecule
from repro.chem.search import FingerprintIndex
from repro.chem.smiles import parse_smiles, write_smiles
from repro.chem.substructure import (
    SubstructurePattern,
    filter_library,
    has_substructure,
)

__all__ = [
    "ActivityType",
    "Atom",
    "BindingRecord",
    "Bond",
    "DescriptorSet",
    "Fingerprint",
    "FingerprintIndex",
    "Ligand",
    "Molecule",
    "Recipe",
    "SubstructurePattern",
    "aggregate_p_affinity",
    "build_ligand",
    "bulk_tanimoto",
    "circular_fingerprint",
    "compute_descriptors",
    "dice",
    "estimate_logp",
    "generate_library",
    "filter_library",
    "generate_ligand",
    "has_substructure",
    "hydrogen_bond_acceptors",
    "hydrogen_bond_donors",
    "mutate_recipe",
    "p_affinity",
    "parse_smiles",
    "random_recipe",
    "rotatable_bonds",
    "tanimoto",
    "to_nanomolar",
    "topological_polar_surface_area",
    "write_smiles",
]
