"""Cardinality estimation from table statistics.

Classic System-R style estimation: per-predicate selectivities from
histograms / distinct counts multiplied under an independence
assumption, and equi-join cardinality via ``|L| * |R| / max(ndv)``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.query.ast import Comparison
from repro.storage.statistics import TableStatistics

#: Selectivity assumed when nothing better is known.
DEFAULT_SELECTIVITY = 0.33
#: Floor preventing zero estimates from wiping out join products.
MIN_ROWS = 0.5
#: Last-resort guess when neither statistics nor a live table exist.
FALLBACK_ROWS = 1000.0


class CardinalityEstimator:
    """Estimates row counts for scans and joins of the overlay tables.

    When a table has no collected statistics the estimator falls back
    to the live ``Table`` row count (if *tables* was provided) rather
    than a fixed guess, bumps the ``stats.missing`` counter, and
    records the table in :attr:`blind_tables` so EXPLAIN can flag the
    estimate as made blind.
    """

    def __init__(self, statistics: dict[str, TableStatistics],
                 tables: Optional[Mapping[str, object]] = None,
                 metrics=None) -> None:
        self._stats = statistics
        self._tables = tables or {}
        self._metrics = metrics
        #: Tables priced without statistics during this estimator's life.
        self.blind_tables: set[str] = set()

    def _record_blind(self, table: str) -> None:
        if table in self.blind_tables:
            return  # planning re-prices the same scan many times
        self.blind_tables.add(table)
        metrics = self._metrics
        if metrics is None:
            from repro.obs import get_metrics
            metrics = get_metrics()
        metrics.counter("stats.missing").inc()

    def table_rows(self, table: str) -> float:
        stats = self._stats.get(table)
        if stats is not None:
            return float(stats.row_count)
        self._record_blind(table)
        live = self._tables.get(table)
        if live is not None:
            return float(max(live.row_count, 1))
        return FALLBACK_ROWS

    def predicate_selectivity(self, table: str,
                              predicate: Comparison) -> float:
        stats = self._stats.get(table)
        if stats is None or predicate.column not in stats.columns:
            return DEFAULT_SELECTIVITY
        column = stats.columns[predicate.column]
        if predicate.op == "=":
            return min(1.0, column.equality_selectivity(predicate.value))
        if predicate.op == "!=":
            return max(
                0.0, 1.0 - column.equality_selectivity(predicate.value)
            )
        if predicate.op == "in":
            total = sum(
                column.equality_selectivity(value)
                for value in predicate.value
            )
            return min(1.0, total)
        if predicate.op in ("<", "<="):
            return column.range_selectivity(
                low=None, high=predicate.value,
                include_high=predicate.op == "<=",
            )
        # ">" or ">="
        return column.range_selectivity(
            low=predicate.value, high=None,
            include_low=predicate.op == ">=",
        )

    def scan_rows(self, table: str,
                  predicates: tuple[Comparison, ...]) -> float:
        """Estimated output of scanning *table* under *predicates*.

        Range bounds on the same column are combined into one joint
        band before the independence multiplication — multiplying
        ``x >= 5`` and ``x < 6`` separately would square-count the
        column's selectivity (the classic estimator mistake, and the
        dominant error for interval-labeling subtree predicates, which
        always arrive as a bound pair).
        """
        rows = self.table_rows(table)
        bands: dict[str, list[Comparison]] = {}
        for predicate in predicates:
            if predicate.op in ("<", "<=", ">", ">="):
                bands.setdefault(predicate.column, []).append(predicate)
            else:
                rows *= self.predicate_selectivity(table, predicate)
        for column, bounds in bands.items():
            rows *= self._band_selectivity(table, column, bounds)
        return max(rows, MIN_ROWS)

    def _band_selectivity(self, table: str, column: str,
                          bounds: list[Comparison]) -> float:
        if len(bounds) == 1:
            return self.predicate_selectivity(table, bounds[0])
        stats = self._stats.get(table)
        if stats is None or column not in stats.columns:
            return DEFAULT_SELECTIVITY
        low = high = None
        include_low = include_high = True
        for bound in bounds:
            if bound.op in (">", ">="):
                if low is None or bound.value > low:
                    low = bound.value
                    include_low = bound.op == ">="
            else:
                if high is None or bound.value < high:
                    high = bound.value
                    include_high = bound.op == "<="
        return stats.columns[column].range_selectivity(
            low=low, high=high,
            include_low=include_low, include_high=include_high,
        )

    def join_rows(self, left_rows: float, right_rows: float,
                  left_table: str, right_table: str, key: str) -> float:
        """Equi-join estimate via the containment assumption."""
        ndv_left = self._distinct(left_table, key)
        ndv_right = self._distinct(right_table, key)
        denominator = max(ndv_left, ndv_right, 1.0)
        return max(left_rows * right_rows / denominator, MIN_ROWS)

    def _distinct(self, table: str, column: str) -> float:
        stats = self._stats.get(table)
        if stats is None or column not in stats.columns:
            return 1.0
        return float(max(stats.columns[column].distinct_count, 1))
