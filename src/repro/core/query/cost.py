"""Cost model for plan comparison.

Unit-free abstract costs, calibrated so that the relative ordering of
plans matches observed executor behaviour: sequential row visits cost 1,
index probes cost a small constant plus per-match work, hash joins pay
build+probe, sorts pay ``n log n``. Only *relative* cost matters — the
planner uses these numbers solely to rank alternatives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SEQ_ROW_COST = 1.0
INDEX_PROBE_COST = 4.0
INDEX_MATCH_COST = 2.0  # random access: dearer than sequential
FILTER_ROW_COST = 0.25
HASH_BUILD_ROW_COST = 1.2
HASH_PROBE_ROW_COST = 0.9
NESTED_LOOP_PAIR_COST = 0.4
SORT_ROW_FACTOR = 0.8
AGGREGATE_ROW_COST = 0.5
TOPK_ROW_COST = 0.4

# Vectorized execution prices the same work differently: a fixed setup
# charge (lowering, predicate compilation, ColumnStore access) that a
# handful of index-probe matches can never amortize, then a much lower
# per-row charge plus a per-batch overhead. The crossover between
# ``seq_scan_cost`` and ``vec_seq_scan_cost`` lands in the
# few-dozen-to-few-hundred-row band, which is exactly the adaptive
# policy we want: point lookups stay on the row engine, scans and
# aggregates go columnar.
VEC_SETUP_COST = 48.0
VEC_SCAN_ROW_COST = 0.12
VEC_FILTER_ROW_COST = 0.04
VEC_AGG_ROW_COST = 0.12
VEC_INDEX_MATCH_COST = 1.0
VEC_BATCH_OVERHEAD = 5.0
#: Fused scan->filter->project/aggregate pipelines skip the
#: intermediate Batch, so their per-row charge undercuts the plain
#: vectorized scan.
FUSED_SCAN_ROW_COST = 0.09

#: Bounds for the statistics-driven adaptive batch size.
MIN_VEC_BATCH = 128
MAX_VEC_BATCH = 8192


@dataclass(frozen=True)
class Cost:
    """Total abstract cost with its dominant components, for EXPLAIN."""

    total: float
    detail: str = ""

    def __add__(self, other: "Cost") -> "Cost":
        detail = "; ".join(part for part in (self.detail, other.detail)
                           if part)
        return Cost(self.total + other.total, detail)

    def __lt__(self, other: "Cost") -> bool:
        return self.total < other.total


def seq_scan_cost(table_rows: float, residual_predicates: int) -> Cost:
    total = table_rows * (SEQ_ROW_COST
                          + FILTER_ROW_COST * residual_predicates)
    return Cost(total, f"seqscan {table_rows:.0f} rows")


def index_eq_cost(matching_rows: float, residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"index probe ~{matching_rows:.0f} matches")


def index_range_cost(matching_rows: float,
                     residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"index range ~{matching_rows:.0f} matches")


def key_set_cost(key_count: float, matching_rows: float,
                 residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST * max(math.log2(key_count + 1), 1.0)
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"key-set scan ~{matching_rows:.0f} matches")


def hash_join_cost(build_rows: float, probe_rows: float,
                   output_rows: float) -> Cost:
    total = (build_rows * HASH_BUILD_ROW_COST
             + probe_rows * HASH_PROBE_ROW_COST
             + output_rows * 0.1)
    return Cost(total, f"hash join {build_rows:.0f}x{probe_rows:.0f}")


def nested_loop_cost(outer_rows: float, inner_scan_cost: float) -> Cost:
    """Nested loop re-runs the inner scan once per outer row."""
    total = outer_rows * max(inner_scan_cost, 1.0) * NESTED_LOOP_PAIR_COST
    return Cost(total, f"nested loop {outer_rows:.0f} outer rescans")


def sort_cost(rows: float) -> Cost:
    effective = max(rows, 2.0)
    return Cost(effective * math.log2(effective) * SORT_ROW_FACTOR,
                f"sort {rows:.0f} rows")


def topk_cost(rows: float, k: int) -> Cost:
    effective_k = max(k, 2)
    return Cost(rows * TOPK_ROW_COST * math.log2(effective_k),
                f"top-{k} over {rows:.0f} rows")


def aggregate_cost(rows: float) -> Cost:
    return Cost(rows * AGGREGATE_ROW_COST, f"aggregate {rows:.0f} rows")


def batches_for(rows: float, batch_size: int) -> float:
    return max(1.0, math.ceil(max(rows, 0.0) / max(batch_size, 1)))


def vec_seq_scan_cost(table_rows: float, residual_predicates: int,
                      batch_size: int, fused: bool = False) -> Cost:
    per_row = FUSED_SCAN_ROW_COST if fused else VEC_SCAN_ROW_COST
    total = (table_rows * (per_row
                           + VEC_FILTER_ROW_COST * residual_predicates)
             + batches_for(table_rows, batch_size) * VEC_BATCH_OVERHEAD)
    label = "fused scan" if fused else "vec seqscan"
    return Cost(total, f"{label} {table_rows:.0f} rows")


def vec_index_cost(matching_rows: float, residual_predicates: int,
                   batch_size: int) -> Cost:
    total = (INDEX_PROBE_COST
             + matching_rows * (VEC_INDEX_MATCH_COST
                                + VEC_FILTER_ROW_COST * residual_predicates)
             + batches_for(matching_rows, batch_size) * VEC_BATCH_OVERHEAD)
    return Cost(total, f"vec index ~{matching_rows:.0f} matches")


def vec_aggregate_cost(rows: float, batch_size: int) -> Cost:
    total = (rows * VEC_AGG_ROW_COST
             + batches_for(rows, batch_size) * VEC_BATCH_OVERHEAD)
    return Cost(total, f"vec aggregate {rows:.0f} rows")


def adaptive_batch_size(rows: float) -> int:
    """Batch size scaled to the widest scan the plan performs.

    Small inputs keep batches small (a batch far wider than the input
    just wastes selection-vector allocation); wide scans double the
    batch up to ``MAX_VEC_BATCH`` so per-batch overhead amortizes.
    """
    size = MIN_VEC_BATCH
    while size < rows / 8 and size < MAX_VEC_BATCH:
        size *= 2
    return size
