"""Cost model for plan comparison.

Unit-free abstract costs, calibrated so that the relative ordering of
plans matches observed executor behaviour: sequential row visits cost 1,
index probes cost a small constant plus per-match work, hash joins pay
build+probe, sorts pay ``n log n``. Only *relative* cost matters — the
planner uses these numbers solely to rank alternatives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SEQ_ROW_COST = 1.0
INDEX_PROBE_COST = 4.0
INDEX_MATCH_COST = 2.0  # random access: dearer than sequential
FILTER_ROW_COST = 0.25
HASH_BUILD_ROW_COST = 1.2
HASH_PROBE_ROW_COST = 0.9
NESTED_LOOP_PAIR_COST = 0.4
SORT_ROW_FACTOR = 0.8
AGGREGATE_ROW_COST = 0.5
TOPK_ROW_COST = 0.4


@dataclass(frozen=True)
class Cost:
    """Total abstract cost with its dominant components, for EXPLAIN."""

    total: float
    detail: str = ""

    def __add__(self, other: "Cost") -> "Cost":
        detail = "; ".join(part for part in (self.detail, other.detail)
                           if part)
        return Cost(self.total + other.total, detail)

    def __lt__(self, other: "Cost") -> bool:
        return self.total < other.total


def seq_scan_cost(table_rows: float, residual_predicates: int) -> Cost:
    total = table_rows * (SEQ_ROW_COST
                          + FILTER_ROW_COST * residual_predicates)
    return Cost(total, f"seqscan {table_rows:.0f} rows")


def index_eq_cost(matching_rows: float, residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"index probe ~{matching_rows:.0f} matches")


def index_range_cost(matching_rows: float,
                     residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"index range ~{matching_rows:.0f} matches")


def key_set_cost(key_count: float, matching_rows: float,
                 residual_predicates: int) -> Cost:
    total = (INDEX_PROBE_COST * max(math.log2(key_count + 1), 1.0)
             + matching_rows * (INDEX_MATCH_COST
                                + FILTER_ROW_COST * residual_predicates))
    return Cost(total, f"key-set scan ~{matching_rows:.0f} matches")


def hash_join_cost(build_rows: float, probe_rows: float,
                   output_rows: float) -> Cost:
    total = (build_rows * HASH_BUILD_ROW_COST
             + probe_rows * HASH_PROBE_ROW_COST
             + output_rows * 0.1)
    return Cost(total, f"hash join {build_rows:.0f}x{probe_rows:.0f}")


def nested_loop_cost(outer_rows: float, inner_scan_cost: float) -> Cost:
    """Nested loop re-runs the inner scan once per outer row."""
    total = outer_rows * max(inner_scan_cost, 1.0) * NESTED_LOOP_PAIR_COST
    return Cost(total, f"nested loop {outer_rows:.0f} outer rescans")


def sort_cost(rows: float) -> Cost:
    effective = max(rows, 2.0)
    return Cost(effective * math.log2(effective) * SORT_ROW_FACTOR,
                f"sort {rows:.0f} rows")


def topk_cost(rows: float, k: int) -> Cost:
    effective_k = max(k, 2)
    return Cost(rows * TOPK_ROW_COST * math.log2(effective_k),
                f"top-{k} over {rows:.0f} rows")


def aggregate_cost(rows: float) -> Cost:
    return Cost(rows * AGGREGATE_ROW_COST, f"aggregate {rows:.0f} rows")
