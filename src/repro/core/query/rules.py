"""Query normalisation rewrite rules.

Applied before planning:

* duplicate-predicate elimination;
* redundant-bound elimination (``x > 3 AND x > 5`` → ``x > 5``) via the
  pairwise implication test on :class:`Comparison`;
* contradiction detection (``x = 'a' AND x = 'b'``, or an empty numeric
  band) — a contradictory query is answered with zero rows without
  touching any table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.query.ast import Comparison, Query


@dataclass(frozen=True)
class NormalizedQuery:
    """Result of normalisation: the rewritten query and a verdict."""

    query: Query
    contradiction: bool
    removed_predicates: int


def normalize(query: Query) -> NormalizedQuery:
    """Apply all rewrite rules to *query*."""
    predicates = list(dict.fromkeys(query.predicates))  # dedupe, keep order
    predicates = _drop_implied(predicates)
    removed = len(query.predicates) - len(predicates)
    if _contradictory(predicates):
        return NormalizedQuery(
            replace(query, predicates=tuple(predicates)),
            contradiction=True,
            removed_predicates=removed,
        )
    return NormalizedQuery(
        replace(query, predicates=tuple(predicates)),
        contradiction=False,
        removed_predicates=removed,
    )


def _drop_implied(predicates: list[Comparison]) -> list[Comparison]:
    """Remove predicates implied by a strictly stronger sibling."""
    kept: list[Comparison] = []
    for candidate in predicates:
        dominated = any(
            other is not candidate and other.implies(candidate)
            and not (candidate.implies(other) and _earlier(
                predicates, candidate, other))
            for other in predicates
        )
        if not dominated:
            kept.append(candidate)
    return kept


def _earlier(predicates: list[Comparison], first: Comparison,
             second: Comparison) -> bool:
    """Tie-break for mutually implying predicates: keep the earlier one."""
    return predicates.index(first) < predicates.index(second)


def _contradictory(predicates: list[Comparison]) -> bool:
    by_column: dict[str, list[Comparison]] = {}
    for predicate in predicates:
        by_column.setdefault(predicate.column, []).append(predicate)
    for column_preds in by_column.values():
        if column_contradiction(column_preds):
            return True
    return False


def column_contradiction(predicates: list[Comparison]) -> bool:
    """True if AND-ing *predicates* (all on one column) is unsatisfiable.

    Public so the semantic analyzer (:mod:`repro.analysis.dtql`) can
    probe predicate pairs with exactly the rewriter's decision
    procedure — the analyzer's "provably empty" verdict and the
    planner's empty-plan rewrite can never disagree.
    """
    equalities = [p.value for p in predicates if p.op == "="]
    if len(set(map(repr, equalities))) > 1:
        return True
    in_sets = [set(p.value) for p in predicates if p.op == "in"]
    if in_sets:
        common = set.intersection(*in_sets)
        if not common:
            return True
        if equalities and equalities[0] not in common:
            return True
    lower: tuple[float, bool] | None = None  # (bound, inclusive)
    upper: tuple[float, bool] | None = None
    for predicate in predicates:
        value = predicate.value
        if predicate.op in (">", ">="):
            inclusive = predicate.op == ">="
            if lower is None or (value, not inclusive) > (lower[0],
                                                          not lower[1]):
                lower = (value, inclusive)
        elif predicate.op in ("<", "<="):
            inclusive = predicate.op == "<="
            if upper is None or (value, inclusive) < (upper[0], upper[1]):
                upper = (value, inclusive)
    if lower is not None and upper is not None:
        try:
            if lower[0] > upper[0]:
                return True
            if lower[0] == upper[0] and not (lower[1] and upper[1]):
                return True
        except TypeError:
            return False
    if equalities:
        for predicate in predicates:
            if predicate.op in ("<", "<=", ">", ">="):
                try:
                    if not predicate.matches(equalities[0]):
                        return True
                except TypeError:
                    return False
            if predicate.op == "!=" and predicate.value == equalities[0]:
                return True
    return False
