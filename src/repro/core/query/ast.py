"""Query model (AST) for DrugTree queries.

Queries are conjunctive select/join/aggregate queries over the three
overlay tables, extended with the two domain predicates DrugTree adds:

* ``SubtreeFilter`` — restrict to proteins under a named tree node;
* ``SimilarityFilter`` — restrict to ligands Tanimoto-similar to a probe
  structure.

The DTQL text language (:mod:`repro.core.query.parser`) is sugar over
these dataclasses; programmatic callers can build them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.overlay import (
    BINDINGS_TABLE,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
    bindings_schema,
    ligands_schema,
    proteins_schema,
)
from repro.errors import QueryError

#: Comparison operators supported in predicates.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "in")

#: Aggregate functions.
AGGREGATE_FUNCS = ("count", "sum", "mean", "min", "max")

#: Which overlay table owns each column. Shared key columns live in the
#: bindings fact table; the planner rewrites table-qualified references.
_SCHEMAS = {
    PROTEINS_TABLE: proteins_schema(),
    LIGANDS_TABLE: ligands_schema(),
    BINDINGS_TABLE: bindings_schema(),
}

COLUMN_OWNERS: dict[str, tuple[str, ...]] = {}
for _table, _schema in _SCHEMAS.items():
    for _column in _schema.column_names:
        COLUMN_OWNERS.setdefault(_column, ())
        COLUMN_OWNERS[_column] = COLUMN_OWNERS[_column] + (_table,)

#: Detail columns that are *not* materialized in the overlay: selecting
#: one makes the executor fetch the backing record from the federation
#: at run time (through the engine's fetch scheduler). Maps the column
#: to ``(record kind, record attribute, owner table)``; all current
#: remote details are keyed by ``protein_id``.
REMOTE_DETAIL_COLUMNS: dict[str, tuple[str, str, str]] = {
    "method": ("protein", "method", PROTEINS_TABLE),
    "go_terms": ("annotation", "go_terms", PROTEINS_TABLE),
    "keywords": ("annotation", "keywords", PROTEINS_TABLE),
}


@dataclass(frozen=True)
class Comparison:
    """``column <op> value`` over one overlay column."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(
                f"unknown operator {self.op!r} (known: {COMPARISON_OPS})"
            )
        if self.column not in COLUMN_OWNERS:
            raise QueryError(f"unknown column {self.column!r}")
        if self.op == "in" and not isinstance(self.value, (tuple, list,
                                                           set, frozenset)):
            raise QueryError("'in' needs a collection of values")

    def matches(self, value: Any) -> bool:
        """Evaluate against one concrete value (NULL never matches)."""
        if value is None:
            return False
        if self.op == "=":
            return value == self.value
        if self.op == "!=":
            return value != self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        return value in self.value  # "in"

    def implies(self, other: "Comparison") -> bool:
        """True if satisfying self guarantees satisfying *other*.

        Used by the semantic cache's subsumption check. Conservative:
        returns False whenever implication cannot be proven.
        """
        if self.column != other.column:
            return False
        if self == other:
            return True
        try:
            if other.op == "in" and self.op == "=":
                return self.value in other.value
            if self.op == "in" and other.op == "in":
                return set(self.value) <= set(other.value)
            if self.op == "=":
                return other.matches(self.value)
            if self.op in ("<", "<=") and other.op in ("<", "<="):
                if self.op == "<" and other.op == "<=":
                    return self.value <= other.value
                return self.value <= other.value if self.op == other.op \
                    else self.value < other.value
            if self.op in (">", ">=") and other.op in (">", ">="):
                if self.op == ">" and other.op == ">=":
                    return self.value >= other.value
                return self.value >= other.value if self.op == other.op \
                    else self.value > other.value
        except TypeError:
            return False
        return False

    def __str__(self) -> str:
        if self.op == "in":
            inner = ", ".join(repr(v) for v in self.value)
            return f"{self.column} IN ({inner})"
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class SubtreeFilter:
    """Restrict results to proteins under the named tree node."""

    node_name: str

    def __post_init__(self) -> None:
        if not self.node_name:
            raise QueryError("subtree filter needs a node name")

    def __str__(self) -> str:
        return f"IN SUBTREE {self.node_name!r}"


@dataclass(frozen=True)
class SimilarityFilter:
    """Restrict results to ligands similar to a probe structure."""

    smiles: str
    threshold: float

    def __post_init__(self) -> None:
        if not self.smiles:
            raise QueryError("similarity filter needs a SMILES probe")
        if not 0.0 < self.threshold <= 1.0:
            raise QueryError("similarity threshold must be in (0, 1]")

    def __str__(self) -> str:
        return f"SIMILAR TO {self.smiles!r} >= {self.threshold}"


@dataclass(frozen=True)
class SubstructureFilter:
    """Restrict results to ligands containing a fragment structure."""

    smiles: str

    def __post_init__(self) -> None:
        if not self.smiles:
            raise QueryError("substructure filter needs a SMILES fragment")

    def __str__(self) -> str:
        return f"CONTAINING {self.smiles!r}"


@dataclass(frozen=True)
class AggregateSpec:
    """``func(column)`` in the select list."""

    func: str
    column: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise QueryError(
                f"unknown aggregate {self.func!r} (known: {AGGREGATE_FUNCS})"
            )
        if self.column != "*" and self.column not in COLUMN_OWNERS:
            raise QueryError(f"unknown column {self.column!r}")
        if self.column == "*" and self.func != "count":
            raise QueryError("only count(*) may aggregate '*'")

    @property
    def output_name(self) -> str:
        return f"{self.func}_{self.column}".replace("*", "all")

    def __str__(self) -> str:
        return f"{self.func}({self.column})"


@dataclass(frozen=True)
class HavingCondition:
    """``output <op> value`` over an aggregate output or the group key.

    Shares the comparison semantics of :class:`Comparison` but targets
    result-row columns (``count_all``, ``mean_p_affinity``, ...), so it
    skips the overlay-column validation.
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(
                f"unknown operator {self.op!r} (known: {COMPARISON_OPS})"
            )
        if not self.column:
            raise QueryError("HAVING needs a column")
        if self.op == "in" and not isinstance(self.value, (tuple, list,
                                                           set, frozenset)):
            raise QueryError("'in' needs a collection of values")

    def matches(self, value: Any) -> bool:
        return Comparison.matches(self, value)  # same NULL/op semantics

    def __str__(self) -> str:
        if self.op == "in":
            inner = ", ".join(repr(v) for v in self.value)
            return f"{self.column} IN ({inner})"
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Query:
    """One DrugTree query.

    Either ``select`` (projection) or ``aggregates`` must be set; when
    both are empty the query selects every column of the joined tables.
    """

    select: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    predicates: tuple[Comparison, ...] = ()
    subtree: SubtreeFilter | None = None
    similar: SimilarityFilter | None = None
    substructure: SubstructureFilter | None = None
    group_by: str | None = None
    having: tuple[HavingCondition, ...] = ()
    order_by: OrderBy | None = None
    limit: int | None = None
    #: Tables named explicitly in FROM; inference adds whatever else the
    #: referenced columns require.
    from_tables: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        known = (BINDINGS_TABLE, PROTEINS_TABLE, LIGANDS_TABLE)
        for table in self.from_tables:
            if table not in known:
                raise QueryError(f"unknown table {table!r}")
        if self.aggregates and self.select:
            extra = set(self.select) - ({self.group_by} if self.group_by
                                        else set())
            if extra:
                raise QueryError(
                    "plain columns alongside aggregates must be the "
                    f"group-by column; got {sorted(extra)}"
                )
        if self.group_by is not None and not self.aggregates:
            raise QueryError("group_by requires aggregates")
        if self.group_by is not None and self.group_by not in COLUMN_OWNERS:
            raise QueryError(f"unknown group-by column {self.group_by!r}")
        if self.having and not self.aggregates:
            raise QueryError("HAVING requires aggregates")
        if self.having:
            visible = {agg.output_name for agg in self.aggregates}
            if self.group_by:
                visible.add(self.group_by)
            for condition in self.having:
                if condition.column not in visible:
                    raise QueryError(
                        f"HAVING references {condition.column!r}, not an "
                        f"output of this query (outputs: "
                        f"{sorted(visible)})"
                    )
        if self.limit is not None and self.limit < 1:
            raise QueryError("limit must be positive")
        for column in self.select:
            if (column not in COLUMN_OWNERS
                    and column not in REMOTE_DETAIL_COLUMNS):
                raise QueryError(f"unknown column {column!r}")
        if self.order_by is not None:
            valid = set(self.select) | {
                agg.output_name for agg in self.aggregates
            } | set(COLUMN_OWNERS)
            if self.order_by.column not in valid:
                raise QueryError(
                    f"unknown order-by column {self.order_by.column!r}"
                )

    # -- table resolution --------------------------------------------------

    def referenced_columns(self) -> set[str]:
        columns = set(self.select)
        columns.update(p.column for p in self.predicates)
        if self.group_by:
            columns.add(self.group_by)
        for aggregate in self.aggregates:
            if aggregate.column != "*":
                columns.add(aggregate.column)
        if (self.order_by is not None
                and self.order_by.column in COLUMN_OWNERS):
            columns.add(self.order_by.column)
        return columns

    def tables(self) -> tuple[str, ...]:
        """Overlay tables this query touches, in canonical join order.

        Shared key columns (``ligand_id``/``protein_id``) do not force a
        table by themselves; non-key columns do. The subtree filter
        touches ``leaf_pre`` (bindings or proteins); the similarity
        filter touches ``ligands``.
        """
        needed: set[str] = set(self.from_tables)
        for column in self.referenced_columns():
            owners = COLUMN_OWNERS.get(column)
            if owners is None:
                # Remote detail columns anchor to their owner table so
                # the join produces the key the runtime fetch needs.
                needed.add(REMOTE_DETAIL_COLUMNS[column][2])
                continue
            if len(owners) == 1:
                needed.add(owners[0])
        if self.similar is not None or self.substructure is not None:
            needed.add(LIGANDS_TABLE)
        if (self.subtree is not None
                and not needed & {PROTEINS_TABLE, BINDINGS_TABLE}):
            needed.add(BINDINGS_TABLE)
        if not needed:
            needed.add(BINDINGS_TABLE)
        # A referenced shared-key column must still be readable: if none
        # of its owners made it into the set, pull one in.
        for column in self.referenced_columns():
            owners = COLUMN_OWNERS.get(column)
            if owners is None:
                continue  # remote detail: owner table already added
            if not set(owners) & needed:
                needed.add(BINDINGS_TABLE if BINDINGS_TABLE in owners
                           else owners[0])
        # A join between proteins and ligands must route through the
        # bindings fact table.
        if PROTEINS_TABLE in needed and LIGANDS_TABLE in needed:
            needed.add(BINDINGS_TABLE)
        order = (BINDINGS_TABLE, PROTEINS_TABLE, LIGANDS_TABLE)
        return tuple(t for t in order if t in needed)

    def remote_columns(self) -> tuple[str, ...]:
        """Selected columns that require a run-time federation fetch."""
        return tuple(c for c in self.select
                     if c in REMOTE_DETAIL_COLUMNS)

    def without_order_and_limit(self) -> "Query":
        return replace(self, order_by=None, limit=None)

    def signature(self) -> str:
        """Canonical text form (used as the semantic-cache key base)."""
        parts = [
            "SELECT",
            ", ".join(
                [*map(str, self.aggregates), *self.select]
            ) or "*",
            "FROM", ", ".join(self.tables()),
        ]
        if self.predicates:
            preds = sorted(str(p) for p in self.predicates)
            parts.extend(["WHERE", " AND ".join(preds)])
        if self.subtree:
            parts.append(str(self.subtree))
        if self.similar:
            parts.append(str(self.similar))
        if self.substructure:
            parts.append(str(self.substructure))
        if self.group_by:
            parts.extend(["GROUP BY", self.group_by])
        if self.having:
            conditions = sorted(str(c) for c in self.having)
            parts.extend(["HAVING", " AND ".join(conditions)])
        if self.order_by:
            parts.extend(["ORDER BY", str(self.order_by)])
        if self.limit is not None:
            parts.extend(["LIMIT", str(self.limit)])
        return " ".join(parts)

    def __str__(self) -> str:
        return self.signature()
