"""Logical plan nodes.

The planner lowers a normalised :class:`~repro.core.query.ast.Query`
into this small relational algebra, then converts it to physical
operators. Keeping the logical layer explicit makes plans printable
(``EXPLAIN``) and lets the optimizer tests assert on plan *shape*
independently of execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.query.ast import (
    AggregateSpec,
    Comparison,
    HavingCondition,
    OrderBy,
)


class LogicalNode:
    """Base class; concrete nodes are dataclasses below."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        lines.extend(
            child.explain(indent + 1) for child in self.children()
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class LogicalScan(LogicalNode):
    """Read one table through a chosen access path."""

    table: str
    access: str  # "seq" | "index_eq" | "index_range" | "key_set"
    access_column: str | None = None
    eq_value: Any = None
    range_low: Any = None
    range_high: Any = None
    include_low: bool = True
    include_high: bool = True
    key_set: frozenset | None = None
    residual: tuple[Comparison, ...] = field(default_factory=tuple)
    estimated_rows: float = 0.0

    def describe(self) -> str:
        if self.access == "seq":
            path = "SeqScan"
        elif self.access == "index_eq":
            path = f"IndexEqScan({self.access_column}={self.eq_value!r})"
        elif self.access == "index_range":
            low = "" if self.range_low is None else repr(self.range_low)
            high = "" if self.range_high is None else repr(self.range_high)
            lo_b = "[" if self.include_low else "("
            hi_b = "]" if self.include_high else ")"
            path = (
                f"IndexRangeScan({self.access_column} in "
                f"{lo_b}{low}, {high}{hi_b})"
            )
        else:
            size = len(self.key_set or ())
            path = f"KeySetScan({self.access_column} in {size} keys)"
        residual = ""
        if self.residual:
            residual = " filter " + " AND ".join(map(str, self.residual))
        return (
            f"{path} on {self.table}{residual} "
            f"(~{self.estimated_rows:.0f} rows)"
        )


@dataclass(frozen=True)
class LogicalJoin(LogicalNode):
    """Equi-join of two subplans on a shared key column."""

    left: LogicalNode
    right: LogicalNode
    key: str
    method: str = "hash"  # "hash" | "nested_loop"
    estimated_rows: float = 0.0

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return (
            f"{'HashJoin' if self.method == 'hash' else 'NestedLoopJoin'}"
            f"(on {self.key}) (~{self.estimated_rows:.0f} rows)"
        )


@dataclass(frozen=True)
class LogicalAggregate(LogicalNode):
    """Grouped or scalar aggregation."""

    child: LogicalNode
    aggregates: tuple[AggregateSpec, ...]
    group_by: str | None = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        aggs = ", ".join(map(str, self.aggregates))
        group = f" group by {self.group_by}" if self.group_by else ""
        return f"Aggregate({aggs}){group}"


@dataclass(frozen=True)
class LogicalHaving(LogicalNode):
    """Post-aggregation filter over the grouped output rows."""

    child: LogicalNode
    conditions: tuple[HavingCondition, ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Having(" + " AND ".join(map(str, self.conditions)) + ")"


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    child: LogicalNode
    columns: tuple[str, ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass(frozen=True)
class LogicalOrder(LogicalNode):
    """Sort, or a bounded top-k when a limit is present."""

    child: LogicalNode
    order_by: OrderBy
    limit: int | None = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        if self.limit is not None:
            return f"TopK({self.order_by}, k={self.limit})"
        return f"Sort({self.order_by})"


@dataclass(frozen=True)
class LogicalLimit(LogicalNode):
    child: LogicalNode
    limit: int

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.limit})"


@dataclass(frozen=True)
class LogicalEmpty(LogicalNode):
    """A contradictory query: produces no rows, touches no table."""

    reason: str = "contradictory predicates"

    def describe(self) -> str:
        return f"Empty({self.reason})"


@dataclass(frozen=True)
class LogicalCladeAggregate(LogicalNode):
    """Fast path: answer a clade aggregate from the materialized stats."""

    node_name: str
    aggregates: tuple[AggregateSpec, ...]

    def describe(self) -> str:
        aggs = ", ".join(map(str, self.aggregates))
        return f"MaterializedCladeAggregate({self.node_name!r}: {aggs})"
