"""Compiled predicate closures: specialize once per plan, not per row.

``Comparison.matches`` re-dispatches on ``self.op`` for every row it
sees. A plan evaluates the same handful of predicates over thousands of
rows, so both engines compile each predicate into a closure *once* at
lowering time:

* :func:`compile_comparison` — one ``value -> bool`` closure specialized
  on the operator with the literal already bound (NULL never matches,
  exactly like ``Comparison.matches``);
* :func:`compile_residual` — one ``row -> bool`` closure over a whole
  residual list, used by the row operators in place of per-row
  ``matches`` dispatch;
* :func:`compile_columns` — the column-at-a-time form the vectorized
  scans use to shrink a selection vector against raw column buffers.

Works on any predicate shaped like ``(column, op, value)`` — both
:class:`~repro.core.query.ast.Comparison` and
:class:`~repro.core.query.ast.HavingCondition`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import QueryError

#: A compiled single-value predicate.
ValuePredicate = Callable[[Any], bool]
#: A compiled whole-row predicate.
RowPredicate = Callable[[dict[str, Any]], bool]


def compile_comparison(pred: Any) -> ValuePredicate:
    """Compile ``column <op> literal`` into one specialized closure.

    The returned closure replicates ``Comparison.matches`` bit for bit:
    ``None`` (SQL NULL) never matches, under any operator.
    """
    op = pred.op
    bound = pred.value
    if op == "=":
        return lambda value: value is not None and value == bound
    if op == "!=":
        return lambda value: value is not None and value != bound
    if op == "<":
        return lambda value: value is not None and value < bound
    if op == "<=":
        return lambda value: value is not None and value <= bound
    if op == ">":
        return lambda value: value is not None and value > bound
    if op == ">=":
        return lambda value: value is not None and value >= bound
    if op == "in":
        try:
            members = frozenset(bound)
        except TypeError:  # unhashable literals: keep the slow path
            members = tuple(bound)
        return lambda value: value is not None and value in members
    raise QueryError(f"cannot compile operator {op!r}")


def _always_true(row: dict[str, Any]) -> bool:
    return True


def compile_residual(residual: Sequence[Any]) -> RowPredicate:
    """Compile a residual predicate list into one row closure.

    The empty list compiles to a constant-true closure and a single
    predicate avoids the ``all(...)`` loop entirely — the two common
    shapes after the planner consumed the access-path predicate.
    """
    if not residual:
        return _always_true
    if len(residual) == 1:
        pred = residual[0]
        column = pred.column
        test = compile_comparison(pred)
        return lambda row: test(row.get(column))
    compiled = tuple((pred.column, compile_comparison(pred))
                     for pred in residual)
    def matches(row: dict[str, Any]) -> bool:
        for column, test in compiled:
            if not test(row.get(column)):
                return False
        return True
    return matches


def compile_columns(
    residual: Sequence[Any],
) -> tuple[tuple[str, ValuePredicate], ...]:
    """Compile a residual list to ``(column, closure)`` pairs.

    The vectorized scans apply each pair against the column's raw
    buffer, narrowing one selection vector per predicate instead of
    materializing rows.
    """
    return tuple((pred.column, compile_comparison(pred))
                 for pred in residual)
