"""The optimized query engine: plan, cache, execute, meter.

:class:`QueryEngine` is the "after" system of the poster: it wires the
planner, the semantic cache, the similarity search and the physical
operators over one :class:`~repro.core.drugtree.DrugTree`, and reports
per-query metrics (rows touched, cache outcome, wall time) that the
benchmarks aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chem.fingerprint import circular_fingerprint, tanimoto
from repro.chem.smiles import parse_smiles
from repro.core.drugtree import DrugTree
from repro.chem.substructure import SubstructurePattern, filter_library
from repro.core.query.ast import (
    REMOTE_DETAIL_COLUMNS,
    Query,
    SimilarityFilter,
    SubstructureFilter,
)
from repro.core.query.cache import SemanticCache
from repro.core.query.cards import CardinalityEstimator
from repro.core.query.logical import (
    LogicalAggregate,
    LogicalCladeAggregate,
    LogicalEmpty,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalOrder,
    LogicalProject,
    LogicalScan,
)
from repro.core.query.parser import parse_query
from repro.core.query.physical import (
    EmptyOp,
    ExecCounters,
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    IndexEqScanOp,
    IndexRangeScanOp,
    KeySetScanOp,
    LimitOp,
    NestedLoopJoinOp,
    PhysicalOp,
    ProjectOp,
    RemoteFetchOp,
    SeqScanOp,
    SortOp,
    StaticRowsOp,
    TopKOp,
)
from repro.core.query.planner import Planner, PlannerConfig, PlanReport
from repro.errors import (
    BorrowTimeoutError,
    PlanError,
    QueryError,
    SourceError,
)
from repro.obs import (
    AnalyzeReport,
    InstrumentedOp,
    OperatorStats,
    WallTimer,
    get_metrics,
    get_tracer,
)
from repro.sources.resilience import STATUS_FRESH, Deadline
from repro.storage.index import SortedIndex


@dataclass(frozen=True)
class EngineConfig:
    """All optimizer/engine feature toggles (ablation knobs)."""

    use_indexes: bool = True
    use_interval_labeling: bool = True
    use_materialized_aggregates: bool = True
    use_semantic_cache: bool = True
    #: Run the typed-catalog semantic pass (repro.analysis.dtql) on
    #: every query: reject type/name errors before any work, and answer
    #: provably-empty WHERE clauses without planning, scanning, or any
    #: source round-trip.
    use_semantic_analysis: bool = True
    use_fingerprint_prefilter: bool = True
    use_substructure_screen: bool = True
    join_strategy: str = "dp"
    join_method: str = "hash"
    cache_capacity: int = 128
    #: Rows buffered per scatter/gather batch when a query projects
    #: remote detail columns (see REMOTE_DETAIL_COLUMNS).
    remote_lookahead: int = 64
    #: ``"adaptive"`` (the default: statistics pick row or vectorized
    #: per plan — see docs/EXECUTION.md), ``"row"`` (volcano
    #: iterators), or ``"vectorized"`` (batch-at-a-time over columnar
    #: projections). Results are identical in every mode; see
    #: docs/VECTORIZED.md for the parity contract.
    execution_mode: str = "adaptive"
    #: Rows per batch in vectorized mode. Adaptive mode treats this as
    #: an upper default and sizes batches to the plan's widest scan.
    vector_batch_size: int = 1024
    #: Worker threads for morsel-parallel scans under adaptive
    #: execution; 0 means auto (one per CPU core).
    morsel_workers: int = 0

    def __post_init__(self) -> None:
        if self.execution_mode not in ("adaptive", "row", "vectorized"):
            raise QueryError(
                f"unknown execution mode {self.execution_mode!r} "
                "(known: 'adaptive', 'row', 'vectorized')"
            )
        if self.vector_batch_size < 1:
            raise QueryError("vector_batch_size must be positive")
        if self.morsel_workers < 0:
            raise QueryError("morsel_workers must be >= 0 (0 = auto)")

    def planner_config(self) -> PlannerConfig:
        return PlannerConfig(
            use_indexes=self.use_indexes,
            use_interval_labeling=self.use_interval_labeling,
            use_materialized_aggregates=self.use_materialized_aggregates,
            join_strategy=self.join_strategy,
            join_method=self.join_method,
        )


@dataclass
class QueryResult:
    """Rows plus everything the experiments need to know about the run."""

    rows: list[dict[str, Any]]
    plan: PlanReport | None = None
    #: "miss" | "exact" | "subsumed" | "stale" | "off"
    cache_outcome: str = "miss"
    counters: dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    similarity_candidates: int = 0
    substructure_candidates: int = 0
    #: Record kind -> fresh/partial/missing when the resilient fetch
    #: path ran; empty otherwise.
    resilience: dict[str, str] = field(default_factory=dict)
    #: True when any part of the answer is not fresh-and-complete
    #: (partial/missing remote details, or a stale cache serve).
    degraded: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return next(iter(self.rows[0].values()))


class QueryEngine:
    """Cost-based engine over one DrugTree."""

    def __init__(self, drugtree: DrugTree,
                 config: EngineConfig | None = None,
                 tracer=None,
                 metrics=None,
                 federation=None) -> None:
        self.drugtree = drugtree
        self.config = config or EngineConfig()
        #: Optional :class:`~repro.sources.scheduler.FetchScheduler`;
        #: required only for queries projecting remote detail columns.
        self.federation = federation
        self.planner = Planner(
            tables=drugtree.tables,
            labeling=drugtree.labeling,
            estimator=CardinalityEstimator(drugtree.statistics,
                                           tables=drugtree.tables,
                                           metrics=metrics),
            config=self.config.planner_config(),
        )
        self.cache = SemanticCache(drugtree.labeling,
                                   capacity=self.config.cache_capacity)
        drugtree.add_mutation_listener(self.cache.invalidate)
        self.queries_executed = 0
        #: Per-engine overrides; ``None`` means the process-wide default.
        self.tracer = tracer
        self.metrics = metrics
        self._analyzer = None  # built lazily; see the analyzer property
        # Per-query fetch context, consumed by _remote_fetch_op during
        # lowering (set around plan/run, cleared in a finally).
        self._fetch_deadline: Deadline | None = None
        self._fetch_statuses: dict[str, str] | None = None
        # Adaptive execution: fused kernels cached per plan shape, and
        # the last per-query engine choice (for the analyze trailer).
        from repro.core.query.fused import CompiledPlanCache
        self.plan_cache = CompiledPlanCache()
        self._last_choice = None
        # Engine choices memoized per plan shape: a point lookup must
        # not pay a full cost walk on every execute. Dropped wholesale
        # when the statistics epoch advances.
        self._choice_cache: dict = {}
        self._choice_epoch = None
        self._adaptive_helpers = None  # lazily bound (choice_key, choose_engine)

    def _obs_tracer(self):
        return self.tracer if self.tracer is not None else get_tracer()

    def _obs_metrics(self):
        return self.metrics if self.metrics is not None else get_metrics()

    @property
    def analyzer(self):
        """The engine's semantic analyzer (built on first use).

        Imported lazily: :mod:`repro.analysis` imports the query parser,
        so a module-level import here would be circular.
        """
        if self._analyzer is None:
            from repro.analysis.dtql import SemanticAnalyzer
            self._analyzer = SemanticAnalyzer()
        return self._analyzer

    # -- public API ------------------------------------------------------------

    def check(self, query: Query | str):
        """Static analysis only: the semantic report, nothing executed."""
        return self.analyzer.check(query)

    def _analyze_query(self, query: Query, text: str | None):
        """Run the pre-plan semantic pass; errors stop the query here."""
        if not self.config.use_semantic_analysis:
            return None
        report = self.analyzer.check(query, text=text)
        if report.errors:
            raise QueryError(
                "semantic analysis rejected query: "
                + "; ".join(d.render() for d in report.errors)
            )
        return report

    def _empty_rows(self, query: Query) -> list[dict[str, Any]]:
        from repro.analysis.dtql import empty_result_rows
        return empty_result_rows(query)

    def _as_deadline(self, deadline) -> Deadline | None:
        """Accept a :class:`Deadline` or a float budget in virtual
        seconds (the convenient form for mobile taps and the CLI)."""
        if deadline is None or isinstance(deadline, Deadline):
            return deadline
        clock = getattr(self.federation, "clock", None)
        if clock is None:
            raise QueryError(
                "a numeric deadline needs a federated engine "
                "(the budget is measured on the scheduler's clock)"
            )
        return Deadline(clock, float(deadline))

    def _resilience_active(self, deadline) -> bool:
        """Degrade-don't-raise applies when the caller set a deadline
        or the scheduler runs circuit breakers; plain engines keep the
        historical raise-on-fault behaviour (and zero overhead)."""
        if self.federation is None:
            return False
        return (deadline is not None
                or getattr(self.federation, "breakers", None) is not None)

    def execute(self, query: Query | str,
                deadline: Deadline | float | None = None) -> QueryResult:
        """Run a query (AST or DTQL text).

        With *deadline* (a :class:`Deadline` or a virtual-seconds
        budget), remote fetches are cancelled once the budget is gone
        and the answer degrades — per-kind statuses in
        :attr:`QueryResult.resilience` — instead of stalling. When live
        execution fails entirely, the engine serves the last known
        result from the semantic cache's stale store, flagged
        ``cache_outcome == "stale"``.
        """
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            query = parse_query(query)
        tracer = self._obs_tracer()
        metrics = self._obs_metrics()
        timer = WallTimer().start()
        self.queries_executed += 1
        metrics.counter("query.executed").inc()

        with tracer.span("query.execute") as span:
            report = self._analyze_query(query, text)
            if report is not None and report.provably_empty:
                # The WHERE clause cannot be satisfied: answer without
                # planning, scanning, resolving similarity filters, or
                # any source round-trip.
                rows = self._empty_rows(query)
                wall = timer.stop()
                span.set("analysis", "short_circuit")
                span.set("rows", len(rows))
                metrics.counter("query.analysis_short_circuit").inc()
                metrics.histogram("query.wall_s").observe(wall)
                metrics.counter("query.rows_returned").inc(len(rows))
                return QueryResult(
                    rows=rows,
                    cache_outcome=("miss" if self.config.use_semantic_cache
                                   else "off"),
                    counters={"rows_scanned": 0, "rows_emitted": len(rows),
                              "index_probes": 0, "operators": []},
                    wall_time_s=wall,
                )
            if self.config.use_semantic_cache:
                hit = self.cache.lookup(query)
                if hit is not None:
                    wall = timer.stop()
                    span.set("cache", hit.kind)
                    span.set("rows", len(hit.rows))
                    metrics.histogram("query.wall_s").observe(wall)
                    metrics.counter("query.rows_returned").inc(
                        len(hit.rows)
                    )
                    return QueryResult(
                        rows=hit.rows,
                        cache_outcome=hit.kind,
                        wall_time_s=wall,
                    )

            resilient = self._resilience_active(deadline)
            deadline = self._as_deadline(deadline)
            statuses: dict[str, str] = {}
            self._fetch_deadline = deadline
            self._fetch_statuses = statuses if resilient else None
            try:
                with tracer.span("query.resolve_filters"):
                    ligand_keys, candidates, sub_candidates = \
                        self._resolve_ligand_filters(query)
                # Refresh the estimator if statistics went stale
                # (bulk loads).
                self.planner.estimator = CardinalityEstimator(
                    self.drugtree.statistics,
                    tables=self.drugtree.tables,
                    metrics=metrics,
                )
                with tracer.span("query.plan"):
                    plan = self.planner.plan(query,
                                             similar_keys=ligand_keys)
                counters = ExecCounters()
                physical = self._build_physical(plan.logical, counters)
                with tracer.span("query.run") as run_span:
                    rows = list(physical.rows())
                    if isinstance(plan.logical, LogicalEmpty):
                        # The rewriter proved the WHERE empty and
                        # dropped the whole tree, aggregates included;
                        # restore the SQL shape (count→0, mean→NULL)
                        # the naive engine and the analyzer
                        # short-circuit both produce.
                        rows = self._empty_rows(query)
                    run_span.set("rows", len(rows))
                    run_span.set("rows_scanned", counters.rows_scanned)
            except BorrowTimeoutError:
                raise  # a scheduler bug, never papered over
            except SourceError:
                stale = (self.cache.lookup_stale(query)
                         if resilient and self.config.use_semantic_cache
                         else None)
                if stale is None:
                    raise
                # Last line of degradation: the live answer is gone,
                # but the last known one is not. Serve it, flagged.
                wall = timer.stop()
                span.set("cache", "stale")
                span.set("rows", len(stale.rows))
                metrics.counter("query.served_stale").inc()
                metrics.counter("query.degraded_results").inc()
                metrics.histogram("query.wall_s").observe(wall)
                metrics.counter("query.rows_returned").inc(
                    len(stale.rows)
                )
                return QueryResult(
                    rows=stale.rows,
                    cache_outcome="stale",
                    wall_time_s=wall,
                    degraded=True,
                )
            finally:
                self._fetch_deadline = None
                self._fetch_statuses = None

            degraded = any(status != STATUS_FRESH
                           for status in statuses.values())
            # A degraded answer is *not* cached: the cache must never
            # upgrade a partial result to a future "fresh" hit.
            if self.config.use_semantic_cache and not degraded:
                self.cache.store(query, rows)
            if degraded:
                span.set("degraded", True)
                metrics.counter("query.degraded_results").inc()

            wall = timer.stop()
            span.set("cache",
                     "miss" if self.config.use_semantic_cache else "off")
            span.set("rows", len(rows))
            metrics.histogram("query.wall_s").observe(wall)
            metrics.counter("query.rows_returned").inc(len(rows))
            metrics.counter("query.rows_scanned").inc(
                counters.rows_scanned
            )

        return QueryResult(
            rows=rows,
            plan=plan,
            cache_outcome=("miss" if self.config.use_semantic_cache
                           else "off"),
            counters=counters.snapshot(),
            wall_time_s=wall,
            similarity_candidates=candidates,
            substructure_candidates=sub_candidates,
            resilience=dict(statuses),
            degraded=degraded,
        )

    def explain(self, query: Query | str) -> str:
        """The plan the engine would run, as indented text."""
        if isinstance(query, str):
            query = parse_query(query)
        ligand_keys, _, __ = self._resolve_ligand_filters(query)
        plan = self.planner.plan(query, similar_keys=ligand_keys)
        return plan.explain()

    def analyze(self, query: Query | str,
                deadline: Deadline | float | None = None) -> AnalyzeReport:
        """EXPLAIN ANALYZE: execute with per-operator instrumentation.

        Always executes fresh (like the SQL statement it imitates); the
        semantic cache is consulted only to report what outcome a normal
        ``execute`` would have seen. Per-operator spans are emitted into
        the tracer, and per-source round-trip deltas are read from the
        metrics registry, so remote traffic during execution (or its
        absence — the point of the integrated overlay) is visible.
        """
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            query = parse_query(query)
        tracer = self._obs_tracer()
        metrics = self._obs_metrics()
        clock = getattr(tracer, "clock", None)

        report = self._analyze_query(query, text)
        analysis_lines = (report.summary_lines()
                          if report is not None else ())

        cache_outcome = "off (semantic cache disabled)"
        if self.config.use_semantic_cache:
            hit = self.cache.lookup(query)
            cache_outcome = (
                f"{hit.kind} (result recomputed for analysis)"
                if hit is not None else "miss"
            )

        if report is not None and report.provably_empty:
            # Short-circuit mirror of execute(): no plan, no operators,
            # no round-trips. The report still renders the analysis
            # trailer naming the contradicted predicates.
            with tracer.span("query.explain_analyze") as span, \
                    WallTimer() as timer:
                rows = self._empty_rows(query)
                span.set("rows", len(rows))
                span.set("analysis", "short_circuit")
            metrics.counter("query.analysis_short_circuit").inc()
            stats = OperatorStats("AnalysisEmpty(provably empty WHERE)")
            stats.rows_out = len(rows)
            stats.loops = 1
            return AnalyzeReport(
                plan_text="",
                operators=stats,
                rows=len(rows),
                wall_s=timer.elapsed_s,
                virtual_s=0.0,
                estimated_rows=0.0,
                estimated_cost=0.0,
                cache_outcome=cache_outcome,
                counters={"rows_scanned": 0, "rows_emitted": len(rows),
                          "index_probes": 0, "operators": []},
                analysis=analysis_lines,
                execution={"mode": self.config.execution_mode},
            )

        resilient = self._resilience_active(deadline)
        deadline = self._as_deadline(deadline)
        statuses: dict[str, str] = {}
        ligand_keys, _, __ = self._resolve_ligand_filters(query)
        self.planner.estimator = CardinalityEstimator(
            self.drugtree.statistics,
            tables=self.drugtree.tables,
            metrics=metrics,
        )
        plan = self.planner.plan(query, similar_keys=ligand_keys)
        counters = ExecCounters()
        root = OperatorStats("plan")
        self._fetch_deadline = deadline
        self._fetch_statuses = statuses if resilient else None
        try:
            physical = self._build_physical(plan.logical, counters,
                                            probe=root, clock=clock)

            before = metrics.counter_values("source.roundtrips.")
            scheduler_before = metrics.counter_values("scheduler.")
            virtual_before = clock.now() if clock is not None else 0.0
            with tracer.span("query.explain_analyze") as span, \
                    WallTimer() as timer:
                rows = list(physical.rows())
                if isinstance(plan.logical, LogicalEmpty):
                    rows = self._empty_rows(query)
                span.set("rows", len(rows))
        finally:
            self._fetch_deadline = None
            self._fetch_statuses = None
        virtual_s = (clock.now() - virtual_before
                     if clock is not None else 0.0)
        after = metrics.counter_values("source.roundtrips.")
        scheduler_after = metrics.counter_values("scheduler.")
        federation = {
            name: round(total - scheduler_before.get(name, 0), 6)
            for name, total in scheduler_after.items()
            if total - scheduler_before.get(name, 0)
        }

        prefix = "source.roundtrips."
        source_roundtrips = {
            name[len(prefix):]: {
                "during": total - before.get(name, 0),
                "total": total,
            }
            for name, total in after.items()
        }

        resilience: dict[str, Any] = {}
        if statuses:
            resilience["statuses"] = dict(statuses)
            if any(status != STATUS_FRESH
                   for status in statuses.values()):
                resilience["degraded"] = True
        boards = getattr(self.federation, "breakers", None)
        if boards is not None:
            snap = boards.snapshot()
            if snap:
                resilience["breakers"] = snap

        execution: dict[str, Any] = {"mode": self.config.execution_mode}
        choice = self._last_choice
        if choice is not None:
            # Adaptive mode: report the resolved engine, both cost
            # estimates, why, and the fusion/morsel actuals. Explicit
            # row/vectorized modes keep their exact historical dict.
            execution["mode"] = choice.mode
            execution["requested"] = "adaptive"
            execution["row_cost"] = round(choice.row_cost, 1)
            execution["vec_cost"] = round(choice.vec_cost, 1)
            execution["reason"] = choice.reason
            execution["fused"] = counters.fused_pipelines
            execution["workers"] = choice.workers
            execution["morsels"] = counters.morsels
        if counters.batches_emitted:
            execution["batches"] = counters.batches_emitted
            execution["rows_per_batch"] = round(
                counters.batch_rows / counters.batches_emitted, 2
            )
            execution["batch_size"] = (choice.batch_size
                                       if choice is not None
                                       else self.config.vector_batch_size)

        storage: dict[str, Any] = {}
        if getattr(self.drugtree, "database", None) is not None:
            storage = {
                "durable": True,
                "segments_read": counters.segments_read,
                "segments_pruned": counters.segments_pruned,
            }

        operators = root.children[0] if root.children else root
        self._emit_operator_spans(tracer, operators)
        return AnalyzeReport(
            plan_text=plan.explain(),
            operators=operators,
            rows=len(rows),
            wall_s=timer.elapsed_s,
            virtual_s=virtual_s,
            estimated_rows=plan.estimated_rows,
            estimated_cost=plan.estimated_cost,
            cache_outcome=cache_outcome,
            counters=counters.snapshot(),
            source_roundtrips=source_roundtrips,
            federation=federation,
            analysis=analysis_lines,
            resilience=resilience,
            execution=execution,
            storage=storage,
        )

    def explain_analyze(self, query: Query | str) -> str:
        """EXPLAIN plus actual execution numbers, as annotated text."""
        return self.analyze(query).render()

    def _emit_operator_spans(self, tracer, stats: OperatorStats,
                             parent=None) -> None:
        span = tracer.record(
            "op." + stats.label.split("(", 1)[0],
            wall_s=stats.wall_s,
            virtual_s=stats.virtual_s or None,
            parent=parent,
            rows=stats.rows_out,
            loops=stats.loops,
            label=stats.label,
        )
        for child in stats.children:
            self._emit_operator_spans(tracer, child, parent=span)

    # -- ligand-filter resolution --------------------------------------------

    def _resolve_ligand_filters(
        self, query: Query,
    ) -> tuple[frozenset[str] | None, int, int]:
        """Resolve similarity and substructure filters to one ligand-id
        key set (their intersection when both are present)."""
        similar_keys, candidates = self._resolve_similarity(query.similar)
        sub_keys, sub_candidates = self._resolve_substructure(
            query.substructure
        )
        if similar_keys is None:
            combined = sub_keys
        elif sub_keys is None:
            combined = similar_keys
        else:
            combined = similar_keys & sub_keys
        return combined, candidates, sub_candidates

    def _resolve_substructure(
        self, substructure: SubstructureFilter | None,
    ) -> tuple[frozenset[str] | None, int]:
        """Resolve a CONTAINING filter to the matching ligand-id set.

        With the screen enabled, count profiling prunes molecules before
        any VF2 match runs; both paths return identical sets."""
        if substructure is None:
            return None, 0
        pattern = SubstructurePattern(substructure.smiles)
        molecules = self.drugtree.molecules
        if self.config.use_substructure_screen:
            matches, screened = filter_library(pattern, molecules)
            return matches, screened
        matches = frozenset(
            ligand_id for ligand_id, mol in molecules.items()
            if _vf2_only(pattern, mol)
        )
        return matches, len(molecules)

    def _resolve_similarity(
        self, similar: SimilarityFilter | None,
    ) -> tuple[frozenset[str] | None, int]:
        """Resolve a similarity filter to the matching ligand-id set.

        With the prefilter enabled, popcount bounds cut the candidate
        list before any Tanimoto is computed: ``T(a,b) >= t`` forces
        ``t * |a| <= |b| <= |a| / t``.
        """
        if similar is None:
            return None, 0
        probe = circular_fingerprint(parse_smiles(similar.smiles))
        threshold = similar.threshold
        if self.config.use_fingerprint_prefilter:
            # Popcount-ordered index: two binary searches bound the
            # candidate band before any Tanimoto is computed.
            index = self.drugtree.fingerprint_index
            band = index.candidate_band(probe, threshold)
            matches = frozenset(
                ligand_id for ligand_id, fp in band
                if tanimoto(probe, fp) >= threshold
            )
            return matches, len(band)
        fingerprints = self.drugtree.fingerprints
        matches = frozenset(
            ligand_id for ligand_id, fp in fingerprints.items()
            if tanimoto(probe, fp) >= threshold
        )
        return matches, len(fingerprints)

    # -- physical lowering ----------------------------------------------------------

    def _build_physical(self, node: LogicalNode, counters: ExecCounters,
                        probe: OperatorStats | None = None,
                        clock=None):
        """Lower through the configured execution mode.

        Both paths produce an operator exposing ``rows()`` with
        identical results; vectorized lowering additionally fills the
        counters' batch fields. Imported lazily so the default row
        path's import graph is unchanged.

        ``adaptive`` (the default) prices the plan in both row and
        vectorized terms against the current statistics and dispatches
        to the winner — with pipeline fusion, an adaptive batch size,
        and the morsel worker pool enabled on the vectorized side.
        The choice lands in ``self._last_choice`` for the analyze
        trailer.
        """
        mode = self.config.execution_mode
        choice = None
        if mode == "adaptive":
            # Bound once: the per-call import statement costs ~1us,
            # visible on sub-millisecond index probes.
            helpers = self._adaptive_helpers
            if helpers is None:
                from repro.core.query import adaptive as _adaptive
                helpers = self._adaptive_helpers = (
                    _adaptive.choice_key, _adaptive.choose_engine)
            choice_key, choose_engine = helpers
            epoch = getattr(self.drugtree, "stats_epoch", None)
            if epoch != self._choice_epoch:
                self._choice_cache.clear()
                self._choice_epoch = epoch
            key = choice_key(node)
            choice = self._choice_cache.get(key)
            if choice is None:
                choice = choose_engine(node, self.planner.estimator,
                                       self.config)
                if len(self._choice_cache) >= 256:
                    self._choice_cache.pop(
                        next(iter(self._choice_cache)))
                self._choice_cache[key] = choice
            mode = choice.mode
        self._last_choice = choice
        if mode == "vectorized":
            from repro.core.query.vectorized import VectorizedLowering
            if choice is not None:
                lowering = VectorizedLowering(
                    self, counters, probe=probe, clock=clock,
                    batch_size=choice.batch_size,
                    fuse=True, plan_cache=self.plan_cache,
                    workers=choice.workers,
                )
            else:
                lowering = VectorizedLowering(self, counters,
                                              probe=probe, clock=clock)
            return lowering.lower_plan(node)
        return self._to_physical(node, counters, probe=probe,
                                 clock=clock)

    def _to_physical(self, node: LogicalNode, counters: ExecCounters,
                     probe: OperatorStats | None = None,
                     clock=None) -> PhysicalOp:
        """Lower *node*; with *probe*, instrument it for EXPLAIN ANALYZE.

        *probe* is the parent's stats node: this operator appends its
        own stats child and comes back wrapped so execution charges
        actual rows and (wall, virtual) time to it.
        """
        if probe is None:
            return self._lower(node, counters, None, None)
        stats = probe.child(node.describe(),
                            getattr(node, "estimated_rows", None))
        op = self._lower(node, counters, stats, clock)
        return InstrumentedOp(op, stats, clock)

    def _lower(self, node: LogicalNode, counters: ExecCounters,
               stats: OperatorStats | None, clock) -> PhysicalOp:
        if isinstance(node, LogicalEmpty):
            return EmptyOp(counters)
        if isinstance(node, LogicalCladeAggregate):
            return self._clade_fast_path(node, counters)
        if isinstance(node, LogicalScan):
            return self._scan_op(node, counters)
        if isinstance(node, LogicalJoin):
            return self._join_op(node, counters, stats, clock)
        if isinstance(node, LogicalAggregate):
            child = self._to_physical(node.child, counters, stats, clock)
            return HashAggregateOp(counters, child, node.aggregates,
                                   node.group_by)
        if isinstance(node, LogicalHaving):
            child = self._to_physical(node.child, counters, stats, clock)
            return FilterOp(counters, child, node.conditions)
        if isinstance(node, LogicalProject):
            child = self._to_physical(node.child, counters, stats, clock)
            remote = tuple(c for c in node.columns
                           if c in REMOTE_DETAIL_COLUMNS)
            if remote:
                child = self._remote_fetch_op(remote, child, counters)
            return ProjectOp(counters, child, node.columns)
        if isinstance(node, LogicalOrder):
            child = self._to_physical(node.child, counters, stats, clock)
            if node.limit is not None:
                return TopKOp(counters, child, node.order_by, node.limit)
            return SortOp(counters, child, node.order_by)
        if isinstance(node, LogicalLimit):
            child = self._to_physical(node.child, counters, stats, clock)
            return LimitOp(counters, child, node.limit)
        raise PlanError(f"cannot lower {type(node).__name__}")

    def _remote_fetch_op(self, remote: tuple[str, ...],
                         child: PhysicalOp,
                         counters: ExecCounters) -> PhysicalOp:
        if self.federation is None:
            raise QueryError(
                f"columns {sorted(remote)} live at the remote sources; "
                "construct the engine with federation=FetchScheduler(...)"
            )
        specs = tuple(
            (column,
             REMOTE_DETAIL_COLUMNS[column][0],
             REMOTE_DETAIL_COLUMNS[column][1])
            for column in remote
        )
        return RemoteFetchOp(counters, child, self.federation,
                             "protein_id", specs,
                             lookahead=self.config.remote_lookahead,
                             deadline=self._fetch_deadline,
                             statuses=self._fetch_statuses)

    def _scan_op(self, node: LogicalScan,
                 counters: ExecCounters) -> PhysicalOp:
        table = self.drugtree.tables[node.table]
        if node.access == "seq":
            return SeqScanOp(counters, table, node.residual)
        if node.access == "index_eq":
            assert node.access_column is not None
            index = table.index_on(node.access_column)
            if index is None:
                raise PlanError(
                    f"plan needs an index on {node.access_column!r}"
                )
            return IndexEqScanOp(counters, table, index, node.eq_value,
                                 node.residual)
        if node.access == "index_range":
            assert node.access_column is not None
            index = table.index_on(node.access_column, require_range=True)
            if not isinstance(index, SortedIndex):
                raise PlanError(
                    f"plan needs a sorted index on {node.access_column!r}"
                )
            return IndexRangeScanOp(
                counters, table, index,
                node.range_low, node.range_high,
                node.include_low, node.include_high,
                node.residual,
            )
        if node.access == "key_set":
            assert node.access_column is not None
            assert node.key_set is not None
            return KeySetScanOp(counters, table, node.access_column,
                                node.key_set, node.residual)
        raise PlanError(f"unknown access path {node.access!r}")

    def _join_op(self, node: LogicalJoin, counters: ExecCounters,
                 stats: OperatorStats | None = None,
                 clock=None) -> PhysicalOp:
        left = self._to_physical(node.left, counters, stats, clock)
        if node.method == "hash":
            right = self._to_physical(node.right, counters, stats, clock)
            # Build on the smaller estimated side.
            left_rows = _rows_estimate(node.left)
            right_rows = _rows_estimate(node.right)
            if left_rows <= right_rows:
                return HashJoinOp(counters, build=left, probe=right,
                                  key=node.key)
            return HashJoinOp(counters, build=right, probe=left,
                              key=node.key)
        inner_logical = node.right

        if stats is not None:
            # The inner side is re-lowered per outer row; fold every
            # rescan into one stats node (loops counts the rescans).
            inner_stats = stats.child(
                inner_logical.describe(),
                getattr(inner_logical, "estimated_rows", None),
            )
            inner_stats.merge_children = True

            def inner_factory() -> PhysicalOp:
                op = self._lower(inner_logical, counters, inner_stats,
                                 clock)
                return InstrumentedOp(op, inner_stats, clock)
        else:
            def inner_factory() -> PhysicalOp:
                return self._to_physical(inner_logical, counters)

        return NestedLoopJoinOp(counters, left, inner_factory, node.key)

    def _clade_fast_path(self, node: LogicalCladeAggregate,
                         counters: ExecCounters) -> PhysicalOp:
        stats = self.drugtree.clade_stats(node.node_name)
        row: dict[str, Any] = {}
        for aggregate in node.aggregates:
            if aggregate.func == "count":
                row[aggregate.output_name] = int(stats["count"])
            elif aggregate.func == "mean":
                row[aggregate.output_name] = (
                    stats["mean"] if stats["count"] else None
                )
            elif aggregate.func == "max":
                row[aggregate.output_name] = (
                    stats["max"] if stats["count"] else None
                )
            elif aggregate.func == "sum":
                row[aggregate.output_name] = stats["mean"] * stats["count"]
            else:
                raise PlanError(
                    f"clade fast path cannot serve {aggregate}"
                )
        return StaticRowsOp(counters, [row])


def _vf2_only(pattern: SubstructurePattern, mol) -> bool:
    """Exact match without the count screen (the ablation path)."""
    from networkx.algorithms import isomorphism

    from repro.chem.substructure import (
        _atoms_match,
        _bonds_match,
        _typed_graph,
    )

    matcher = isomorphism.GraphMatcher(
        _typed_graph(mol), pattern.graph,
        node_match=_atoms_match, edge_match=_bonds_match,
    )
    return matcher.subgraph_is_monomorphic()


def _rows_estimate(node: LogicalNode) -> float:
    estimated = getattr(node, "estimated_rows", None)
    return float(estimated) if estimated is not None else 1e9
