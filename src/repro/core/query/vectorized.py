"""Vectorized (batch-at-a-time) execution over columnar projections.

The row engine (:mod:`repro.core.query.physical`) interprets plans one
dict row at a time: every row pays a ``dict`` materialization, a
generator resumption per operator, and (before PR 5) per-row predicate
dispatch. This module executes the *same* logical plans batch-at-a-time
over the tables' :class:`~repro.storage.columnar.ColumnStore`
projections, amortizing interpreter overhead across
``EngineConfig.vector_batch_size`` rows:

* scans build **selection vectors** (lists of live buffer positions)
  and narrow them with compiled predicate closures applied straight to
  the column buffers — no row dicts exist until the plan's output;
* filters, projections, joins, sorts, and limits operate on
  :class:`Batch` objects (column name → value list);
* aggregation folds whole column slices via ``_AggState.fold_many``,
  accumulating in the same left-to-right order as the row engine so
  float results are bit-identical;
* operators without a batch form — ``RemoteFetchOp``, nested-loop
  joins, the clade fast path — **fall back** to their row
  implementations behind :class:`RowSourceAdapterOp`, so every plan the
  row engine runs, this engine runs with identical results.

Result parity is a hard contract: same rows, same order, same
``rows_scanned``/``rows_emitted``/``index_probes``. The one documented
exception is early termination (a bare ``LIMIT`` without ``ORDER BY``):
scans work at batch granularity, so an abandoned scan may have counted
up to one batch more than the row engine's row-granular stop.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.core.query.ast import REMOTE_DETAIL_COLUMNS, AggregateSpec, OrderBy
from repro.core.query.logical import (
    LogicalAggregate,
    LogicalCladeAggregate,
    LogicalEmpty,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalOrder,
    LogicalProject,
    LogicalScan,
)
from repro.core.query.physical import ExecCounters, _AggState, _sort_key
from repro.core.query.predicates import compile_columns
from repro.errors import PlanError, QueryError
from repro.obs.explain import OperatorStats
from repro.obs.timing import now_wall
from repro.storage.columnar import ColumnStore
from repro.storage.index import SortedIndex

#: Default rows per batch; EngineConfig.vector_batch_size overrides.
DEFAULT_BATCH_SIZE = 1024


class Batch:
    """One batch of rows in columnar form.

    ``columns`` maps column name to a value list; every list has
    ``length`` entries and position ``i`` across all lists is one row.
    ``order`` fixes the column order rows materialize with, mirroring
    the key order of the row engine's dicts.
    """

    __slots__ = ("order", "columns", "length")

    def __init__(self, order: tuple[str, ...],
                 columns: dict[str, list[Any]], length: int) -> None:
        self.order = order
        self.columns = columns
        self.length = length

    def __len__(self) -> int:
        return self.length

    def values(self, name: str) -> list[Any]:
        """One column's values; missing columns read as all-NULL
        (the batch analogue of ``row.get``)."""
        if name in self.columns:
            return self.columns[name]
        return [None] * self.length

    def take(self, positions: Sequence[int]) -> "Batch":
        """A new batch keeping *positions*, in the given order."""
        taken = {
            name: [buffer[p] for p in positions]
            for name, buffer in self.columns.items()
        }
        return Batch(self.order, taken, len(positions))

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Materialize dict rows (the batch/row boundary)."""
        order = self.order
        if not order:
            for _ in range(self.length):
                yield {}
            return
        buffers = [self.columns[name] for name in order]
        for values in zip(*buffers):
            yield dict(zip(order, values))

    def __repr__(self) -> str:
        return f"Batch(rows={self.length}, columns={list(self.order)})"


def batch_from_rows(rows: list[dict[str, Any]]) -> Batch:
    """Columnarize dict rows (the fallback adapter's direction)."""
    if not rows:
        return Batch((), {}, 0)
    order = tuple(rows[0].keys())
    columns = {name: [row.get(name) for row in rows] for name in order}
    return Batch(order, columns, len(rows))


class VectorOp:
    """One batch-at-a-time plan operator.

    Mirrors :class:`~repro.core.query.physical.PhysicalOp`: registers
    itself in the shared counters' operator list and exposes ``rows()``
    so any consumer of the row protocol (the executor's final
    ``list(...)``, ``RemoteFetchOp``) can drain it without knowing
    about batches.
    """

    def __init__(self, counters: ExecCounters) -> None:
        self.counters = counters
        counters.operators.append(type(self).__name__)

    def batches(self) -> Iterator[Batch]:
        raise NotImplementedError

    def rows(self) -> Iterator[dict[str, Any]]:
        for batch in self.batches():
            yield from batch.iter_rows()

    def _emit(self, batch: Batch) -> Batch:
        self.counters.batches_emitted += 1
        self.counters.batch_rows += len(batch)
        return batch


class InstrumentedVecOp:
    """EXPLAIN ANALYZE wrapper charging stats per *batch*.

    The batch analogue of :class:`~repro.obs.explain.InstrumentedOp`:
    timing brackets each ``next()`` on the batch iterator and
    ``rows_out`` advances by the batch length, so operator actuals mean
    the same thing in both modes.
    """

    __slots__ = ("inner", "stats", "clock", "counters")

    def __init__(self, inner: VectorOp, stats: OperatorStats,
                 clock: Any | None = None) -> None:
        self.inner = inner
        self.stats = stats
        self.clock = clock
        self.counters = inner.counters

    def batches(self) -> Iterator[Batch]:
        stats = self.stats
        clock = self.clock
        stats.loops += 1
        iterator = self.inner.batches()
        while True:
            wall_started = now_wall()
            virtual_started = clock.now() if clock is not None else 0.0
            try:
                batch = next(iterator)
            except StopIteration:
                stats.wall_s += now_wall() - wall_started
                if clock is not None:
                    stats.virtual_s += clock.now() - virtual_started
                return
            stats.wall_s += now_wall() - wall_started
            if clock is not None:
                stats.virtual_s += clock.now() - virtual_started
            stats.rows_out += len(batch)
            yield batch

    def rows(self) -> Iterator[dict[str, Any]]:
        for batch in self.batches():
            yield from batch.iter_rows()


class RowSourceAdapterOp(VectorOp):
    """Decay adapter: re-batch a row operator's output.

    Wraps subtrees that only exist in row form (``RemoteFetchOp``,
    nested-loop joins, the clade fast path). The wrapped operator does
    its own row accounting; this adapter only columnarizes.
    """

    def __init__(self, counters: ExecCounters, row_op: Any,
                 batch_size: int) -> None:
        super().__init__(counters)
        self.row_op = row_op
        self.batch_size = batch_size

    def batches(self) -> Iterator[Batch]:
        buffer: list[dict[str, Any]] = []
        for record in self.row_op.rows():
            buffer.append(record)
            if len(buffer) >= self.batch_size:
                yield self._emit(batch_from_rows(buffer))
                buffer = []
        if buffer:
            yield self._emit(batch_from_rows(buffer))


def _filter_positions(positions: Sequence[int], store: ColumnStore,
                      compiled) -> Sequence[int]:
    """Narrow a selection vector, one compiled predicate at a time."""
    for name, test in compiled:
        buffer = store.column(name)
        positions = [p for p in positions if test(buffer[p])]
    return positions


class _VecScanBase(VectorOp):
    """Shared gather/filter machinery of the four scan shapes."""

    def __init__(self, counters: ExecCounters, store: ColumnStore,
                 residual, columns: tuple[str, ...] | None,
                 batch_size: int, pool=None) -> None:
        super().__init__(counters)
        self.store = store
        self.residual = residual
        self.compiled = compile_columns(residual)
        if columns is None:
            self.columns = store.column_names
        else:
            self.columns = tuple(c for c in store.column_names
                                 if c in columns)
        self.batch_size = batch_size
        self.pool = pool

    def _scan_chunk(self, chunk: Sequence[int]) -> Batch | None:
        """Count, filter, and gather one chunk of buffer positions."""
        self.counters.rows_scanned += len(chunk)
        selected = _filter_positions(chunk, self.store, self.compiled)
        if not selected:
            return None
        self.counters.rows_emitted += len(selected)
        store = self.store
        columns = {name: store.gather(name, list(selected))
                   for name in self.columns}
        return Batch(self.columns, columns, len(selected))

    def _scan_positions(self, positions: Sequence[int],
                        ) -> Iterator[Batch]:
        size = self.batch_size
        pool = self.pool
        if (pool is not None and pool.workers > 1
                and len(positions) > size):
            yield from self._scan_morsels(positions)
            return
        for start in range(0, len(positions), size):
            batch = self._scan_chunk(positions[start:start + size])
            if batch is not None:
                yield self._emit(batch)

    def _scan_morsels(self, positions: Sequence[int],
                      ) -> Iterator[Batch]:
        """Parallel filter over morsels; counters, gathers, and batch
        emission stay on the coordinating thread, in morsel order, so
        output is bit-identical to the sequential path."""
        size = self.batch_size
        chunks = [positions[start:start + size]
                  for start in range(0, len(positions), size)]
        store = self.store
        compiled = self.compiled

        def work(chunk):
            return _filter_positions(chunk, store, compiled)

        for chunk, selected in zip(chunks,
                                   self.pool.imap_ordered(work, chunks)):
            self.counters.rows_scanned += len(chunk)
            self.counters.morsels += 1
            if not selected:
                continue
            self.counters.rows_emitted += len(selected)
            columns = {name: store.gather(name, list(selected))
                       for name in self.columns}
            yield self._emit(Batch(self.columns, columns,
                                   len(selected)))


class VecSeqScanOp(_VecScanBase):
    """Full-table scan: selection vectors over all live positions.

    On a durable table with residual predicates, flushed segments'
    zone maps are consulted first: segments whose min/max intervals
    refute a predicate are skipped without touching their positions,
    and only the surviving row-id ranges (plus the memtable's) are
    scanned. The positions come back in insertion order, so output
    order and row counts match the unpruned scan exactly.
    """

    def batches(self) -> Iterator[Batch]:
        durable = self.store.table.durable
        if durable is not None and self.residual:
            positions = durable.scan_positions(
                self.store, self.residual, self.counters,
            )
            if positions is not None:
                yield from self._scan_positions(positions)
                return
        yield from self._scan_positions(self.store.live_positions())


class VecIndexEqScanOp(_VecScanBase):
    def __init__(self, counters: ExecCounters, store: ColumnStore,
                 index, value: Any, residual=(),
                 columns: tuple[str, ...] | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__(counters, store, residual, columns, batch_size)
        self.index = index
        self.value = value

    def batches(self) -> Iterator[Batch]:
        self.counters.index_probes += 1
        position_of = self.store.position_of
        positions = [position_of(row_id)
                     for row_id in self.index.lookup(self.value)]
        yield from self._scan_positions(positions)


class VecIndexRangeScanOp(_VecScanBase):
    def __init__(self, counters: ExecCounters, store: ColumnStore,
                 index: SortedIndex, low: Any, high: Any,
                 include_low: bool, include_high: bool, residual=(),
                 columns: tuple[str, ...] | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__(counters, store, residual, columns, batch_size)
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def batches(self) -> Iterator[Batch]:
        self.counters.index_probes += 1
        row_ids = self.index.range(self.low, self.high,
                                   self.include_low, self.include_high)
        position_of = self.store.position_of
        positions = [position_of(row_id) for row_id in row_ids]
        yield from self._scan_positions(positions)


class VecKeySetScanOp(_VecScanBase):
    """Key-set scan: index probes per key, or a filtered seq scan."""

    def __init__(self, counters: ExecCounters, store: ColumnStore,
                 column: str, keys: frozenset, residual=(),
                 columns: tuple[str, ...] | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__(counters, store, residual, columns, batch_size)
        self.column = column
        self.keys = keys

    def batches(self) -> Iterator[Batch]:
        index = self.store.table.index_on(self.column)
        if index is not None:
            # Same key order (and per-key probe accounting) as the row
            # operator: deterministic across runs and engines.
            position_of = self.store.position_of
            positions: list[int] = []
            for key in sorted(self.keys, key=repr):
                self.counters.index_probes += 1
                positions.extend(position_of(row_id)
                                 for row_id in index.lookup(key))
            yield from self._scan_positions(positions)
            return
        keys = self.keys
        buffer = self.store.column(self.column)
        size = self.batch_size
        live = self.store.live_positions()
        for start in range(0, len(live), size):
            chunk = live[start:start + size]
            self.counters.rows_scanned += len(chunk)
            members = [p for p in chunk if buffer[p] in keys]
            selected = _filter_positions(members, self.store,
                                         self.compiled)
            if not selected:
                continue
            self.counters.rows_emitted += len(selected)
            store = self.store
            columns = {name: store.gather(name, list(selected))
                       for name in self.columns}
            yield self._emit(Batch(self.columns, columns,
                                   len(selected)))


class VecFilterOp(VectorOp):
    """Batch filter (the HAVING stage) over compiled predicates."""

    def __init__(self, counters: ExecCounters, child,
                 predicates) -> None:
        super().__init__(counters)
        self.child = child
        self.predicates = predicates
        self.compiled = compile_columns(predicates)

    def batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            keep = range(len(batch))
            for name, test in self.compiled:
                values = batch.values(name)
                keep = [i for i in keep if test(values[i])]
            if not keep:
                continue
            self.counters.rows_emitted += len(keep)
            yield self._emit(batch.take(list(keep)))


class VecProjectOp(VectorOp):
    def __init__(self, counters: ExecCounters, child,
                 columns: tuple[str, ...]) -> None:
        super().__init__(counters)
        self.child = child
        self.columns = columns

    def batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            missing = [c for c in self.columns
                       if c not in batch.columns]
            if missing:
                raise QueryError(
                    f"projection references missing column "
                    f"'{missing[0]}'"
                )
            projected = {name: batch.columns[name]
                         for name in self.columns}
            yield self._emit(Batch(self.columns, projected,
                                   len(batch)))


class VecHashAggregateOp(VectorOp):
    """Grouped/scalar aggregation folding column slices per batch."""

    def __init__(self, counters: ExecCounters, child,
                 aggregates: tuple[AggregateSpec, ...],
                 group_by: str | None = None) -> None:
        super().__init__(counters)
        self.child = child
        self.aggregates = aggregates
        self.group_by = group_by

    def batches(self) -> Iterator[Batch]:
        groups: dict[Any, dict[str, _AggState]] = {}
        saw_rows = False
        for batch in self.child.batches():
            if not len(batch):
                continue
            saw_rows = True
            if self.group_by is None:
                self._fold_scalar(groups, batch)
            else:
                self._fold_grouped(groups, batch)
        if not saw_rows and self.group_by is None:
            # Scalar aggregate over an empty input still yields one row.
            groups[None] = {
                agg.output_name: _AggState() for agg in self.aggregates
            }
        out_rows = []
        for key in sorted(groups, key=repr):
            states = groups[key]
            out: dict[str, Any] = {}
            if self.group_by is not None:
                out[self.group_by] = key
            for agg in self.aggregates:
                out[agg.output_name] = states[agg.output_name].result(
                    agg.func
                )
            self.counters.rows_emitted += 1
            out_rows.append(out)
        if out_rows:
            yield self._emit(batch_from_rows(out_rows))

    def _fold_scalar(self, groups, batch: Batch) -> None:
        states = groups.setdefault(None, {
            agg.output_name: _AggState() for agg in self.aggregates
        })
        for agg in self.aggregates:
            state = states[agg.output_name]
            if agg.column == "*":
                state.count += len(batch)
            else:
                state.fold_many(batch.values(agg.column))

    def _fold_grouped(self, groups, batch: Batch) -> None:
        keys = batch.values(self.group_by)
        folds = [
            (agg.output_name,
             None if agg.column == "*" else batch.values(agg.column))
            for agg in self.aggregates
        ]
        fresh = {agg.output_name: None for agg in self.aggregates}
        for i, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = groups[key] = {
                    name: _AggState() for name in fresh
                }
            for name, values in folds:
                state = states[name]
                if values is None:
                    state.count += 1
                else:
                    state.fold(values[i])


class _Materializing(VectorOp):
    """Shared concat step of the blocking operators (sort, top-k)."""

    def _materialize(self, child) -> Batch:
        batches = [batch for batch in child.batches() if len(batch)]
        if not batches:
            return Batch((), {}, 0)
        order = batches[0].order
        columns = {name: [] for name in order}
        total = 0
        for batch in batches:
            total += len(batch)
            for name in order:
                columns[name].extend(batch.values(name))
        return Batch(order, columns, total)


class VecSortOp(_Materializing):
    def __init__(self, counters: ExecCounters, child,
                 order_by: OrderBy,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__(counters)
        self.child = child
        self.order_by = order_by
        self.batch_size = batch_size

    def batches(self) -> Iterator[Batch]:
        merged = self._materialize(self.child)
        if not len(merged):
            return
        keys = merged.values(self.order_by.column)
        # sorted() is stable, exactly like the row engine's list.sort:
        # ties keep arrival order under either mode.
        indices = sorted(range(len(merged)),
                         key=lambda i: _sort_key(keys[i]),
                         reverse=self.order_by.descending)
        size = self.batch_size
        for start in range(0, len(indices), size):
            yield self._emit(merged.take(indices[start:start + size]))


class VecTopKOp(_Materializing):
    """Bounded sort; result order matches ``heapq.nlargest/nsmallest``
    (documented equivalent of a stable full sort sliced to k)."""

    def __init__(self, counters: ExecCounters, child,
                 order_by: OrderBy, limit: int) -> None:
        super().__init__(counters)
        self.child = child
        self.order_by = order_by
        self.limit = limit

    def batches(self) -> Iterator[Batch]:
        merged = self._materialize(self.child)
        if not len(merged):
            return
        keys = merged.values(self.order_by.column)
        indices = sorted(range(len(merged)),
                         key=lambda i: _sort_key(keys[i]),
                         reverse=self.order_by.descending)[:self.limit]
        self.counters.rows_emitted += len(indices)
        yield self._emit(merged.take(indices))


class VecLimitOp(VectorOp):
    def __init__(self, counters: ExecCounters, child,
                 limit: int) -> None:
        super().__init__(counters)
        self.child = child
        self.limit = limit

    def batches(self) -> Iterator[Batch]:
        remaining = self.limit
        for batch in self.child.batches():
            if len(batch) > remaining:
                batch = batch.take(list(range(remaining)))
            remaining -= len(batch)
            self.counters.rows_emitted += len(batch)
            yield self._emit(batch)
            if remaining <= 0:
                return


class VecHashJoinOp(VectorOp):
    """Batch equi-join; buckets of build positions, probed per batch.

    Merged rows replicate the row engine's ``{**build, **probe}``:
    build columns first, probe-only columns appended, and a column
    present on both sides takes the probe value.
    """

    def __init__(self, counters: ExecCounters, build, probe,
                 key: str) -> None:
        super().__init__(counters)
        self.build = build
        self.probe = probe
        self.key = key

    def batches(self) -> Iterator[Batch]:
        build = self._materialize_build()
        buckets: dict[Any, list[int]] = {}
        build_keys = build.values(self.key)
        for position, key in enumerate(build_keys):
            buckets.setdefault(key, []).append(position)
        for batch in self.probe.batches():
            probe_keys = batch.values(self.key)
            build_positions: list[int] = []
            probe_positions: list[int] = []
            for i, key in enumerate(probe_keys):
                for position in buckets.get(key, ()):
                    build_positions.append(position)
                    probe_positions.append(i)
            if not build_positions:
                continue
            self.counters.rows_emitted += len(build_positions)
            order = build.order + tuple(
                c for c in batch.order if c not in build.columns
            )
            columns: dict[str, list[Any]] = {}
            for name in order:
                if name in batch.columns:  # probe wins shared columns
                    source = batch.columns[name]
                    columns[name] = [source[p] for p in probe_positions]
                else:
                    source = build.columns[name]
                    columns[name] = [source[p] for p in build_positions]
            yield self._emit(Batch(order, columns,
                                   len(build_positions)))

    def _materialize_build(self) -> Batch:
        batches = [batch for batch in self.build.batches()
                   if len(batch)]
        if not batches:
            return Batch((), {}, 0)
        order = batches[0].order
        columns = {name: [] for name in order}
        total = 0
        for batch in batches:
            total += len(batch)
            for name in order:
                columns[name].extend(batch.values(name))
        return Batch(order, columns, total)


def _rows_estimate(node: LogicalNode) -> float:
    # Same build-side heuristic as the row engine's _join_op.
    estimated = getattr(node, "estimated_rows", None)
    return float(estimated) if estimated is not None else 1e9


def needed_columns(node: LogicalNode) -> set[str] | None:
    """Columns the plan above the scans actually consumes.

    ``None`` means "all": without a Project or Aggregate bounding the
    output, raw scan rows surface directly and every schema column must
    be gathered. Otherwise scans gather only this set (plus whatever
    their own access path needs), which is the "columnar projection"
    half of the speedup.
    """
    needed: set[str] = set()
    shaped = False
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, LogicalProject):
            shaped = True
            needed.update(current.columns)
            if any(c in REMOTE_DETAIL_COLUMNS for c in current.columns):
                needed.add("protein_id")  # the fetch key
        elif isinstance(current, LogicalAggregate):
            shaped = True
            needed.update(agg.column for agg in current.aggregates
                          if agg.column != "*")
            if current.group_by:
                needed.add(current.group_by)
        elif isinstance(current, LogicalJoin):
            needed.add(current.key)
        elif isinstance(current, LogicalOrder):
            needed.add(current.order_by.column)
        stack.extend(current.children())
    return needed if shaped else None


class VectorizedLowering:
    """Lower logical plans to batch operators (the vectorized mirror of
    ``QueryEngine._lower``), decaying to row operators where no batch
    form exists."""

    def __init__(self, engine, counters: ExecCounters,
                 probe: OperatorStats | None = None,
                 clock=None, batch_size: int | None = None,
                 fuse: bool = False, plan_cache=None,
                 workers: int = 1) -> None:
        self.engine = engine
        self.counters = counters
        self.probe = probe
        self.clock = clock
        self.batch_size = batch_size or engine.config.vector_batch_size
        self.needed: set[str] | None = None
        #: Adaptive-mode extras. Explicit ``vectorized`` mode keeps all
        #: three off so its operator pipeline stays byte-identical.
        self.fuse = fuse
        self.plan_cache = plan_cache
        self.pool = None
        if workers > 1:
            from repro.core.query.morsel import MorselPool
            self.pool = MorselPool(workers)

    def lower_plan(self, node: LogicalNode):
        self.needed = needed_columns(node)
        return self._to_vector(node, self.probe)

    # -- plumbing ----------------------------------------------------------

    def _to_vector(self, node: LogicalNode,
                   probe: OperatorStats | None):
        if self._falls_back(node):
            # Whole-subtree decay: the row path instruments itself.
            return self.engine._to_physical(node, self.counters,
                                            probe=probe,
                                            clock=self.clock)
        if probe is None:
            return self._lower(node, None)
        stats = probe.child(node.describe(),
                            getattr(node, "estimated_rows", None))
        return InstrumentedVecOp(self._lower(node, stats), stats,
                                 self.clock)

    @staticmethod
    def _falls_back(node: LogicalNode) -> bool:
        if isinstance(node, (LogicalEmpty, LogicalCladeAggregate)):
            return True
        return (isinstance(node, LogicalJoin)
                and node.method == "nested_loop")

    def _as_batches(self, op):
        """Ensure *op* speaks the batch protocol (adapt row ops)."""
        if hasattr(op, "batches"):
            return op
        return RowSourceAdapterOp(self.counters, op, self.batch_size)

    def _child_batches(self, node: LogicalNode,
                       stats: OperatorStats | None):
        return self._as_batches(self._to_vector(node, stats))

    # -- node lowering -----------------------------------------------------

    def _lower(self, node: LogicalNode,
               stats: OperatorStats | None) -> VectorOp:
        if isinstance(node, LogicalScan):
            return self._scan_op(node)
        if isinstance(node, LogicalJoin):
            left = self._child_batches(node.left, stats)
            right = self._child_batches(node.right, stats)
            if _rows_estimate(node.left) <= _rows_estimate(node.right):
                return VecHashJoinOp(self.counters, build=left,
                                     probe=right, key=node.key)
            return VecHashJoinOp(self.counters, build=right,
                                 probe=left, key=node.key)
        if isinstance(node, LogicalAggregate):
            if self.fuse:
                from repro.core.query.fused import try_fuse
                fused = try_fuse(self, node, stats)
                if fused is not None:
                    return fused
            child = self._child_batches(node.child, stats)
            return VecHashAggregateOp(self.counters, child,
                                      node.aggregates, node.group_by)
        if isinstance(node, LogicalHaving):
            child = self._child_batches(node.child, stats)
            return VecFilterOp(self.counters, child, node.conditions)
        if isinstance(node, LogicalProject):
            if self.fuse:
                from repro.core.query.fused import try_fuse
                fused = try_fuse(self, node, stats)
                if fused is not None:
                    return fused
            child = self._to_vector(node.child, stats)
            remote = tuple(c for c in node.columns
                           if c in REMOTE_DETAIL_COLUMNS)
            if remote:
                # RemoteFetchOp has no batch form: drain the child as
                # rows through it, then re-batch its enriched output.
                fetch = self.engine._remote_fetch_op(remote, child,
                                                     self.counters)
                child = RowSourceAdapterOp(self.counters, fetch,
                                           self.batch_size)
            else:
                child = self._as_batches(child)
            return VecProjectOp(self.counters, child, node.columns)
        if isinstance(node, LogicalOrder):
            child = self._child_batches(node.child, stats)
            if node.limit is not None:
                return VecTopKOp(self.counters, child, node.order_by,
                                 node.limit)
            return VecSortOp(self.counters, child, node.order_by,
                             self.batch_size)
        if isinstance(node, LogicalLimit):
            child = self._child_batches(node.child, stats)
            return VecLimitOp(self.counters, child, node.limit)
        raise PlanError(f"cannot lower {type(node).__name__}")

    def _scan_op(self, node: LogicalScan) -> VectorOp:
        table = self.engine.drugtree.tables[node.table]
        store = table.column_store()
        columns = self.needed
        if node.access == "seq":
            return VecSeqScanOp(self.counters, store, node.residual,
                                columns, self.batch_size,
                                pool=self.pool)
        if node.access == "index_eq":
            assert node.access_column is not None
            index = table.index_on(node.access_column)
            if index is None:
                raise PlanError(
                    f"plan needs an index on {node.access_column!r}"
                )
            return VecIndexEqScanOp(self.counters, store, index,
                                    node.eq_value, node.residual,
                                    columns, self.batch_size)
        if node.access == "index_range":
            assert node.access_column is not None
            index = table.index_on(node.access_column,
                                   require_range=True)
            if not isinstance(index, SortedIndex):
                raise PlanError(
                    f"plan needs a sorted index on "
                    f"{node.access_column!r}"
                )
            return VecIndexRangeScanOp(
                self.counters, store, index,
                node.range_low, node.range_high,
                node.include_low, node.include_high,
                node.residual, columns, self.batch_size,
            )
        if node.access == "key_set":
            assert node.access_column is not None
            assert node.key_set is not None
            return VecKeySetScanOp(self.counters, store,
                                   node.access_column, node.key_set,
                                   node.residual, columns,
                                   self.batch_size)
        raise PlanError(f"unknown access path {node.access!r}")
