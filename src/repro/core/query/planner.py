"""Cost-based query planner.

Lowers a normalised query to a logical plan in four steps:

1. **Predicate placement** — every predicate is pushed down to the one
   table that owns its column (shared key columns go to the bindings
   fact table when present).
2. **Subtree rewrite** — the subtree filter becomes an integer range on
   ``leaf_pre`` (interval labeling), or, with labeling disabled, an
   ``IN`` over the clade's protein ids (the ablation baseline).
3. **Access-path selection** — per table, the cheapest of sequential
   scan / hash-index equality / sorted-index range / key-set probe,
   costed with the statistics-driven cardinality estimator.
4. **Join ordering** — left-deep order chosen by Selinger-style dynamic
   programming (``dp``), a greedy smallest-intermediate heuristic
   (``greedy``), or the fixed canonical order (``fixed``, the naive
   baseline).

The materialized clade fast path short-circuits all of this for pure
clade-aggregate queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Any

from repro.core.labeling import IntervalLabeling
from repro.core.overlay import (
    BINDINGS_TABLE,
    JOIN_KEYS,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
)
from repro.core.query import cost as cost_model
from repro.core.query.ast import (
    COLUMN_OWNERS,
    Comparison,
    Query,
)
from repro.core.query.cards import CardinalityEstimator
from repro.core.query.cost import Cost
from repro.core.query.logical import (
    LogicalAggregate,
    LogicalCladeAggregate,
    LogicalEmpty,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalOrder,
    LogicalProject,
    LogicalScan,
)
from repro.core.query.rules import normalize
from repro.errors import PlanError
from repro.storage.table import Table

#: Aggregates answerable straight from the clade materialized stats.
_CLADE_FAST_AGGS = {
    ("count", "*"), ("count", "p_affinity"),
    ("mean", "p_affinity"), ("max", "p_affinity"),
    ("sum", "p_affinity"),
}


@dataclass(frozen=True)
class PlannerConfig:
    """Optimizer feature toggles (the knobs of ablation experiment E2)."""

    use_indexes: bool = True
    use_interval_labeling: bool = True
    use_materialized_aggregates: bool = True
    join_strategy: str = "dp"      # "dp" | "greedy" | "fixed"
    join_method: str = "hash"      # "hash" | "nested_loop"

    def __post_init__(self) -> None:
        if self.join_strategy not in ("dp", "greedy", "fixed"):
            raise PlanError(
                f"unknown join strategy {self.join_strategy!r}"
            )
        if self.join_method not in ("hash", "nested_loop"):
            raise PlanError(f"unknown join method {self.join_method!r}")


@dataclass
class PlanReport:
    """What the planner decided and what it expected (for E7)."""

    logical: LogicalNode
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    join_order: tuple[str, ...] = ()
    rewrites: dict[str, Any] = field(default_factory=dict)

    def explain(self) -> str:
        header = (
            f"-- cost={self.estimated_cost:.1f} "
            f"rows~{self.estimated_rows:.0f} "
            f"order={'>'.join(self.join_order) or '-'}"
        )
        return f"{header}\n{self.logical.explain()}"


class Planner:
    """Builds logical plans against one DrugTree's overlay."""

    def __init__(self, tables: dict[str, Table],
                 labeling: IntervalLabeling,
                 estimator: CardinalityEstimator,
                 config: PlannerConfig | None = None) -> None:
        self.tables = tables
        self.labeling = labeling
        self.estimator = estimator
        self.config = config or PlannerConfig()

    # -- entry point ---------------------------------------------------------

    def plan(self, query: Query,
             similar_keys: frozenset[str] | None = None) -> PlanReport:
        """Produce a plan. *similar_keys* is the pre-resolved ligand-id
        set of the query's similarity filter (the executor resolves it
        through the fingerprint library before planning)."""
        normalized = normalize(query)
        query = normalized.query
        rewrites: dict[str, Any] = {
            "removed_predicates": normalized.removed_predicates,
        }
        if normalized.contradiction:
            return PlanReport(LogicalEmpty(), rewrites=rewrites)

        fast = self._try_clade_fast_path(query)
        if fast is not None:
            rewrites["clade_fast_path"] = True
            return PlanReport(fast, estimated_rows=1.0, estimated_cost=1.0,
                              rewrites=rewrites)

        table_names = query.tables()
        placed = self._place_predicates(query, table_names, rewrites)
        if similar_keys is not None:
            target = (LIGANDS_TABLE if LIGANDS_TABLE in table_names
                      else BINDINGS_TABLE)
            placed.setdefault(target, []).append(
                Comparison("ligand_id", "in", frozenset(similar_keys))
            )

        scans: dict[str, tuple[LogicalScan, Cost]] = {}
        for table_name in table_names:
            predicates = tuple(placed.get(table_name, ()))
            scans[table_name] = self._choose_access_path(table_name,
                                                         predicates)

        root, total_cost, join_order = self._order_joins(table_names, scans)
        estimated_rows = _estimated_rows(root)

        if query.aggregates:
            root = LogicalAggregate(root, query.aggregates, query.group_by)
            total_cost = total_cost + cost_model.aggregate_cost(
                estimated_rows
            )
            estimated_rows = 1.0
            if query.having:
                root = LogicalHaving(root, query.having)
        elif query.select:
            root = LogicalProject(root, query.select)

        if query.order_by is not None:
            if query.limit is not None:
                root = LogicalOrder(root, query.order_by, query.limit)
                total_cost = total_cost + cost_model.topk_cost(
                    estimated_rows, query.limit
                )
                estimated_rows = float(min(estimated_rows, query.limit))
            else:
                root = LogicalOrder(root, query.order_by)
                total_cost = total_cost + cost_model.sort_cost(
                    estimated_rows
                )
        elif query.limit is not None:
            root = LogicalLimit(root, query.limit)
            estimated_rows = float(min(estimated_rows, query.limit))

        return PlanReport(
            logical=root,
            estimated_rows=estimated_rows,
            estimated_cost=total_cost.total,
            join_order=join_order,
            rewrites=rewrites,
        )

    # -- clade fast path -------------------------------------------------------

    def _try_clade_fast_path(self, query: Query) -> LogicalNode | None:
        if not self.config.use_materialized_aggregates:
            return None
        if query.subtree is None or not query.aggregates:
            return None
        if (query.predicates or query.similar or query.group_by
                or query.select or query.having):
            return None
        if query.tables() != (BINDINGS_TABLE,):
            return None
        for aggregate in query.aggregates:
            if (aggregate.func, aggregate.column) not in _CLADE_FAST_AGGS:
                return None
        if not self.labeling.has_name(query.subtree.node_name):
            return None
        return LogicalCladeAggregate(query.subtree.node_name,
                                     query.aggregates)

    # -- predicate placement ------------------------------------------------

    def _place_predicates(self, query: Query,
                          table_names: tuple[str, ...],
                          rewrites: dict[str, Any],
                          ) -> dict[str, list[Comparison]]:
        placed: dict[str, list[Comparison]] = {}
        for predicate in query.predicates:
            owners = [t for t in COLUMN_OWNERS[predicate.column]
                      if t in table_names]
            if not owners:
                raise PlanError(
                    f"predicate {predicate} references no queried table"
                )
            # Shared key columns restrict best at the fact table.
            target = (BINDINGS_TABLE if BINDINGS_TABLE in owners
                      else owners[0])
            placed.setdefault(target, []).append(predicate)

        if query.subtree is not None:
            target = (BINDINGS_TABLE if BINDINGS_TABLE in table_names
                      else PROTEINS_TABLE)
            placed.setdefault(target, []).extend(
                self._subtree_predicates(query.subtree.node_name, rewrites)
            )
        return placed

    def _subtree_predicates(self, node_name: str,
                            rewrites: dict[str, Any]) -> list[Comparison]:
        if self.config.use_interval_labeling:
            low, high = self.labeling.leaf_range(node_name)
            rewrites["subtree_rewrite"] = f"leaf_pre in [{low}, {high})"
            return [
                Comparison("leaf_pre", ">=", low),
                Comparison("leaf_pre", "<", high),
            ]
        # Ablation baseline: enumerate the clade by actually walking the
        # tree (the pre-labeling behaviour), then filter by name set.
        target = None
        for node in self.labeling.tree.preorder():
            if node.name == node_name:
                target = node
                break
        if target is None:
            raise PlanError(f"no tree node named {node_name!r}")
        names = frozenset(leaf.name for leaf in target.leaves())
        rewrites["subtree_rewrite"] = f"protein_id IN ({len(names)} names)"
        return [Comparison("protein_id", "in", names)]

    # -- access paths ------------------------------------------------------------

    def _choose_access_path(self, table_name: str,
                            predicates: tuple[Comparison, ...],
                            ) -> tuple[LogicalScan, Cost]:
        table = self.tables[table_name]
        output_rows = self.estimator.scan_rows(table_name, predicates)
        candidates: list[tuple[Cost, LogicalScan]] = []

        seq = LogicalScan(table_name, "seq", residual=predicates,
                          estimated_rows=output_rows)
        candidates.append((
            cost_model.seq_scan_cost(self.estimator.table_rows(table_name),
                                     len(predicates)),
            seq,
        ))

        if self.config.use_indexes:
            candidates.extend(
                self._index_candidates(table_name, table, predicates,
                                       output_rows)
            )

        best_cost, best_scan = min(candidates, key=lambda item: item[0])
        return best_scan, best_cost

    def _index_candidates(self, table_name: str, table: Table,
                          predicates: tuple[Comparison, ...],
                          output_rows: float,
                          ) -> list[tuple[Cost, LogicalScan]]:
        candidates: list[tuple[Cost, LogicalScan]] = []
        for position, predicate in enumerate(predicates):
            residual = tuple(p for i, p in enumerate(predicates)
                             if i != position)
            if predicate.op == "=":
                index = table.index_on(predicate.column)
                if index is None:
                    continue
                matches = self.estimator.scan_rows(table_name, (predicate,))
                candidates.append((
                    cost_model.index_eq_cost(matches, len(residual)),
                    LogicalScan(table_name, "index_eq",
                                access_column=predicate.column,
                                eq_value=predicate.value,
                                residual=residual,
                                estimated_rows=output_rows),
                ))
            elif predicate.op == "in":
                index = table.index_on(predicate.column)
                if index is None:
                    continue
                keys = frozenset(predicate.value)
                matches = self.estimator.scan_rows(table_name, (predicate,))
                candidates.append((
                    cost_model.key_set_cost(len(keys), matches,
                                            len(residual)),
                    LogicalScan(table_name, "key_set",
                                access_column=predicate.column,
                                key_set=keys,
                                residual=residual,
                                estimated_rows=output_rows),
                ))
        candidates.extend(
            self._range_candidates(table_name, table, predicates,
                                   output_rows)
        )
        return candidates

    def _range_candidates(self, table_name: str, table: Table,
                          predicates: tuple[Comparison, ...],
                          output_rows: float,
                          ) -> list[tuple[Cost, LogicalScan]]:
        """Combine all range bounds on one indexed column into one scan."""
        by_column: dict[str, list[Comparison]] = {}
        for predicate in predicates:
            if predicate.op in ("<", "<=", ">", ">="):
                by_column.setdefault(predicate.column, []).append(predicate)
        candidates: list[tuple[Cost, LogicalScan]] = []
        for column, bounds in by_column.items():
            index = table.index_on(column, require_range=True)
            if index is None:
                continue
            low = high = None
            include_low = include_high = True
            for bound in bounds:
                if bound.op in (">", ">="):
                    if low is None or bound.value > low:
                        low = bound.value
                        include_low = bound.op == ">="
                else:
                    if high is None or bound.value < high:
                        high = bound.value
                        include_high = bound.op == "<="
            residual = tuple(p for p in predicates if p not in bounds)
            matches = self.estimator.scan_rows(table_name, tuple(bounds))
            candidates.append((
                cost_model.index_range_cost(matches, len(residual)),
                LogicalScan(table_name, "index_range",
                            access_column=column,
                            range_low=low, range_high=high,
                            include_low=include_low,
                            include_high=include_high,
                            residual=residual,
                            estimated_rows=output_rows),
            ))
        return candidates

    # -- join ordering ------------------------------------------------------------

    def _order_joins(self, table_names: tuple[str, ...],
                     scans: dict[str, tuple[LogicalScan, Cost]],
                     ) -> tuple[LogicalNode, Cost, tuple[str, ...]]:
        if len(table_names) == 1:
            only = table_names[0]
            scan, cost = scans[only]
            return scan, cost, (only,)

        orders: list[tuple[str, ...]]
        if self.config.join_strategy == "fixed":
            orders = [table_names]
        elif self.config.join_strategy == "greedy":
            orders = [self._greedy_order(table_names, scans)]
        else:  # dp: enumerate all connected left-deep orders
            orders = [
                order for order in permutations(table_names)
                if self._connected_prefixes(order)
            ]

        best: tuple[Cost, LogicalNode, tuple[str, ...]] | None = None
        for order in orders:
            plan, cost = self._build_left_deep(order, scans)
            if best is None or cost < best[0]:
                best = (cost, plan, order)
        if best is None:
            raise PlanError(
                f"no connected join order for tables {table_names}"
            )
        cost, plan, order = best
        return plan, cost, order

    def _greedy_order(self, table_names: tuple[str, ...],
                      scans: dict[str, tuple[LogicalScan, Cost]],
                      ) -> tuple[str, ...]:
        remaining = set(table_names)
        start = min(remaining,
                    key=lambda t: scans[t][0].estimated_rows)
        order = [start]
        remaining.discard(start)
        current_rows = scans[start][0].estimated_rows
        while remaining:
            joinable = [t for t in remaining
                        if any((t, placed) in JOIN_KEYS
                               for placed in order)]
            if not joinable:
                raise PlanError("join graph is disconnected")

            def joined_rows(candidate: str) -> float:
                partner = next(placed for placed in order
                               if (candidate, placed) in JOIN_KEYS)
                key = JOIN_KEYS[(candidate, partner)]
                return self.estimator.join_rows(
                    current_rows, scans[candidate][0].estimated_rows,
                    partner, candidate, key,
                )

            chosen = min(joinable, key=joined_rows)
            current_rows = joined_rows(chosen)
            order.append(chosen)
            remaining.discard(chosen)
        return tuple(order)

    @staticmethod
    def _connected_prefixes(order: tuple[str, ...]) -> bool:
        for position in range(1, len(order)):
            if not any((order[position], earlier) in JOIN_KEYS
                       for earlier in order[:position]):
                return False
        return True

    def _build_left_deep(self, order: tuple[str, ...],
                         scans: dict[str, tuple[LogicalScan, Cost]],
                         ) -> tuple[LogicalNode, Cost]:
        first_scan, total_cost = scans[order[0]]
        plan: LogicalNode = first_scan
        plan_rows = first_scan.estimated_rows
        joined = [order[0]]
        for table_name in order[1:]:
            scan, scan_cost = scans[table_name]
            partner = next(
                placed for placed in joined
                if (table_name, placed) in JOIN_KEYS
            )
            key = JOIN_KEYS[(table_name, partner)]
            output_rows = self.estimator.join_rows(
                plan_rows, scan.estimated_rows, partner, table_name, key,
            )
            if self.config.join_method == "hash":
                join_cost = cost_model.hash_join_cost(
                    min(plan_rows, scan.estimated_rows),
                    max(plan_rows, scan.estimated_rows),
                    output_rows,
                )
            else:
                join_cost = cost_model.nested_loop_cost(
                    plan_rows, scan_cost.total,
                )
            plan = LogicalJoin(plan, scan, key,
                               method=self.config.join_method,
                               estimated_rows=output_rows)
            total_cost = total_cost + scan_cost + join_cost
            plan_rows = output_rows
            joined.append(table_name)
        return plan, total_cost


def _estimated_rows(node: LogicalNode) -> float:
    estimated = getattr(node, "estimated_rows", None)
    if estimated is not None:
        return float(estimated)
    children = node.children()
    return _estimated_rows(children[-1]) if children else 1.0
