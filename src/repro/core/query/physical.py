"""Physical operators (volcano-style iterators over dict rows).

Every operator exposes ``rows()`` yielding ``dict`` rows and counts the
rows it examines into a shared :class:`ExecCounters`, which is how the
experiments report "rows touched" next to latency.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.core.query.ast import AggregateSpec, Comparison, OrderBy
from repro.core.query.predicates import compile_residual
from repro.errors import QueryError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Table


@dataclass
class ExecCounters:
    """Row-level work accounting shared by all operators of one plan.

    ``rows_scanned``/``rows_emitted``/``index_probes`` mean the same
    thing under both execution modes (asserted by the parity suite), so
    E1/E7 "rows touched" numbers stay comparable. The batch fields are
    only touched by the vectorized operators; the snapshot omits them
    when zero so row-mode counters are byte-identical to before.
    """

    rows_scanned: int = 0
    rows_emitted: int = 0
    index_probes: int = 0
    operators: list[str] = field(default_factory=list)
    #: Batches yielded by vectorized operators (0 in row mode).
    batches_emitted: int = 0
    #: Total rows across those batches (drives the mean batch size).
    batch_rows: int = 0
    #: Durable-mode segment accounting: SSTables consulted by scans
    #: whose zone maps could not refute the residual...
    segments_read: int = 0
    #: ...and SSTables skipped wholesale because a zone map refuted it.
    segments_pruned: int = 0
    #: Morsels dispatched to the worker pool (0 unless adaptive mode
    #: ran a parallel scan with more than one worker).
    morsels: int = 0
    #: Fused scan->filter->project/aggregate pipelines built for this
    #: plan (adaptive mode only).
    fused_pipelines: int = 0

    def snapshot(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rows_scanned": self.rows_scanned,
            "rows_emitted": self.rows_emitted,
            "index_probes": self.index_probes,
            "operators": list(self.operators),
        }
        if self.batches_emitted:
            data["batches_emitted"] = self.batches_emitted
            data["rows_per_batch"] = round(
                self.batch_rows / self.batches_emitted, 2
            )
        if self.segments_read or self.segments_pruned:
            data["segments_read"] = self.segments_read
            data["segments_pruned"] = self.segments_pruned
        if self.morsels:
            data["morsels"] = self.morsels
        if self.fused_pipelines:
            data["fused_pipelines"] = self.fused_pipelines
        return data


class PhysicalOp(ABC):
    """One executable plan operator."""

    def __init__(self, counters: ExecCounters) -> None:
        self.counters = counters
        counters.operators.append(type(self).__name__)

    @abstractmethod
    def rows(self) -> Iterator[dict[str, Any]]: ...


def _apply_residual(row: dict[str, Any],
                    residual: tuple[Comparison, ...]) -> bool:
    """Row-at-a-time residual check (kept for external callers).

    The operators themselves no longer call this: each compiles its
    residual list once via
    :func:`~repro.core.query.predicates.compile_residual`, replacing
    per-row ``pred.matches`` dispatch with one specialized closure.
    """
    return all(pred.matches(row.get(pred.column)) for pred in residual)


class SeqScanOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, table: Table,
                 residual: tuple[Comparison, ...] = ()) -> None:
        super().__init__(counters)
        self.table = table
        self.residual = residual
        self._passes = compile_residual(residual)

    def rows(self) -> Iterator[dict[str, Any]]:
        as_dict = self.table.schema.row_as_dict
        passes = self._passes
        for row in self.table.scan_rows():
            self.counters.rows_scanned += 1
            record = as_dict(row)
            if passes(record):
                self.counters.rows_emitted += 1
                yield record


class IndexEqScanOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, table: Table,
                 index: HashIndex | SortedIndex, value: Any,
                 residual: tuple[Comparison, ...] = ()) -> None:
        super().__init__(counters)
        self.table = table
        self.index = index
        self.value = value
        self.residual = residual
        self._passes = compile_residual(residual)

    def rows(self) -> Iterator[dict[str, Any]]:
        self.counters.index_probes += 1
        as_dict = self.table.schema.row_as_dict
        passes = self._passes
        for row_id in self.index.lookup(self.value):
            self.counters.rows_scanned += 1
            record = as_dict(self.table.get(row_id))
            if passes(record):
                self.counters.rows_emitted += 1
                yield record


class IndexRangeScanOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, table: Table,
                 index: SortedIndex,
                 low: Any, high: Any,
                 include_low: bool, include_high: bool,
                 residual: tuple[Comparison, ...] = ()) -> None:
        super().__init__(counters)
        self.table = table
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.residual = residual
        self._passes = compile_residual(residual)

    def rows(self) -> Iterator[dict[str, Any]]:
        self.counters.index_probes += 1
        as_dict = self.table.schema.row_as_dict
        passes = self._passes
        row_ids = self.index.range(self.low, self.high,
                                   self.include_low, self.include_high)
        for row_id in row_ids:
            self.counters.rows_scanned += 1
            record = as_dict(self.table.get(row_id))
            if passes(record):
                self.counters.rows_emitted += 1
                yield record


class KeySetScanOp(PhysicalOp):
    """Fetch rows whose column value lies in a known key set.

    Uses a hash index when present (one probe per key), otherwise falls
    back to a filtered sequential scan.
    """

    def __init__(self, counters: ExecCounters, table: Table,
                 column: str, keys: frozenset,
                 residual: tuple[Comparison, ...] = ()) -> None:
        super().__init__(counters)
        self.table = table
        self.column = column
        self.keys = keys
        self.residual = residual
        self._passes = compile_residual(residual)

    def rows(self) -> Iterator[dict[str, Any]]:
        as_dict = self.table.schema.row_as_dict
        passes = self._passes
        index = self.table.index_on(self.column)
        if index is not None:
            for key in sorted(self.keys, key=repr):
                self.counters.index_probes += 1
                for row_id in index.lookup(key):
                    self.counters.rows_scanned += 1
                    record = as_dict(self.table.get(row_id))
                    if passes(record):
                        self.counters.rows_emitted += 1
                        yield record
            return
        position = self.table.schema.index_of(self.column)
        for row in self.table.scan_rows():
            self.counters.rows_scanned += 1
            if row[position] not in self.keys:
                continue
            record = as_dict(row)
            if passes(record):
                self.counters.rows_emitted += 1
                yield record


class HashJoinOp(PhysicalOp):
    """Equi-join; builds a hash table on the (smaller) left input."""

    def __init__(self, counters: ExecCounters, build: PhysicalOp,
                 probe: PhysicalOp, key: str) -> None:
        super().__init__(counters)
        self.build = build
        self.probe = probe
        self.key = key

    def rows(self) -> Iterator[dict[str, Any]]:
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for record in self.build.rows():
            buckets.setdefault(record.get(self.key), []).append(record)
        for record in self.probe.rows():
            for match in buckets.get(record.get(self.key), ()):
                merged = {**match, **record}
                self.counters.rows_emitted += 1
                yield merged


class NestedLoopJoinOp(PhysicalOp):
    """Equi-join by re-scanning the inner side per outer row (baseline)."""

    def __init__(self, counters: ExecCounters, outer: PhysicalOp,
                 inner_factory, key: str) -> None:
        super().__init__(counters)
        self.outer = outer
        self.inner_factory = inner_factory
        self.key = key

    def rows(self) -> Iterator[dict[str, Any]]:
        for outer_record in self.outer.rows():
            for inner_record in self.inner_factory().rows():
                if inner_record.get(self.key) == outer_record.get(self.key):
                    self.counters.rows_emitted += 1
                    yield {**inner_record, **outer_record}


class FilterOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 predicates: tuple[Comparison, ...]) -> None:
        super().__init__(counters)
        self.child = child
        self.predicates = predicates
        self._passes = compile_residual(predicates)

    def rows(self) -> Iterator[dict[str, Any]]:
        passes = self._passes
        for record in self.child.rows():
            if passes(record):
                self.counters.rows_emitted += 1
                yield record


class ProjectOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 columns: tuple[str, ...]) -> None:
        super().__init__(counters)
        self.child = child
        self.columns = columns

    def rows(self) -> Iterator[dict[str, Any]]:
        for record in self.child.rows():
            try:
                yield {column: record[column] for column in self.columns}
            except KeyError as exc:
                raise QueryError(
                    f"projection references missing column {exc}"
                ) from None


@dataclass
class _AggState:
    count: int = 0
    total: float = 0.0
    minimum: Any = None
    maximum: Any = None

    def fold(self, value: Any) -> None:
        # SQL semantics: NULLs do not contribute to column aggregates.
        if value is None:
            return
        self.count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def fold_many(self, values: list[Any]) -> None:
        """Fold a whole column slice in one call (vectorized path).

        Accumulates in the same left-to-right order as repeated
        :meth:`fold` calls so float sums round identically — the parity
        suite asserts bit-identical aggregates across engines.
        """
        total = self.total
        count = self.count
        minimum = self.minimum
        maximum = self.maximum
        for value in values:
            if value is None:
                continue
            count += 1
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                total += value
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        self.total = total
        self.count = count
        self.minimum = minimum
        self.maximum = maximum

    def result(self, func: str) -> Any:
        if func == "count":
            return self.count
        if self.count == 0:
            return None
        if func == "sum":
            return self.total
        if func == "mean":
            return self.total / self.count
        if func == "min":
            return self.minimum
        return self.maximum


class HashAggregateOp(PhysicalOp):
    """Grouped (or scalar, when group_by is None) aggregation."""

    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 aggregates: tuple[AggregateSpec, ...],
                 group_by: str | None = None) -> None:
        super().__init__(counters)
        self.child = child
        self.aggregates = aggregates
        self.group_by = group_by

    def rows(self) -> Iterator[dict[str, Any]]:
        groups: dict[Any, dict[str, _AggState]] = {}
        saw_rows = False
        for record in self.child.rows():
            saw_rows = True
            key = record.get(self.group_by) if self.group_by else None
            states = groups.setdefault(key, {
                agg.output_name: _AggState() for agg in self.aggregates
            })
            for agg in self.aggregates:
                value = 1 if agg.column == "*" else record.get(agg.column)
                if agg.column == "*":
                    states[agg.output_name].count += 1
                else:
                    states[agg.output_name].fold(value)
        if not saw_rows and self.group_by is None:
            # Scalar aggregate over an empty input still yields one row.
            groups[None] = {
                agg.output_name: _AggState() for agg in self.aggregates
            }
        for key in sorted(groups, key=repr):
            states = groups[key]
            out: dict[str, Any] = {}
            if self.group_by is not None:
                out[self.group_by] = key
            for agg in self.aggregates:
                out[agg.output_name] = states[agg.output_name].result(
                    agg.func
                )
            self.counters.rows_emitted += 1
            yield out


class SortOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 order_by: OrderBy) -> None:
        super().__init__(counters)
        self.child = child
        self.order_by = order_by

    def rows(self) -> Iterator[dict[str, Any]]:
        records = list(self.child.rows())
        records.sort(
            key=lambda record: _sort_key(record.get(self.order_by.column)),
            reverse=self.order_by.descending,
        )
        yield from records


class TopKOp(PhysicalOp):
    """Bounded heap: O(n log k) instead of a full sort."""

    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 order_by: OrderBy, limit: int) -> None:
        super().__init__(counters)
        self.child = child
        self.order_by = order_by
        self.limit = limit

    def rows(self) -> Iterator[dict[str, Any]]:
        column = self.order_by.column

        def key(record: dict[str, Any]) -> Any:
            return _sort_key(record.get(column))

        pick = heapq.nlargest if self.order_by.descending else heapq.nsmallest
        for record in pick(self.limit, self.child.rows(), key=key):
            self.counters.rows_emitted += 1
            yield record


def _sort_key(value: Any) -> Any:
    """NULLs sort first ascending / last descending, like SQL NULLS FIRST."""
    return (value is not None, value)


class LimitOp(PhysicalOp):
    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 limit: int) -> None:
        super().__init__(counters)
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[dict[str, Any]]:
        for position, record in enumerate(self.child.rows()):
            if position >= self.limit:
                break
            self.counters.rows_emitted += 1
            yield record


class RemoteFetchOp(PhysicalOp):
    """Enrich rows with remote detail columns via the fetch scheduler.

    Buffers ``lookahead`` child rows at a time, collects their distinct
    keys, and issues *one* scatter/gather batch per buffer: every
    record kind the projected detail columns need is fetched in the
    same :meth:`FetchScheduler.fetch_all` call, so round-trips to
    different sources overlap and repeated keys coalesce. Rows whose
    record is missing at the source get ``None`` details.

    With a *statuses* sink the operator uses the scheduler's resilient
    path (``fetch_all_resilient``): per-kind degradation statuses are
    merged into the sink (worst across flushes) instead of a source
    fault aborting the query, and an optional *deadline* bounds the
    virtual time the fetches may spend.
    """

    def __init__(self, counters: ExecCounters, child: PhysicalOp,
                 scheduler, key_column: str,
                 specs: tuple[tuple[str, str, str], ...],
                 lookahead: int = 64, deadline=None,
                 statuses: dict[str, str] | None = None) -> None:
        if lookahead < 1:
            raise QueryError("remote fetch lookahead must be positive")
        super().__init__(counters)
        self.child = child
        self.scheduler = scheduler
        self.key_column = key_column
        #: (output column, record kind, record attribute) triples.
        self.specs = specs
        self.lookahead = lookahead
        self.deadline = deadline
        self.statuses = statuses
        self.batches = 0
        self.keys_fetched = 0

    def rows(self) -> Iterator[dict[str, Any]]:
        buffer: list[dict[str, Any]] = []
        for record in self.child.rows():
            buffer.append(record)
            if len(buffer) >= self.lookahead:
                yield from self._flush(buffer)
                buffer = []
        if buffer:
            yield from self._flush(buffer)

    def _flush(self, buffer: list[dict[str, Any]],
               ) -> Iterator[dict[str, Any]]:
        keys = sorted({
            record[self.key_column] for record in buffer
            if record.get(self.key_column) is not None
        })
        kinds = sorted({kind for _, kind, _ in self.specs})
        requests = [(kind, keys) for kind in kinds]
        fetched = self._fetch(requests)
        self.batches += 1
        self.keys_fetched += len(keys)
        for record in buffer:
            key = record.get(self.key_column)
            for column, kind, attribute in self.specs:
                remote = fetched.get(kind, {}).get(key)
                record[column] = (getattr(remote, attribute, None)
                                  if remote is not None else None)
            self.counters.rows_emitted += 1
            yield record

    def _fetch(self, requests) -> dict[str, dict[str, Any]]:
        resilient = getattr(self.scheduler, "fetch_all_resilient", None)
        if self.statuses is not None and resilient is not None:
            # Degrading path: missing kinds come back flagged, not
            # raised; the engine decides what a partial answer means.
            from repro.sources.resilience import worst_status

            outcome = resilient(requests, deadline=self.deadline)
            for kind, status in outcome.statuses.items():
                previous = self.statuses.get(kind)
                self.statuses[kind] = (
                    status if previous is None
                    else worst_status(previous, status)
                )
            return outcome.records
        if self.deadline is not None:
            return self.scheduler.fetch_all(requests,
                                            deadline=self.deadline)
        # Plain schedulers (tests pass fakes) only know fetch_all.
        return self.scheduler.fetch_all(requests)


class EmptyOp(PhysicalOp):
    def rows(self) -> Iterator[dict[str, Any]]:
        return iter(())


class StaticRowsOp(PhysicalOp):
    """Emit precomputed rows (materialized-aggregate fast path)."""

    def __init__(self, counters: ExecCounters,
                 records: list[dict[str, Any]]) -> None:
        super().__init__(counters)
        self.records = records

    def rows(self) -> Iterator[dict[str, Any]]:
        for record in self.records:
            self.counters.rows_emitted += 1
            yield record
