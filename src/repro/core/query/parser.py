"""DTQL: the small text query language of the DrugTree system.

Grammar (keywords case-insensitive, strings single-quoted)::

    query  := SELECT items [FROM tables] [WHERE pred (AND pred)*]
              [IN SUBTREE 'node'] [SIMILAR TO 'smiles' >= number]
          [CONTAINING 'smiles-fragment']
              [GROUP BY column] [HAVING hcond (AND hcond)*]
              [ORDER BY column [ASC|DESC]] [LIMIT n]
    items  := '*' | item (',' item)*
    item   := column | func '(' (column | '*') ')'
    pred   := column op literal
            | column IN '(' literal (',' literal)* ')'
            | column BETWEEN literal AND literal
    op     := = | != | < | <= | > | >=

Examples::

    SELECT * FROM bindings WHERE p_affinity >= 7.0 IN SUBTREE 'clade_12'
    SELECT organism, count(*) FROM bindings, proteins
        WHERE potent = true GROUP BY organism
    SELECT ligand_id, p_affinity ORDER BY p_affinity DESC LIMIT 10

Parse errors carry a character ``span`` — ``(offset, length)`` into the
query text — so diagnostics (``repro check``, the mobile server's
rejection payloads) can point at the offending token.
"""

from __future__ import annotations

import re
from typing import Any, NamedTuple

from repro.core.query.ast import (
    AggregateSpec,
    Comparison,
    HavingCondition,
    OrderBy,
    Query,
    SimilarityFilter,
    SubstructureFilter,
    SubtreeFilter,
)
from repro.errors import ParseError, QueryError

_KNOWN_TABLES = ("bindings", "proteins", "ligands")

_TOKEN_RE = re.compile(
    r"""
    (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),*])
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    """One DTQL token with its position in the source text."""

    kind: str
    text: str
    offset: int

    @property
    def span(self) -> tuple[int, int]:
        return (self.offset, len(self.text))


def tokenize(text: str) -> list[Token]:
    """Split DTQL *text* into :class:`Token` objects (whitespace dropped)."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at "
                f"offset {position}",
                span=(position, 1),
            )
        start = position
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        tokens.append(Token(kind, match.group(), start))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers -----------------------------------------------------

    def _end_span(self) -> tuple[int, int]:
        """Zero-width span just past the last token (for EOF errors)."""
        if self.tokens:
            last = self.tokens[-1]
            return (last.offset + len(last.text), 0)
        return (len(self.text), 0)

    def _peek(self) -> Token | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _peek_is(self, kind: str, text: str) -> bool:
        token = self._peek()
        return (token is not None and token.kind == kind
                and token.text == text)

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query",
                             span=self._end_span())
        self.position += 1
        return token

    def _keyword(self, *words: str) -> bool:
        """Consume the keyword sequence if present."""
        saved = self.position
        for word in words:
            token = self._peek()
            if token is None or token.kind != "word" \
                    or token.text.upper() != word:
                self.position = saved
                return False
            self.position += 1
        return True

    def _here(self) -> tuple[int, int]:
        token = self._peek()
        return token.span if token is not None else self._end_span()

    def _expect_keyword(self, word: str) -> None:
        if not self._keyword(word):
            raise ParseError(f"expected keyword {word}", span=self._here())

    def _expect_punct(self, symbol: str) -> None:
        token = self._next()
        if (token.kind, token.text) != ("punct", symbol):
            raise ParseError(f"expected {symbol!r}, got {token.text!r}",
                             span=token.span)

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word":
            raise ParseError(f"expected identifier, got {token.text!r}",
                             span=token.span)
        return token.text

    def _literal(self) -> Any:
        token = self._next()
        kind, text = token.kind, token.text
        if kind == "string":
            return text[1:-1].replace("''", "'")
        if kind == "number":
            value = float(text)
            return int(value) if value.is_integer() and "." not in text \
                and "e" not in text.lower() else value
        if kind == "word" and text.upper() in ("TRUE", "FALSE"):
            return text.upper() == "TRUE"
        raise ParseError(f"expected literal, got {text!r}", span=token.span)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        select, aggregates = self._select_items()
        from_tables: list[str] = []
        if self._keyword("FROM"):
            from_tables = self._table_list()
        predicates: list[Comparison] = []
        if self._keyword("WHERE"):
            predicates.extend(self._predicate())
            while self._keyword("AND"):
                predicates.extend(self._predicate())
        subtree = None
        if self._keyword("IN", "SUBTREE"):
            subtree = SubtreeFilter(self._string())
        similar = None
        if self._keyword("SIMILAR", "TO"):
            smiles = self._string()
            token = self._next()
            if (token.kind, token.text) != ("op", ">="):
                raise ParseError("SIMILAR TO needs '>= threshold'",
                                 span=token.span)
            threshold_span = self._here()
            threshold = self._literal()
            if not isinstance(threshold, (int, float)):
                raise ParseError("similarity threshold must be a number",
                                 span=threshold_span)
            try:
                similar = SimilarityFilter(smiles, float(threshold))
            except QueryError as exc:
                raise ParseError(str(exc), span=threshold_span) from None
        substructure = None
        if self._keyword("CONTAINING"):
            substructure = SubstructureFilter(self._string())
        group_by = None
        if self._keyword("GROUP", "BY"):
            group_by = self._identifier()
        having: list[HavingCondition] = []
        if self._keyword("HAVING"):
            having.append(self._having_condition())
            while self._keyword("AND"):
                having.append(self._having_condition())
        order_by = None
        if self._keyword("ORDER", "BY"):
            column = self._identifier()
            descending = False
            if self._keyword("DESC"):
                descending = True
            else:
                self._keyword("ASC")
            order_by = OrderBy(column, descending)
        limit = None
        if self._keyword("LIMIT"):
            limit_span = self._here()
            value = self._literal()
            if not isinstance(value, int):
                raise ParseError("LIMIT must be an integer",
                                 span=limit_span)
            limit = value
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"trailing tokens starting at {trailing.text!r}",
                span=trailing.span,
            )
        return Query(
            select=tuple(select),
            aggregates=tuple(aggregates),
            predicates=tuple(predicates),
            subtree=subtree,
            similar=similar,
            substructure=substructure,
            group_by=group_by,
            having=tuple(having),
            order_by=order_by,
            limit=limit,
            from_tables=tuple(from_tables),
        )

    def _select_items(self) -> tuple[list[str], list[AggregateSpec]]:
        select: list[str] = []
        aggregates: list[AggregateSpec] = []
        if self._peek_is("punct", "*"):
            self._next()
            return select, aggregates
        while True:
            name = self._identifier()
            if self._peek_is("punct", "("):
                self._next()
                if self._peek_is("punct", "*"):
                    self._next()
                    column = "*"
                else:
                    column = self._identifier()
                self._expect_punct(")")
                aggregates.append(AggregateSpec(name.lower(), column))
            else:
                select.append(name)
            if self._peek_is("punct", ","):
                self._next()
                continue
            break
        return select, aggregates

    def _table_list(self) -> list[str]:
        tables = [self._table_name()]
        while self._peek_is("punct", ","):
            self._next()
            tables.append(self._table_name())
        return tables

    def _table_name(self) -> str:
        span = self._here()
        name = self._identifier().lower()
        if name not in _KNOWN_TABLES:
            raise ParseError(
                f"unknown table {name!r} (known: {_KNOWN_TABLES})",
                span=span,
            )
        return name

    def _predicate(self) -> list[Comparison]:
        column = self._identifier()
        if self._keyword("IN"):
            self._expect_punct("(")
            values = [self._literal()]
            while self._peek_is("punct", ","):
                self._next()
                values.append(self._literal())
            self._expect_punct(")")
            return [Comparison(column, "in", tuple(values))]
        if self._keyword("BETWEEN"):
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return [Comparison(column, ">=", low),
                    Comparison(column, "<=", high)]
        token = self._next()
        if token.kind != "op":
            raise ParseError(
                f"expected comparison operator, got {token.text!r}",
                span=token.span,
            )
        return [Comparison(column, token.text, self._literal())]

    def _having_condition(self) -> HavingCondition:
        column = self._identifier()
        token = self._next()
        if token.kind != "op":
            raise ParseError(
                f"expected comparison operator, got {token.text!r}",
                span=token.span,
            )
        return HavingCondition(column, token.text, self._literal())

    def _string(self) -> str:
        token = self._next()
        if token.kind != "string":
            raise ParseError(f"expected quoted string, got {token.text!r}",
                             span=token.span)
        return token.text[1:-1].replace("''", "'")


def parse_query(text: str) -> Query:
    """Parse DTQL *text* into a :class:`Query`.

    Raised :class:`ParseError` objects keep the ``span`` of the inner
    failure (when one is known) even though the message is rewrapped,
    so callers can still point at the offending token. Spans index into
    *text* exactly as given (tokenization skips whitespace in place).
    """
    if not text or not text.strip():
        raise ParseError("empty query text")
    try:
        return _Parser(text).parse()
    except QueryError as exc:
        # Covers ParseError plus AST validation errors (bad columns,
        # aggregates, thresholds) surfaced while building the Query.
        raise ParseError(f"bad query {text!r}: {exc}",
                         span=exc.span) from None
