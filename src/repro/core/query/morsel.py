"""Morsel-driven parallelism for ColumnStore scans.

A *morsel* is one fixed-size slice of a scan's position list. The
:class:`MorselPool` maps a pure worker function over morsels on a
thread pool and yields the results back **in submission order** — the
order-restoring merge that keeps parallel scans bit-identical to the
sequential path regardless of worker count.

Two invariants keep parity exact:

* **Workers are pure.** A worker receives one morsel and returns a
  value derived only from it (typically the selection vector from a
  compiled predicate). It never writes shared state — counters,
  gathers, and aggregation folds all happen on the coordinating thread
  as each morsel's result is consumed, in morsel order, so float folds
  accumulate in exactly the sequential order. Lint rule L008 enforces
  the no-shared-writes discipline for this module.
* **Dispatch is windowed and lazy.** At most ``workers * 2`` morsels
  are in flight; further morsels are submitted only as the consumer
  drains results. A downstream LIMIT that abandons the scan therefore
  over-scans by at most the window, keeping the documented bare-LIMIT
  batch-granularity bound.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class MorselPool:
    """Order-preserving parallel map over scan morsels.

    With ``workers <= 1`` the map runs inline with zero threading
    overhead — the default on single-core hosts.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))

    def imap_ordered(self, func: Callable[[T], R],
                     items: Iterable[T]) -> Iterator[R]:
        """Yield ``func(item)`` for each item, in input order."""
        if self.workers == 1:
            for item in items:
                yield func(item)
            return
        window = self.workers * 2
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            pending: deque = deque()
            for item in items:
                pending.append(pool.submit(func, item))
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()


def resolve_workers(configured: int) -> int:
    """Resolve the worker count: 0 means auto (one per CPU core)."""
    if configured > 0:
        return int(configured)
    import os
    return max(os.cpu_count() or 1, 1)
