"""Fused compiled pipelines for the dominant scan shapes.

The vectorized engine's scan->filter->project and
scan->filter->aggregate plans each spend a pipeline stage materializing
an intermediate :class:`~repro.core.query.vectorized.Batch` that the
next operator immediately consumes. Under adaptive execution these two
shapes are *fused*: the compiled predicate closures from
:mod:`repro.core.query.predicates` run straight over the
:class:`~repro.storage.columnar.ColumnStore` buffers, and the selected
positions feed projection gathers or aggregation folds directly — one
operator, one pass, no intermediate batch.

Fused kernels are cached in a :class:`CompiledPlanCache` keyed by
normalized plan shape (table, residual triples, output shape). A kernel
captures column *names* and compiled closures — never buffer
references — so cached kernels survive compaction and mutations; the
cache is invalidated wholesale when the owning DrugTree's
``stats_epoch`` advances (ANALYZE refresh or schema change), with
hit/miss counters in the ``MetricsRegistry``
(``fused.cache_hits`` / ``fused.cache_misses``).

Counter parity with the unfused pipelines is exact: the scan half
counts ``rows_scanned`` per chunk and ``rows_emitted`` per selected
row, and the aggregate half counts one ``rows_emitted`` per output row,
matching ``SeqScanOp`` + ``HashAggregateOp`` on the row engine.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.query.ast import REMOTE_DETAIL_COLUMNS
from repro.core.query.logical import (
    LogicalAggregate,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from repro.core.query.physical import ExecCounters, _AggState
from repro.core.query.predicates import compile_columns
from repro.core.query.vectorized import (
    Batch,
    VectorOp,
    _filter_positions,
    batch_from_rows,
)
from repro.obs import get_metrics


class FusedKernel:
    """The compiled, data-independent half of a fused pipeline."""

    __slots__ = ("kind", "residual", "compiled", "columns",
                 "aggregates", "group_by")

    def __init__(self, kind: str, residual, columns=None,
                 aggregates=None, group_by=None) -> None:
        self.kind = kind  # "project" | "aggregate"
        self.residual = residual
        self.compiled = compile_columns(residual)
        self.columns = columns
        self.aggregates = aggregates
        self.group_by = group_by


class CompiledPlanCache:
    """Fused kernels keyed by normalized plan shape.

    One statistics epoch per generation: when the epoch advances the
    whole cache is dropped (statistics or schema changed under it).
    Unhashable shapes simply bypass the cache.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: dict[Any, FusedKernel] = {}
        self._epoch: Any = None

    def lookup(self, key: Any, epoch: Any) -> FusedKernel | None:
        if epoch != self._epoch:
            self._entries.clear()
            self._epoch = epoch
        kernel = self._entries.get(key)
        if kernel is not None:
            get_metrics().counter("fused.cache_hits").inc()
        else:
            get_metrics().counter("fused.cache_misses").inc()
        return kernel

    def store(self, key: Any, epoch: Any, kernel: FusedKernel) -> None:
        if epoch != self._epoch:
            self._entries.clear()
            self._epoch = epoch
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = kernel

    def __len__(self) -> int:
        return len(self._entries)


def _shape_key(node: LogicalNode, scan: LogicalScan) -> Any:
    residual = tuple((c.column, c.op, c.value) for c in scan.residual)
    if isinstance(node, LogicalProject):
        key = ("project", scan.table, residual, node.columns)
    else:
        assert isinstance(node, LogicalAggregate)
        aggs = tuple((a.func, a.column, a.output_name)
                     for a in node.aggregates)
        key = ("aggregate", scan.table, residual, aggs, node.group_by)
    try:
        hash(key)
    except TypeError:
        return None
    return key


class _FusedScanBase(VectorOp):
    """Shared one-pass scan half of the fused operators."""

    def __init__(self, counters: ExecCounters, store,
                 kernel: FusedKernel, batch_size: int,
                 pool=None, scan_stats=None) -> None:
        super().__init__(counters)
        self.store = store
        self.kernel = kernel
        self.batch_size = batch_size
        self.pool = pool
        #: EXPLAIN ANALYZE stats node for the fused-away scan: fusion
        #: removes the scan operator, not its accounting.
        self.scan_stats = scan_stats

    def _positions(self):
        durable = self.store.table.durable
        if durable is not None and self.kernel.residual:
            positions = durable.scan_positions(
                self.store, self.kernel.residual, self.counters,
            )
            if positions is not None:
                return positions
        return self.store.live_positions()

    def _selected_chunks(self) -> Iterator[list[int]]:
        """Yield the surviving positions of each morsel, in scan order.

        Counters advance on the coordinating thread as results are
        consumed; pool workers only evaluate the pure compiled filter.
        """
        positions = self._positions()
        size = self.batch_size
        chunks = [positions[start:start + size]
                  for start in range(0, len(positions), size)]
        store = self.store
        compiled = self.kernel.compiled
        pool = self.pool
        scan_stats = self.scan_stats
        if scan_stats is not None:
            scan_stats.loops += 1
        if pool is not None and pool.workers > 1 and len(chunks) > 1:
            def work(chunk):
                return _filter_positions(chunk, store, compiled)
            results = pool.imap_ordered(work, chunks)
            for chunk, selected in zip(chunks, results):
                self.counters.rows_scanned += len(chunk)
                self.counters.morsels += 1
                if scan_stats is not None:
                    scan_stats.rows_out += len(selected)
                yield list(selected)
            return
        for chunk in chunks:
            self.counters.rows_scanned += len(chunk)
            selected = list(_filter_positions(chunk, store, compiled))
            if scan_stats is not None:
                scan_stats.rows_out += len(selected)
            yield selected


class FusedScanProjectOp(_FusedScanBase):
    """scan->filter->project in one pass over ColumnStore buffers."""

    def batches(self) -> Iterator[Batch]:
        out_columns = self.kernel.columns
        unique = tuple(dict.fromkeys(out_columns))
        store = self.store
        for selected in self._selected_chunks():
            if not selected:
                continue
            self.counters.rows_emitted += len(selected)
            columns = {name: store.gather(name, selected)
                       for name in unique}
            yield self._emit(Batch(out_columns, columns, len(selected)))


class FusedScanAggregateOp(_FusedScanBase):
    """scan->filter->aggregate in one pass over ColumnStore buffers.

    Folds accumulate per selected chunk in scan order, so float
    results are bit-identical to the row engine's one-row-at-a-time
    folds regardless of batch size or worker count.
    """

    def batches(self) -> Iterator[Batch]:
        kernel = self.kernel
        aggregates = kernel.aggregates
        group_by = kernel.group_by
        store = self.store
        groups: dict[Any, dict[str, _AggState]] = {}
        saw_rows = False
        for selected in self._selected_chunks():
            if not selected:
                continue
            self.counters.rows_emitted += len(selected)
            saw_rows = True
            # One gather per distinct column per chunk, shared by every
            # aggregate that folds it (mean(x) + max(x) read one buffer).
            gathered: dict[str, list] = {}
            for agg in aggregates:
                if agg.column != "*" and agg.column not in gathered:
                    gathered[agg.column] = store.gather(agg.column,
                                                        selected)
            if group_by is None:
                states = groups.setdefault(None, {
                    agg.output_name: _AggState() for agg in aggregates
                })
                for agg in aggregates:
                    state = states[agg.output_name]
                    if agg.column == "*":
                        state.count += len(selected)
                    else:
                        state.fold_many(gathered[agg.column])
            else:
                keys = store.gather(group_by, selected)
                folds = [
                    (agg.output_name,
                     None if agg.column == "*"
                     else gathered[agg.column])
                    for agg in aggregates
                ]
                for i, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = groups[key] = {
                            agg.output_name: _AggState()
                            for agg in aggregates
                        }
                    for name, values in folds:
                        state = states[name]
                        if values is None:
                            state.count += 1
                        else:
                            state.fold(values[i])
        if not saw_rows and group_by is None:
            groups[None] = {
                agg.output_name: _AggState() for agg in aggregates
            }
        out_rows = []
        for key in sorted(groups, key=repr):
            states = groups[key]
            out: dict[str, Any] = {}
            if group_by is not None:
                out[group_by] = key
            for agg in aggregates:
                out[agg.output_name] = states[agg.output_name].result(
                    agg.func
                )
            self.counters.rows_emitted += 1
            out_rows.append(out)
        if out_rows:
            yield self._emit(batch_from_rows(out_rows))


def try_fuse(lowering, node: LogicalNode,
             stats=None) -> VectorOp | None:
    """Build a fused operator for *node* if its shape allows, else None.

    Called from ``VectorizedLowering._lower`` under adaptive execution
    only; explicit ``execution_mode="vectorized"`` keeps the unfused
    operator pipeline byte-for-byte.
    """
    scan = getattr(node, "child", None)
    if not isinstance(scan, LogicalScan) or scan.access != "seq":
        return None
    table = lowering.engine.drugtree.tables.get(scan.table)
    if table is None:
        return None
    store = table.column_store()
    names = set(store.column_names)
    if isinstance(node, LogicalProject):
        if any(c in REMOTE_DETAIL_COLUMNS for c in node.columns):
            return None
        if not all(c in names for c in node.columns):
            return None
        kind = "project"
    elif isinstance(node, LogicalAggregate):
        if node.group_by is not None and node.group_by not in names:
            return None
        if not all(agg.column == "*" or agg.column in names
                   for agg in node.aggregates):
            return None
        kind = "aggregate"
    else:
        return None

    kernel = None
    key = _shape_key(node, scan)
    cache = lowering.plan_cache
    epoch = getattr(lowering.engine.drugtree, "stats_epoch", None)
    if cache is not None and key is not None:
        kernel = cache.lookup(key, epoch)
    if kernel is None:
        if kind == "project":
            kernel = FusedKernel(kind, scan.residual,
                                 columns=node.columns)
        else:
            kernel = FusedKernel(kind, scan.residual,
                                 aggregates=node.aggregates,
                                 group_by=node.group_by)
        if cache is not None and key is not None:
            cache.store(key, epoch, kernel)
    lowering.counters.fused_pipelines += 1
    scan_stats = None
    if stats is not None:
        # Keep the fused-away scan visible in operator actuals.
        scan_stats = stats.child(scan.describe(), scan.estimated_rows)
    cls = FusedScanProjectOp if kind == "project" else FusedScanAggregateOp
    return cls(lowering.counters, store, kernel, lowering.batch_size,
               pool=lowering.pool, scan_stats=scan_stats)
