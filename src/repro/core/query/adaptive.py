"""Statistics-driven engine selection for adaptive execution.

``execution_mode="adaptive"`` (the default) prices every optimized
logical plan twice — once in row terms, once in vectorized terms — using
the ANALYZE statistics already flowing through the
:class:`~repro.core.query.cards.CardinalityEstimator`, then runs the
plan on whichever engine is cheaper:

* Small index-probe lookups stay on the row engine: a handful of
  matches can never amortize ``VEC_SETUP_COST`` (lowering, predicate
  compilation, ColumnStore batch plumbing).
* Wide sequential scans and aggregates go vectorized, with a batch size
  scaled to the widest scan (``adaptive_batch_size``) and, where the
  plan shape allows, fused scan->filter->project/aggregate pipelines
  (:mod:`repro.core.query.fused`).
* Plans with no batch form at all — provably empty, materialized clade
  fast path, nested-loop joins — are forced to the row engine rather
  than paying the ``RowSourceAdapterOp`` detour.

The choice, both costs, and the reason are surfaced in EXPLAIN
ANALYZE's ``-- execution:`` trailer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import cost as cost_model
from repro.core.query.logical import (
    LogicalAggregate,
    LogicalCladeAggregate,
    LogicalEmpty,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from repro.core.query.morsel import resolve_workers


@dataclass(frozen=True)
class EngineChoice:
    """Outcome of costing one plan in both row and vectorized terms."""

    mode: str  # "row" | "vectorized"
    row_cost: float
    vec_cost: float
    reason: str
    batch_size: int
    workers: int
    #: Scan->filter->project/aggregate shapes the lowering can fuse.
    fusible: int = 0


class _Survey:
    """What the cost walk learned about one logical plan."""

    def __init__(self) -> None:
        self.row_cost = 0.0
        self.vec_extra = 0.0  # on top of VEC_SETUP_COST
        self.fusible = 0
        self.row_only_reason: str | None = None
        self.widest_scan = 0.0
        self._pending = []  # (kind, *args) priced once batch size known

    def price(self, batch_size: int) -> float:
        vec = cost_model.VEC_SETUP_COST + self.vec_extra
        for entry in self._pending:
            kind = entry[0]
            if kind == "seq":
                _, rows, residuals, fused = entry
                vec += cost_model.vec_seq_scan_cost(
                    rows, residuals, batch_size, fused=fused).total
            elif kind == "index":
                _, rows, residuals = entry
                vec += cost_model.vec_index_cost(
                    rows, residuals, batch_size).total
            else:  # aggregate
                _, rows = entry
                vec += cost_model.vec_aggregate_cost(rows, batch_size).total
        return vec


def _output_rows(node: LogicalNode) -> float:
    """Rough output cardinality, for pricing downstream operators."""
    if isinstance(node, (LogicalScan, LogicalJoin)):
        return max(node.estimated_rows, 0.0)
    if isinstance(node, LogicalAggregate):
        return 16.0 if node.group_by else 1.0
    children = node.children()
    if children:
        return _output_rows(children[0])
    return 0.0


def _is_fusible_scan(node: LogicalNode) -> bool:
    return isinstance(node, LogicalScan) and node.access == "seq"


def _walk(node: LogicalNode, estimator, survey: _Survey) -> None:
    if isinstance(node, LogicalEmpty):
        survey.row_only_reason = "provably-empty plan"
        return
    if isinstance(node, LogicalCladeAggregate):
        survey.row_only_reason = "materialized clade fast path"
        return
    if isinstance(node, LogicalScan):
        residuals = len(node.residual)
        if node.access == "seq":
            rows_in = estimator.table_rows(node.table)
            survey.widest_scan = max(survey.widest_scan, rows_in)
            survey.row_cost += cost_model.seq_scan_cost(
                rows_in, residuals).total
            survey._pending.append(("seq", rows_in, residuals, False))
        else:
            matches = max(node.estimated_rows, 0.0)
            survey.widest_scan = max(survey.widest_scan, matches)
            if node.access == "key_set":
                keys = float(len(node.key_set or ()))
                survey.row_cost += cost_model.key_set_cost(
                    keys, matches, residuals).total
            else:
                survey.row_cost += cost_model.index_eq_cost(
                    matches, residuals).total
            survey._pending.append(("index", matches, residuals))
        return
    if isinstance(node, LogicalJoin):
        if node.method == "nested_loop":
            survey.row_only_reason = "nested-loop join has no batch form"
        _walk(node.left, estimator, survey)
        _walk(node.right, estimator, survey)
        return
    if isinstance(node, LogicalAggregate):
        rows_in = _output_rows(node.child)
        survey.row_cost += cost_model.aggregate_cost(rows_in).total
        survey._pending.append(("aggregate", rows_in))
        _walk(node.child, estimator, survey)
        if _is_fusible_scan(node.child):
            survey.fusible += 1
            _mark_last_seq_fused(survey)
        return
    for child in node.children():
        _walk(child, estimator, survey)
    if isinstance(node, LogicalProject) and _is_fusible_scan(node.child):
        survey.fusible += 1
        _mark_last_seq_fused(survey)


def _mark_last_seq_fused(survey: _Survey) -> None:
    """Reprice the most recent unfused seq-scan entry as fused."""
    for i in range(len(survey._pending) - 1, -1, -1):
        entry = survey._pending[i]
        if entry[0] == "seq" and not entry[3]:
            survey._pending[i] = ("seq", entry[1], entry[2], True)
            return


def choice_key(node: LogicalNode) -> tuple:
    """A cheap, hashable key capturing everything the pricing reads.

    Two plans with equal keys cost identically under the same
    statistics epoch, so the executor memoizes :func:`choose_engine`
    on ``(choice_key, epoch)`` — point lookups must not pay a full
    cost walk on every execute.
    """
    if isinstance(node, LogicalScan):
        return ("s", node.table, node.access, len(node.residual),
                node.estimated_rows,
                len(node.key_set) if node.key_set else 0)
    if isinstance(node, LogicalJoin):
        return ("j", node.method, node.estimated_rows,
                choice_key(node.left), choice_key(node.right))
    if isinstance(node, LogicalAggregate):
        return ("a", node.group_by is not None,
                choice_key(node.child))
    if isinstance(node, LogicalEmpty):
        return ("e",)
    if isinstance(node, LogicalCladeAggregate):
        return ("c",)
    return (type(node).__name__,
            *(choice_key(child) for child in node.children()))


def choose_engine(node: LogicalNode, estimator, config) -> EngineChoice:
    """Price *node* both ways and pick the cheaper engine."""
    survey = _Survey()
    _walk(node, estimator, survey)
    batch_size = cost_model.adaptive_batch_size(survey.widest_scan)
    row_cost = survey.row_cost
    if survey.row_only_reason is not None:
        # The batch engine would only wrap the same row operators in an
        # adapter; charge it the setup it cannot win back.
        vec_cost = row_cost + cost_model.VEC_SETUP_COST
        return EngineChoice(
            mode="row", row_cost=row_cost, vec_cost=vec_cost,
            reason=survey.row_only_reason,
            batch_size=batch_size, workers=1, fusible=0,
        )
    vec_cost = survey.price(batch_size)
    if vec_cost < row_cost:
        return EngineChoice(
            mode="vectorized", row_cost=row_cost, vec_cost=vec_cost,
            reason=("wide scan amortizes batch setup "
                    f"(vec {vec_cost:.0f} < row {row_cost:.0f})"),
            batch_size=batch_size,
            workers=resolve_workers(getattr(config, "morsel_workers", 0)),
            fusible=survey.fusible,
        )
    return EngineChoice(
        mode="row", row_cost=row_cost, vec_cost=vec_cost,
        reason=("too few rows to amortize batch setup "
                f"(row {row_cost:.0f} <= vec {vec_cost:.0f})"),
        batch_size=batch_size, workers=1, fusible=0,
    )
