"""Semantic query-result cache with predicate subsumption.

The third "novel mechanism". Beyond exact-match result reuse, the cache
answers a query from a *broader* cached result when it can prove
containment:

* same table set, full-width cached rows (no projection/aggregation);
* every cached predicate is implied by some predicate of the new query
  (so the new result is a subset of the cached rows);
* the cached subtree contains the new query's subtree (interval
  labeling makes this an O(1) check).

On a subsumption hit the engine re-applies the new query's predicates,
subtree range, projection, order and limit to the cached rows — pure
in-memory work, no table or source access.

Any mutation of an overlay table invalidates the whole cache (DrugTree
workloads are read-dominated; finer-grained invalidation is future
work, as it was for the poster).

Invalidated and LRU-evicted entries are not discarded outright: they
move to a bounded *stale* store. When the federation cannot answer — a
source in an outage, a tripped circuit breaker, an expired deadline —
the engine may call :meth:`SemanticCache.lookup_stale` and serve the
last known result, clearly flagged ``stale`` (see docs/RESILIENCE.md).
An answer that is seconds out of date beats no answer on a phone.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.core.labeling import IntervalLabeling
from repro.core.query.ast import Query
from repro.core.query.predicates import compile_residual
from repro.errors import QueryError
from repro.obs import get_metrics, get_tracer


@dataclass
class CacheHit:
    """A cache answer plus how it was derived."""

    rows: list[dict[str, Any]]
    kind: str  # "exact" | "subsumed" | "stale"
    source_signature: str


@dataclass
class _Entry:
    query: Query
    rows: list[dict[str, Any]]


class SemanticCache:
    """LRU semantic result cache."""

    def __init__(self, labeling: IntervalLabeling,
                 capacity: int = 128) -> None:
        if capacity < 1:
            raise QueryError("cache capacity must be positive")
        self.labeling = labeling
        self.capacity = capacity
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        #: Last-known results displaced by invalidation or LRU
        #: eviction; servable only through :meth:`lookup_stale`.
        self._stale: OrderedDict[str, _Entry] = OrderedDict()
        self.exact_hits = 0
        self.subsumption_hits = 0
        self.stale_hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, query: Query) -> CacheHit | None:
        with get_tracer().span("semantic_cache.lookup") as span:
            hit = self._lookup(query)
            span.set("outcome", hit.kind if hit is not None else "miss")
        get_metrics().counter(
            "semantic_cache."
            + (f"{hit.kind}_hits" if hit is not None else "misses")
        ).inc()
        return hit

    def _lookup(self, query: Query) -> CacheHit | None:
        exact = self._entries.get(query.signature())
        if exact is not None:
            self._entries.move_to_end(query.signature())
            self.exact_hits += 1
            return CacheHit(list(exact.rows), "exact", query.signature())

        for signature, entry in self._entries.items():
            if self._subsumes(entry.query, query):
                rows = self._derive(entry.rows, query)
                if rows is None:
                    continue
                self._entries.move_to_end(signature)
                self.subsumption_hits += 1
                return CacheHit(rows, "subsumed", signature)
        self.misses += 1
        return None

    def lookup_stale(self, query: Query) -> CacheHit | None:
        """Last-known result for *query* from the stale store.

        The degradation path: called only when live execution cannot
        answer (open breakers, expired deadline, dark sources). A live
        entry still wins if one exists; otherwise an exact-signature
        stale entry is served, flagged ``"stale"`` so callers surface
        the freshness downgrade instead of hiding it.
        """
        live = self._entries.get(query.signature())
        if live is not None:
            return CacheHit(list(live.rows), "stale", query.signature())
        entry = self._stale.get(query.signature())
        if entry is None:
            return None
        self._stale.move_to_end(query.signature())
        self.stale_hits += 1
        get_metrics().counter("semantic_cache.stale_hits").inc()
        return CacheHit(list(entry.rows), "stale", query.signature())

    def _subsumes(self, cached: Query, query: Query) -> bool:
        """Is the new query's result provably contained in *cached*'s?"""
        if cached.aggregates or cached.select:
            return False  # only full-width row sets can be reused
        if cached.similar is not None or query.similar is not None:
            return False
        if (cached.substructure is not None
                or query.substructure is not None):
            return False
        if cached.limit is not None:
            return False  # truncated results are not reusable
        if cached.tables() != query.tables():
            return False
        for cached_pred in cached.predicates:
            if not any(new_pred.implies(cached_pred)
                       for new_pred in query.predicates):
                return False
        if cached.subtree is not None:
            if query.subtree is None:
                return False
            if not self._subtree_contains(cached.subtree.node_name,
                                          query.subtree.node_name):
                return False
        return True

    def _subtree_contains(self, outer: str, inner: str) -> bool:
        if outer == inner:
            return True
        if not (self.labeling.has_name(outer)
                and self.labeling.has_name(inner)):
            return False
        return self.labeling.is_ancestor(outer, inner)

    def _derive(self, rows: list[dict[str, Any]],
                query: Query) -> list[dict[str, Any]] | None:
        """Recompute *query* over cached full-width rows.

        Predicates compile once per derivation (same closures the
        engines share, see ``predicates.py``) — cached entries can
        hold tens of thousands of full-width rows, and per-row
        ``matches`` dispatch over them used to cost more than simply
        re-executing the query on the adaptive engine.
        """
        residual = compile_residual(query.predicates)
        out = [row for row in rows if residual(row)]
        if query.subtree is not None:
            if not self.labeling.has_name(query.subtree.node_name):
                return None
            low, high = self.labeling.leaf_range(query.subtree.node_name)
            if rows and "leaf_pre" not in rows[0]:
                return None
            out = [row for row in out if low <= row["leaf_pre"] < high]
        if query.aggregates:
            return None  # engine re-aggregates itself; keep cache simple
        if query.order_by is not None:
            column = query.order_by.column
            out.sort(
                key=lambda row: (row.get(column) is not None,
                                 row.get(column)),
                reverse=query.order_by.descending,
            )
        if query.limit is not None:
            out = out[:query.limit]
        if query.select:
            try:
                out = [
                    {column: row[column] for column in query.select}
                    for row in out
                ]
            except KeyError:
                return None
        else:
            out = [dict(row) for row in out]
        return out

    # -- store / invalidate -----------------------------------------------------

    def store(self, query: Query, rows: list[dict[str, Any]]) -> None:
        """Cache a result. Aggregate/limited results are stored for
        exact reuse; full-width results additionally serve subsumption."""
        signature = query.signature()
        self._entries[signature] = _Entry(query, list(rows))
        self._entries.move_to_end(signature)
        self._stale.pop(signature, None)  # live entry shadows stale
        while len(self._entries) > self.capacity:
            evicted_signature, evicted = self._entries.popitem(last=False)
            self._demote(evicted_signature, evicted)

    def invalidate(self) -> None:
        # Demote rather than discard: an invalidated entry is no longer
        # a correct answer, but it is still the *last known* one, which
        # the degradation path may serve (flagged) when sources are dark.
        for signature, entry in self._entries.items():
            self._demote(signature, entry)
        self._entries.clear()
        self.invalidations += 1
        get_metrics().counter("semantic_cache.invalidations").inc()

    def _demote(self, signature: str, entry: _Entry) -> None:
        self._stale[signature] = entry
        self._stale.move_to_end(signature)
        while len(self._stale) > self.capacity:
            self._stale.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        hits = self.exact_hits + self.subsumption_hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "stale_entries": len(self._stale),
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }
