"""Query model, optimizer, executor, and semantic cache."""

from repro.core.query.ast import (
    AGGREGATE_FUNCS,
    COMPARISON_OPS,
    AggregateSpec,
    Comparison,
    HavingCondition,
    OrderBy,
    Query,
    SimilarityFilter,
    SubstructureFilter,
    SubtreeFilter,
)
from repro.core.query.cache import CacheHit, SemanticCache
from repro.core.query.cards import CardinalityEstimator
from repro.core.query.executor import EngineConfig, QueryEngine, QueryResult
from repro.core.query.parser import parse_query
from repro.core.query.planner import Planner, PlannerConfig, PlanReport
from repro.core.query.rules import NormalizedQuery, normalize

__all__ = [
    "AGGREGATE_FUNCS",
    "COMPARISON_OPS",
    "AggregateSpec",
    "CacheHit",
    "CardinalityEstimator",
    "Comparison",
    "EngineConfig",
    "HavingCondition",
    "NormalizedQuery",
    "OrderBy",
    "PlanReport",
    "Planner",
    "PlannerConfig",
    "Query",
    "QueryEngine",
    "QueryResult",
    "SemanticCache",
    "SimilarityFilter",
    "SubstructureFilter",
    "SubtreeFilter",
    "normalize",
    "parse_query",
]
