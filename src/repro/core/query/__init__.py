"""Query model, optimizer, executor, and semantic cache."""

from repro.core.query.ast import (
    AGGREGATE_FUNCS,
    COMPARISON_OPS,
    AggregateSpec,
    Comparison,
    HavingCondition,
    OrderBy,
    Query,
    SimilarityFilter,
    SubstructureFilter,
    SubtreeFilter,
)
from repro.core.query.adaptive import EngineChoice, choose_engine
from repro.core.query.cache import CacheHit, SemanticCache
from repro.core.query.cards import CardinalityEstimator
from repro.core.query.executor import EngineConfig, QueryEngine, QueryResult
from repro.core.query.fused import CompiledPlanCache
from repro.core.query.morsel import MorselPool
from repro.core.query.parser import parse_query
from repro.core.query.planner import Planner, PlannerConfig, PlanReport
from repro.core.query.predicates import (
    compile_columns,
    compile_comparison,
    compile_residual,
)
from repro.core.query.rules import NormalizedQuery, normalize
from repro.core.query.vectorized import Batch, VectorizedLowering

__all__ = [
    "AGGREGATE_FUNCS",
    "COMPARISON_OPS",
    "AggregateSpec",
    "Batch",
    "CacheHit",
    "CompiledPlanCache",
    "CardinalityEstimator",
    "Comparison",
    "EngineChoice",
    "EngineConfig",
    "HavingCondition",
    "MorselPool",
    "NormalizedQuery",
    "OrderBy",
    "PlanReport",
    "Planner",
    "PlannerConfig",
    "Query",
    "QueryEngine",
    "QueryResult",
    "SemanticCache",
    "SimilarityFilter",
    "SubstructureFilter",
    "SubtreeFilter",
    "VectorizedLowering",
    "choose_engine",
    "compile_columns",
    "compile_comparison",
    "compile_residual",
    "normalize",
    "parse_query",
]
