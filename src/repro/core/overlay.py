"""The ligand overlay: local tables plus clade-level aggregates.

"DrugTree is a tool that overlays ligand data on a protein-motivated
phylogenetic tree" — this module is that overlay. Integrated records
land in three typed tables (``proteins``, ``ligands``, ``bindings``),
each binding row carrying the *leaf position* of its protein so subtree
predicates become integer ranges (see :mod:`repro.core.labeling`).

:class:`CladeAggregates` is the second "novel mechanism": every tree
node keeps materialized statistics of the bindings under it, maintained
incrementally in O(depth) per binding insert, so clade-aggregate queries
read one precomputed record instead of re-aggregating the overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.tree import PhyloNode, PhyloTree
from repro.core.labeling import IntervalLabeling
from repro.errors import QueryError
from repro.storage import (
    DurableTableAdapter,
    Schema,
    Table,
    bool_column,
    float_column,
    int_column,
    string_column,
)

PROTEINS_TABLE = "proteins"
LIGANDS_TABLE = "ligands"
BINDINGS_TABLE = "bindings"


def proteins_schema() -> Schema:
    return Schema([
        string_column("protein_id"),
        string_column("organism", nullable=True),
        string_column("family", nullable=True),
        string_column("ec_number", nullable=True),
        float_column("resolution", nullable=True),
        int_column("leaf_pre"),
    ])


def ligands_schema() -> Schema:
    return Schema([
        string_column("ligand_id"),
        string_column("smiles"),
        float_column("molecular_weight"),
        float_column("logp"),
        float_column("tpsa"),
        int_column("hbd"),
        int_column("hba"),
        int_column("rotatable_bonds"),
        int_column("ring_count"),
        bool_column("drug_like"),
    ])


def bindings_schema() -> Schema:
    return Schema([
        string_column("ligand_id"),
        string_column("protein_id"),
        string_column("activity_type"),
        float_column("value_nm"),
        float_column("p_affinity"),
        bool_column("potent"),
        int_column("leaf_pre"),
    ])


def make_overlay_tables(database=None) -> dict[str, Table]:
    """Fresh, empty overlay tables keyed by canonical name.

    With a :class:`~repro.storage.durable.db.Database`, each table gets
    a durable adapter so its mutations flow through the shared WAL.
    """
    def build(name: str, schema: Schema) -> Table:
        durable = (DurableTableAdapter(database, name)
                   if database is not None else None)
        return Table(name, schema, durable=durable)

    return {
        PROTEINS_TABLE: build(PROTEINS_TABLE, proteins_schema()),
        LIGANDS_TABLE: build(LIGANDS_TABLE, ligands_schema()),
        BINDINGS_TABLE: build(BINDINGS_TABLE, bindings_schema()),
    }


#: Join keys between overlay tables, as (left_table, right_table): column.
JOIN_KEYS: dict[tuple[str, str], str] = {
    (BINDINGS_TABLE, PROTEINS_TABLE): "protein_id",
    (PROTEINS_TABLE, BINDINGS_TABLE): "protein_id",
    (BINDINGS_TABLE, LIGANDS_TABLE): "ligand_id",
    (LIGANDS_TABLE, BINDINGS_TABLE): "ligand_id",
}


@dataclass
class _CladeState:
    count: int = 0
    total: float = 0.0
    maximum: float | None = None
    potent: int = 0


class CladeAggregates:
    """Per-clade binding statistics, maintained on the ancestor path.

    Subscribes to the ``bindings`` table: every inserted binding updates
    the O(depth) nodes on the path from its protein's leaf to the root.
    Reads are O(1) per clade. Deletes trigger a subtree recompute for
    ``max`` (the other aggregates fold exactly).
    """

    def __init__(self, tree: PhyloTree, labeling: IntervalLabeling,
                 bindings: Table) -> None:
        self.tree = tree
        self.labeling = labeling
        self.bindings = bindings
        self._paff_pos = bindings.schema.index_of("p_affinity")
        self._potent_pos = bindings.schema.index_of("potent")
        self._leaf_pos = bindings.schema.index_of("leaf_pre")
        self._states: dict[int, _CladeState] = {}
        self._leaf_by_position: dict[int, PhyloNode] = {}
        self._node_by_name: dict[str, PhyloNode] = {}
        self._max_dirty: set[int] = set()
        self.maintenance_ops = 0
        for node in tree.preorder():
            if node.name:
                self._node_by_name.setdefault(node.name, node)
        for leaf in tree.leaves():
            position = labeling.leaf_position(leaf.name)
            self._leaf_by_position[position] = leaf
        for _, row in bindings.scan():
            self._apply(row, sign=+1)
        bindings.add_insert_listener(self._on_insert)
        bindings.add_delete_listener(self._on_delete)

    # -- maintenance ---------------------------------------------------------

    def _path_of(self, row: tuple) -> list[PhyloNode]:
        position = row[self._leaf_pos]
        leaf = self._leaf_by_position.get(position)
        if leaf is None:
            raise QueryError(
                f"binding references unknown leaf position {position}"
            )
        path = [leaf]
        path.extend(leaf.ancestors())
        return path

    def _apply(self, row: tuple, sign: int) -> None:
        p_affinity = row[self._paff_pos]
        potent = row[self._potent_pos]
        for node in self._path_of(row):
            state = self._states.setdefault(node.node_id, _CladeState())
            state.count += sign
            state.total += sign * p_affinity
            state.potent += sign * (1 if potent else 0)
            if sign > 0:
                if state.maximum is None or p_affinity > state.maximum:
                    state.maximum = p_affinity
            elif p_affinity == state.maximum:
                self._max_dirty.add(node.node_id)

    def _on_insert(self, row_id: int, row: tuple) -> None:
        self._apply(row, sign=+1)
        self.maintenance_ops += 1

    def _on_delete(self, row_id: int, row: tuple) -> None:
        self._apply(row, sign=-1)
        self.maintenance_ops += 1

    # -- reads ---------------------------------------------------------------

    def stats_for(self, node: PhyloNode) -> dict[str, float]:
        """Aggregate statistics of the bindings in *node*'s subtree."""
        state = self._states.get(node.node_id)
        if state is None or state.count == 0:
            return {"count": 0.0, "mean": 0.0, "max": 0.0,
                    "potent_fraction": 0.0}
        if node.node_id in self._max_dirty:
            self._recompute_max(node)
            state = self._states[node.node_id]
        return {
            "count": float(state.count),
            "mean": state.total / state.count,
            "max": state.maximum if state.maximum is not None else 0.0,
            "potent_fraction": state.potent / state.count,
        }

    def stats_for_name(self, node_name: str) -> dict[str, float]:
        node = self._node_by_name.get(node_name)
        if node is None:
            raise QueryError(f"no node named {node_name!r}")
        return self.stats_for(node)

    def _recompute_max(self, node: PhyloNode) -> None:
        label = self.labeling.label_of_node(node)
        best: float | None = None
        for _, row in self.bindings.scan():
            position = row[self._leaf_pos]
            if label.leaf_low <= position < label.leaf_high:
                value = row[self._paff_pos]
                if best is None or value > best:
                    best = value
        state = self._states[node.node_id]
        state.maximum = best
        self._max_dirty.discard(node.node_id)
