"""The paper's contribution: DrugTree and its query optimization.

Public surface:

* :class:`DrugTree` — the tree + ligand overlay;
* :class:`QueryEngine` / :class:`EngineConfig` — the optimized engine;
* :class:`NaiveEngine` — the unoptimized federated baseline;
* :class:`IntegrationPipeline` — multi-source integration;
* :func:`parse_query` and the query AST types.
"""

from repro.core.baseline import NaiveEngine, NaiveResult
from repro.core.drugtree import DrugTree
from repro.core.integrate import (
    IntegrationPipeline,
    IntegrationReport,
    is_drug_like,
    ligand_row,
    protein_row,
)
from repro.core.labeling import IntervalLabeling, NodeLabel
from repro.core.persist import (
    drugtree_from_dict,
    drugtree_to_dict,
    load_drugtree,
    save_drugtree,
)
from repro.core.overlay import (
    BINDINGS_TABLE,
    JOIN_KEYS,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
    CladeAggregates,
    make_overlay_tables,
)
from repro.core.query import (
    AggregateSpec,
    Comparison,
    EngineConfig,
    OrderBy,
    Query,
    QueryEngine,
    QueryResult,
    SimilarityFilter,
    SubstructureFilter,
    SubtreeFilter,
    parse_query,
)

__all__ = [
    "BINDINGS_TABLE",
    "JOIN_KEYS",
    "LIGANDS_TABLE",
    "PROTEINS_TABLE",
    "AggregateSpec",
    "CladeAggregates",
    "Comparison",
    "DrugTree",
    "EngineConfig",
    "IntegrationPipeline",
    "IntegrationReport",
    "IntervalLabeling",
    "NaiveEngine",
    "NaiveResult",
    "NodeLabel",
    "OrderBy",
    "Query",
    "QueryEngine",
    "QueryResult",
    "SimilarityFilter",
    "SubstructureFilter",
    "SubtreeFilter",
    "drugtree_from_dict",
    "drugtree_to_dict",
    "is_drug_like",
    "load_drugtree",
    "ligand_row",
    "make_overlay_tables",
    "parse_query",
    "protein_row",
    "save_drugtree",
]
