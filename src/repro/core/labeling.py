"""Euler-tour interval labeling of the phylogenetic tree.

The first of the paper's "novel mechanisms": every tree node is labeled
with a half-open interval ``[pre, post)`` from a single preorder walk,
such that node B lies in the subtree of node A **iff**
``pre_A <= pre_B < post_A``. Leaves additionally receive a dense *leaf
position* in left-to-right order.

This turns the dominant DrugTree query — "everything under this clade" —
from a tree traversal into a range predicate over an integer column,
which a :class:`~repro.storage.index.SortedIndex` answers in
O(log n + answer) instead of O(tree).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.tree import PhyloNode, PhyloTree
from repro.errors import TreeError


@dataclass(frozen=True)
class NodeLabel:
    """Interval label of one tree node."""

    pre: int
    post: int
    depth: int
    leaf_low: int
    leaf_high: int  # exclusive

    @property
    def subtree_size(self) -> int:
        return self.post - self.pre

    @property
    def leaf_count(self) -> int:
        return self.leaf_high - self.leaf_low

    def contains(self, other: "NodeLabel") -> bool:
        """True if *other* lies in this node's subtree (inclusive)."""
        return self.pre <= other.pre < self.post


class IntervalLabeling:
    """Interval labels for every node of one tree.

    Nodes are addressed by *name* for named nodes (all leaves, any
    labeled internal node) and by ``PhyloNode.node_id`` for all nodes.
    """

    def __init__(self, tree: PhyloTree) -> None:
        self.tree = tree
        self._by_node_id: dict[int, NodeLabel] = {}
        self._by_name: dict[str, NodeLabel] = {}
        self._leaf_name_by_position: list[str] = []
        self._label_all()

    def _label_all(self) -> None:
        # Iterative enter/exit walk: deep caterpillar trees must not hit
        # the recursion limit.
        counter = 0
        stack: list[tuple[PhyloNode, int, bool, int, int]] = [
            (self.tree.root, 0, False, 0, 0)
        ]
        while stack:
            node, depth, exiting, pre, leaf_low = stack.pop()
            if exiting:
                label = NodeLabel(
                    pre=pre,
                    post=counter,
                    depth=depth,
                    leaf_low=leaf_low,
                    leaf_high=len(self._leaf_name_by_position),
                )
                self._by_node_id[node.node_id] = label
                if node.name:
                    # Leaf names are unique (tree invariant); internal
                    # labels may repeat (e.g. bootstrap values) — first
                    # one wins, and callers needing exact addressing use
                    # node ids.
                    self._by_name.setdefault(node.name, label)
                continue
            pre = counter
            counter += 1
            leaf_low = len(self._leaf_name_by_position)
            if node.is_leaf:
                self._leaf_name_by_position.append(node.name)
            stack.append((node, depth, True, pre, leaf_low))
            for child in reversed(node.children):
                stack.append((child, depth + 1, False, 0, 0))

    # -- lookup -------------------------------------------------------------

    def label_of(self, name: str) -> NodeLabel:
        try:
            return self._by_name[name]
        except KeyError:
            raise TreeError(f"no labeled node named {name!r}") from None

    def label_of_node(self, node: PhyloNode) -> NodeLabel:
        try:
            return self._by_node_id[node.node_id]
        except KeyError:
            raise TreeError("node does not belong to the labeled tree") from None

    def has_name(self, name: str) -> bool:
        return name in self._by_name

    def leaf_position(self, leaf_name: str) -> int:
        """Dense left-to-right position of a leaf."""
        label = self.label_of(leaf_name)
        if label.leaf_count != 1:
            raise TreeError(f"{leaf_name!r} is not a leaf")
        return label.leaf_low

    def leaf_name_at(self, position: int) -> str:
        try:
            return self._leaf_name_by_position[position]
        except IndexError:
            raise TreeError(f"no leaf at position {position}") from None

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_name_by_position)

    def leaf_range(self, node_name: str) -> tuple[int, int]:
        """Half-open leaf-position range of the named node's subtree."""
        label = self.label_of(node_name)
        return (label.leaf_low, label.leaf_high)

    def leaves_under(self, node_name: str) -> list[str]:
        low, high = self.leaf_range(node_name)
        return self._leaf_name_by_position[low:high]

    def is_ancestor(self, ancestor_name: str, descendant_name: str) -> bool:
        """True if the first named node contains the second (or equals)."""
        return self.label_of(ancestor_name).contains(
            self.label_of(descendant_name)
        )

    def sibling_leaves(self, leaf_name: str, window: int = 2) -> list[str]:
        """Leaves adjacent to *leaf_name* in tree order.

        The prefetch predictor uses this: a user inspecting one leaf is
        likely to inspect its neighbours next.
        """
        position = self.leaf_position(leaf_name)
        low = max(0, position - window)
        high = min(self.leaf_count, position + window + 1)
        return [
            name for name in self._leaf_name_by_position[low:high]
            if name != leaf_name
        ]
