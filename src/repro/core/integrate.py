"""Multi-source integration pipeline.

"The data is being obtained from multiple sources, integrated and then
presented to the user" — this module is that step. It pulls protein
entries, functional annotations, binding activities and compound records
from the federation and lands them in a :class:`DrugTree` overlay.

Three fetch modes are provided because their differences *are*
experiment E3: ``per_item`` issues one round-trip per key (the
unoptimized pattern), ``batched`` uses the sources' batch endpoints
sequentially, and ``concurrent`` scatter/gathers the independent pulls
through a :class:`~repro.sources.scheduler.FetchScheduler` so
overlapping round-trips cost ``max`` virtual latency instead of the
sum (see docs/FEDERATION.md).

The record→row mapping helpers are shared with the naive engine
(:mod:`repro.core.baseline`) so that both systems derive byte-identical
rows from the same federated records — which is what makes the
optimized-vs-naive result-equivalence tests meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bio.distance import distance_matrix
from repro.bio.nj import neighbor_joining
from repro.bio.tree import PhyloTree
from repro.bio.upgma import upgma
from repro.core.drugtree import DrugTree
from repro.errors import QueryError
from repro.obs import WallTimer, get_metrics, get_tracer
from repro.sources.activity import (
    KIND_ACTIVITY_BY_PROTEIN,
    KIND_COMPOUND,
    CompoundEntry,
)
from repro.sources.annotation import KIND_ANNOTATION, AnnotationEntry
from repro.sources.clock import Stopwatch
from repro.sources.protein import KIND_PROTEIN, ProteinEntry
from repro.sources.registry import SourceRegistry
from repro.sources.scheduler import FetchScheduler
from repro.storage.durable import StorageConfig

FETCH_MODES = ("batched", "per_item", "concurrent")


def is_drug_like(molecular_weight: float, logp: float,
                 hbd: int, hba: int) -> bool:
    """Lipinski rule-of-five verdict from stored descriptor columns."""
    violations = sum((
        molecular_weight > 500,
        logp > 5,
        hbd > 5,
        hba > 10,
    ))
    return violations <= 1


def protein_row(protein_id: str,
                entry: ProteinEntry | None,
                annotation: AnnotationEntry | None,
                include_sequence: bool = False) -> dict[str, Any]:
    """Merge a structure entry and its annotation into protein columns.

    ``include_sequence`` additionally carries the sequence through (the
    integrator wants it for the k-mer index; the naive engine's row
    comparison does not, since sequences are not a table column).
    """
    row = {
        "protein_id": protein_id,
        "organism": entry.organism if entry else None,
        "family": (
            (annotation.family if annotation and annotation.family else None)
            or (entry.family if entry and entry.family else None)
        ),
        "ec_number": (annotation.ec_number
                      if annotation and annotation.ec_number else None),
        "resolution": entry.resolution_angstrom if entry else None,
    }
    if include_sequence:
        row["sequence"] = entry.sequence if entry else None
    return row


def ligand_row(compound: CompoundEntry) -> dict[str, Any]:
    """Compound record → ``add_ligand`` keyword arguments."""
    descriptors = {
        "molecular_weight": compound.molecular_weight,
        "logp": compound.logp,
        "tpsa": compound.tpsa,
        "hbd": compound.hbd,
        "hba": compound.hba,
        "rotatable_bonds": compound.rotatable_bonds,
        "ring_count": compound.ring_count,
        "is_drug_like": is_drug_like(compound.molecular_weight,
                                     compound.logp, compound.hbd,
                                     compound.hba),
    }
    return {
        "ligand_id": compound.ligand_id,
        "smiles": compound.smiles,
        "descriptors": descriptors,
    }


@dataclass
class IntegrationReport:
    """What one integration run cost and produced."""

    mode: str
    proteins: int = 0
    ligands: int = 0
    bindings: int = 0
    roundtrips: int = 0
    #: Elapsed virtual time of the run (critical path: under the
    #: concurrent mode overlapping round-trips only count once).
    virtual_latency_s: float = 0.0
    #: Virtual seconds the scheduler saved versus sequential dispatch.
    overlap_saved_s: float = 0.0
    wall_time_s: float = 0.0
    #: Record kind -> fresh/partial/missing, filled when the concurrent
    #: mode ran against a breaker-enabled scheduler (resilient path).
    statuses: dict[str, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return any(status != "fresh" for status in self.statuses.values())

    def as_dict(self) -> dict[str, float]:
        return {
            "mode": self.mode,
            "proteins": self.proteins,
            "ligands": self.ligands,
            "bindings": self.bindings,
            "roundtrips": self.roundtrips,
            "virtual_latency_s": round(self.virtual_latency_s, 4),
            "overlap_saved_s": round(self.overlap_saved_s, 4),
            "wall_time_s": round(self.wall_time_s, 6),
            "statuses": dict(self.statuses),
            "degraded": self.degraded,
        }


class IntegrationPipeline:
    """Pulls federated records into a DrugTree overlay."""

    def __init__(self, registry: SourceRegistry,
                 mode: str = "batched",
                 scheduler: FetchScheduler | None = None) -> None:
        if mode not in FETCH_MODES:
            raise QueryError(
                f"unknown fetch mode {mode!r} (known: {FETCH_MODES})"
            )
        self.registry = registry
        self.mode = mode
        if scheduler is None and mode == "concurrent":
            scheduler = FetchScheduler(registry)
        self.scheduler = scheduler

    # -- fetch helpers ----------------------------------------------------------

    def _fetch_map(self, kind: str, keys: list[str]) -> dict[str, Any]:
        """Fetch *keys* of *kind*, honouring the configured mode."""
        if self.mode == "batched":
            return self.registry.fetch_many(kind, keys)
        found: dict[str, Any] = {}
        for key in keys:
            record = self.registry.fetch(kind, key)
            if record is not None:
                found[key] = record
        return found

    # -- the protein-motivated tree ------------------------------------------

    def build_tree_from_sources(self, protein_ids: list[str] | None = None,
                                method: str = "nj",
                                correction: str = "kimura",
                                clade_prefix: str = "clade",
                                ) -> PhyloTree:
        """Infer the phylogeny from the federation's own sequences.

        This is the "protein-motivated" step of the paper's title: fetch
        each protein's sequence from the structure source, compute
        pairwise evolutionary distances, and build the tree (``nj`` with
        midpoint rooting, or ``upgma``). Internal nodes get stable
        preorder clade names so queries can address them.

        With *protein_ids* omitted, the whole structure source is used.
        """
        if method not in ("nj", "upgma"):
            raise QueryError(f"unknown tree method {method!r}")
        if protein_ids is None:
            protein_ids = self.registry.scan_keys(KIND_PROTEIN)
        if len(protein_ids) < 2:
            raise QueryError("need at least two proteins for a tree")
        entries = self._fetch_map(KIND_PROTEIN, protein_ids)
        missing = [pid for pid in protein_ids if pid not in entries]
        if missing:
            raise QueryError(
                f"structure source has no sequence for {missing[:5]}"
            )
        sequences = [entries[pid].to_sequence() for pid in protein_ids]
        matrix = distance_matrix(sequences, correction=correction)
        if method == "upgma":
            tree = upgma(matrix)
        else:
            tree = neighbor_joining(matrix).reroot_at_midpoint()
        counter = 0
        for node in tree.preorder():
            if not node.is_leaf and not node.name:
                node.name = f"{clade_prefix}_{counter:04d}"
                counter += 1
        return tree

    # -- the pipeline ----------------------------------------------------------

    def build_drugtree(self, tree: PhyloTree,
                       create_indexes: bool = True,
                       storage: "StorageConfig | None" = None,
                       ) -> tuple[DrugTree, IntegrationReport]:
        """Integrate every leaf's records into a fresh DrugTree.

        Tree leaves are the protein ids; proteins absent from the
        structure source still get a (sparse) row so the overlay always
        covers the whole tree. *storage* passes through to
        :class:`DrugTree` — a durable config makes every integrated
        record land in the write-ahead log.
        """
        stats_before = self.registry.combined_stats()
        overlap_before = (self.scheduler.stats.overlap_saved_s
                          if self.scheduler else 0.0)
        report = IntegrationReport(mode=self.mode)

        drugtree = DrugTree(tree, storage=storage)
        protein_ids = tree.leaf_names()
        clock = self.registry.sources()[0].clock

        tracer = get_tracer()
        with tracer.span("integrate.build_drugtree", mode=self.mode,
                         proteins=len(protein_ids)) as span, \
                WallTimer() as timer, Stopwatch(clock) as virtual:
            # With a breaker-enabled scheduler the concurrent mode
            # degrades instead of raising: sources that are dark come
            # back flagged per kind, and the overlay is built from
            # whatever answered.
            resilient = (self.mode == "concurrent"
                         and getattr(self.scheduler, "breakers", None)
                         is not None)
            if self.mode == "concurrent":
                # The three per-protein pulls are independent and hit
                # three distinct sources: one scatter/gather batch.
                requests = [
                    (KIND_PROTEIN, protein_ids),
                    (KIND_ANNOTATION, protein_ids),
                    (KIND_ACTIVITY_BY_PROTEIN, protein_ids),
                ]
                with tracer.span("integrate.fetch_overlapped"):
                    if resilient:
                        outcome = self.scheduler.fetch_all_resilient(
                            requests
                        )
                        gathered = outcome.records
                        report.statuses.update(outcome.statuses)
                    else:
                        gathered = self.scheduler.fetch_all(requests)
                entries = gathered[KIND_PROTEIN]
                annotations = gathered[KIND_ANNOTATION]
                activity_map = gathered[KIND_ACTIVITY_BY_PROTEIN]
            else:
                with tracer.span("integrate.fetch_proteins"):
                    entries = self._fetch_map(KIND_PROTEIN, protein_ids)
                    annotations = self._fetch_map(KIND_ANNOTATION,
                                                  protein_ids)
                with tracer.span("integrate.fetch_activities"):
                    activity_map = self._fetch_map(
                        KIND_ACTIVITY_BY_PROTEIN, protein_ids,
                    )
            for protein_id in protein_ids:
                drugtree.add_protein(**protein_row(
                    protein_id,
                    entries.get(protein_id),
                    annotations.get(protein_id),
                    include_sequence=True,
                ))
                report.proteins += 1

            all_records = [
                record
                for records in activity_map.values()
                for record in records
            ]
            ligand_ids = sorted(
                {record.ligand_id for record in all_records}
            )
            with tracer.span("integrate.fetch_compounds"):
                if resilient:
                    outcome = self.scheduler.fetch_all_resilient(
                        [(KIND_COMPOUND, ligand_ids)]
                    )
                    compounds = outcome.records.get(KIND_COMPOUND, {})
                    report.statuses.update(outcome.statuses)
                elif self.mode == "concurrent":
                    # One kind, but its pages still dispatch in parallel.
                    compounds = self.scheduler.fetch_many(KIND_COMPOUND,
                                                          ligand_ids)
                else:
                    compounds = self._fetch_map(KIND_COMPOUND, ligand_ids)
            for ligand_id in ligand_ids:
                compound = compounds.get(ligand_id)
                if compound is None:
                    continue  # activity without a compound record: skip
                drugtree.add_ligand(**ligand_row(compound))
                report.ligands += 1

            known_ligands = set(compounds)
            for record in all_records:
                if record.ligand_id not in known_ligands:
                    continue
                drugtree.add_binding(record)
                report.bindings += 1

            with tracer.span("integrate.index_and_materialize"):
                if create_indexes:
                    drugtree.create_default_indexes()
                drugtree.refresh_statistics()
            span.set("ligands", report.ligands)
            span.set("bindings", report.bindings)

        stats_after = self.registry.combined_stats()
        report.roundtrips = int(stats_after["roundtrips"]
                                - stats_before["roundtrips"])
        # Elapsed virtual time, not sum-of-charges: identical for the
        # sequential modes, but under "concurrent" overlapping
        # round-trips only count their critical path.
        report.virtual_latency_s = virtual.elapsed
        if self.scheduler is not None:
            report.overlap_saved_s = (
                self.scheduler.stats.overlap_saved_s - overlap_before
            )
        report.wall_time_s = timer.elapsed_s
        metrics = get_metrics()
        metrics.counter("integrate.runs").inc()
        metrics.counter("integrate.roundtrips").inc(report.roundtrips)
        metrics.counter("integrate.bindings").inc(report.bindings)
        if report.degraded:
            metrics.counter("integrate.degraded_runs").inc()
        metrics.histogram("integrate.wall_s").observe(report.wall_time_s)
        return drugtree, report
