"""The naive engine: the "before" system whose lags motivated the paper.

:class:`NaiveEngine` answers the same :class:`~repro.core.query.ast.Query`
AST as the optimized engine, but the way the original DrugTree prototype
did: no local integration, no indexes, no caching, no planning. Every
query

* resolves its subtree by walking the tree node by node,
* re-fetches protein entries, annotations, activities and compounds from
  the remote sources **one key per round-trip**,
* evaluates predicates by brute force after nested-loop joins,
* recomputes ligand fingerprints from SMILES for every similarity query.

Both engines share the record→row mapping in
:mod:`repro.core.integrate`, so on the same federation they return
identical row sets — the benchmarks then compare what it *cost* to
produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bio.tree import PhyloNode, PhyloTree
from repro.chem.fingerprint import circular_fingerprint, tanimoto
from repro.chem.smiles import parse_smiles
from repro.core.integrate import ligand_row, protein_row
from repro.core.overlay import (
    BINDINGS_TABLE,
    JOIN_KEYS,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
)
from repro.core.query.ast import AggregateSpec, Query
from repro.core.query.parser import parse_query
from repro.errors import QueryError
from repro.obs.timing import now_wall
from repro.sources.activity import (
    KIND_ACTIVITY_BY_PROTEIN,
    KIND_COMPOUND,
)
from repro.sources.annotation import KIND_ANNOTATION
from repro.sources.protein import KIND_PROTEIN
from repro.sources.registry import SourceRegistry


@dataclass
class NaiveResult:
    """Rows plus the remote-traffic cost of producing them."""

    rows: list[dict[str, Any]]
    roundtrips: int = 0
    virtual_latency_s: float = 0.0
    wall_time_s: float = 0.0
    nodes_visited: int = 0
    counters: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


class NaiveEngine:
    """Direct federated interpretation of DrugTree queries."""

    def __init__(self, tree: PhyloTree, registry: SourceRegistry) -> None:
        self.tree = tree
        self.registry = registry

    # -- public API -------------------------------------------------------------

    def execute(self, query: Query | str) -> NaiveResult:
        if isinstance(query, str):
            query = parse_query(query)
        started = now_wall()
        before = self.registry.combined_stats()
        nodes_visited = 0

        if query.subtree is not None:
            scope, nodes_visited = self._leaves_under(
                query.subtree.node_name
            )
        else:
            scope = self.tree.leaf_names()
        leaf_positions = {
            name: position
            for position, name in enumerate(self.tree.leaf_names())
        }

        tables = query.tables()
        rows = self._rows_of(tables[0], scope, leaf_positions)
        for table_name in tables[1:]:
            right = self._rows_of(table_name, scope, leaf_positions)
            key = JOIN_KEYS[(tables[0], table_name)]
            rows = [
                {**right_row, **left_row}
                for left_row in rows
                for right_row in right
                if left_row.get(key) == right_row.get(key)
            ]

        rows = [
            row for row in rows
            if all(pred.matches(row.get(pred.column))
                   for pred in query.predicates)
        ]

        if query.similar is not None:
            rows = self._apply_similarity(rows, query)

        if query.substructure is not None:
            rows = self._apply_substructure(rows, query)

        if query.aggregates:
            rows = _aggregate(rows, query.aggregates, query.group_by)
            if query.having:
                rows = [
                    row for row in rows
                    if all(cond.matches(row.get(cond.column))
                           for cond in query.having)
                ]
        elif query.select:
            rows = [
                {column: row.get(column) for column in query.select}
                for row in rows
            ]

        if query.order_by is not None:
            column = query.order_by.column
            rows.sort(
                key=lambda row: (row.get(column) is not None,
                                 row.get(column)),
                reverse=query.order_by.descending,
            )
        if query.limit is not None:
            rows = rows[:query.limit]

        after = self.registry.combined_stats()
        return NaiveResult(
            rows=rows,
            roundtrips=int(after["roundtrips"] - before["roundtrips"]),
            virtual_latency_s=(after["virtual_latency_s"]
                               - before["virtual_latency_s"]),
            wall_time_s=now_wall() - started,
            nodes_visited=nodes_visited,
        )

    # -- scope resolution --------------------------------------------------------

    def _leaves_under(self, node_name: str) -> tuple[list[str], int]:
        """Find the named node by full traversal, then collect leaves."""
        visited = 0
        target: PhyloNode | None = None
        for node in self.tree.preorder():
            visited += 1
            if node.name == node_name:
                target = node
                break
        if target is None:
            raise QueryError(f"no tree node named {node_name!r}")
        leaves = [leaf.name for leaf in target.leaves()]
        visited += target.subtree_size()
        return leaves, visited

    # -- per-table row construction -----------------------------------------------

    def _rows_of(self, table_name: str, scope: list[str],
                 leaf_positions: dict[str, int]) -> list[dict[str, Any]]:
        if table_name == PROTEINS_TABLE:
            return self._protein_rows(scope, leaf_positions)
        if table_name == BINDINGS_TABLE:
            return self._binding_rows(scope, leaf_positions)
        if table_name == LIGANDS_TABLE:
            return self._ligand_rows()
        raise QueryError(f"unknown table {table_name!r}")

    def _protein_rows(self, scope: list[str],
                      leaf_positions: dict[str, int],
                      ) -> list[dict[str, Any]]:
        rows = []
        for protein_id in scope:
            entry = self.registry.fetch(KIND_PROTEIN, protein_id)
            annotation = self.registry.fetch(KIND_ANNOTATION, protein_id)
            row = protein_row(protein_id, entry, annotation)
            row["leaf_pre"] = leaf_positions[protein_id]
            rows.append(row)
        return rows

    def _binding_rows(self, scope: list[str],
                      leaf_positions: dict[str, int],
                      ) -> list[dict[str, Any]]:
        # A binding only exists in the optimized overlay if its compound
        # record exists, so the naive engine applies the same rule —
        # at the cost of one compound fetch per distinct ligand.
        rows = []
        compound_seen: dict[str, bool] = {}
        for protein_id in scope:
            records = self.registry.fetch(KIND_ACTIVITY_BY_PROTEIN,
                                          protein_id) or ()
            for record in records:
                exists = compound_seen.get(record.ligand_id)
                if exists is None:
                    compound = self.registry.fetch(KIND_COMPOUND,
                                                   record.ligand_id)
                    exists = compound is not None
                    compound_seen[record.ligand_id] = exists
                if not exists:
                    continue
                rows.append({
                    "ligand_id": record.ligand_id,
                    "protein_id": record.protein_id,
                    "activity_type": record.activity_type.value,
                    "value_nm": record.value_nm,
                    "p_affinity": record.p_affinity,
                    "potent": record.is_potent,
                    "leaf_pre": leaf_positions[record.protein_id],
                })
        return rows

    def _ligand_rows(self) -> list[dict[str, Any]]:
        # The overlay's ligand set is "every compound referenced by any
        # activity on the tree": the naive engine must discover that set
        # by scanning every leaf's activities.
        ligand_ids: set[str] = set()
        for protein_id in self.tree.leaf_names():
            records = self.registry.fetch(KIND_ACTIVITY_BY_PROTEIN,
                                          protein_id) or ()
            ligand_ids.update(record.ligand_id for record in records)
        rows = []
        for ligand_id in sorted(ligand_ids):
            compound = self.registry.fetch(KIND_COMPOUND, ligand_id)
            if compound is None:
                continue
            mapped = ligand_row(compound)
            descriptors = mapped["descriptors"]
            rows.append({
                "ligand_id": mapped["ligand_id"],
                "smiles": mapped["smiles"],
                "molecular_weight": float(
                    descriptors["molecular_weight"]
                ),
                "logp": float(descriptors["logp"]),
                "tpsa": float(descriptors["tpsa"]),
                "hbd": descriptors["hbd"],
                "hba": descriptors["hba"],
                "rotatable_bonds": descriptors["rotatable_bonds"],
                "ring_count": descriptors["ring_count"],
                "drug_like": descriptors["is_drug_like"],
            })
        return rows

    # -- similarity ---------------------------------------------------------------

    def _apply_similarity(self, rows: list[dict[str, Any]],
                          query: Query) -> list[dict[str, Any]]:
        assert query.similar is not None
        probe = circular_fingerprint(parse_smiles(query.similar.smiles))
        matching: dict[str, bool] = {}
        out = []
        for row in rows:
            smiles = row.get("smiles")
            ligand_id = row.get("ligand_id")
            if smiles is None or ligand_id is None:
                continue
            verdict = matching.get(ligand_id)
            if verdict is None:
                # Recomputed per query — the naive engine keeps nothing.
                fp = circular_fingerprint(parse_smiles(smiles))
                verdict = tanimoto(probe, fp) >= query.similar.threshold
                matching[ligand_id] = verdict
            if verdict:
                out.append(row)
        return out


    def _apply_substructure(self, rows: list[dict[str, Any]],
                            query: Query) -> list[dict[str, Any]]:
        assert query.substructure is not None
        from repro.chem.substructure import SubstructurePattern

        pattern = SubstructurePattern(query.substructure.smiles)
        verdicts: dict[str, bool] = {}
        out = []
        for row in rows:
            smiles = row.get("smiles")
            ligand_id = row.get("ligand_id")
            if smiles is None or ligand_id is None:
                continue
            verdict = verdicts.get(ligand_id)
            if verdict is None:
                # Re-parsed per query: the naive engine keeps nothing.
                verdict = pattern.matches(parse_smiles(smiles))
                verdicts[ligand_id] = verdict
            if verdict:
                out.append(row)
        return out


def _aggregate(rows: list[dict[str, Any]],
               aggregates: tuple[AggregateSpec, ...],
               group_by: str | None) -> list[dict[str, Any]]:
    """Brute-force aggregation with the engine's SQL-style semantics."""
    groups: dict[Any, list[dict[str, Any]]] = {}
    for row in rows:
        key = row.get(group_by) if group_by else None
        groups.setdefault(key, []).append(row)
    if not groups and group_by is None:
        groups[None] = []
    out = []
    for key in sorted(groups, key=repr):
        members = groups[key]
        result: dict[str, Any] = {}
        if group_by is not None:
            result[group_by] = key
        for agg in aggregates:
            if agg.column == "*":
                result[agg.output_name] = len(members)
                continue
            values = [row.get(agg.column) for row in members
                      if row.get(agg.column) is not None]
            if agg.func == "count":
                result[agg.output_name] = len(values)
            elif not values:
                result[agg.output_name] = None
            elif agg.func == "sum":
                result[agg.output_name] = sum(values)
            elif agg.func == "mean":
                result[agg.output_name] = sum(values) / len(values)
            elif agg.func == "min":
                result[agg.output_name] = min(values)
            else:
                result[agg.output_name] = max(values)
        out.append(result)
    return out
