"""The DrugTree: a phylogenetic tree with a ligand-data overlay.

This is the system's central object — "a tool that overlays ligand data
on a protein-motivated phylogenetic tree". It owns:

* the :class:`~repro.bio.tree.PhyloTree` and its interval labeling;
* the three overlay tables (``proteins``, ``ligands``, ``bindings``);
* the materialized per-clade aggregates;
* the ligand fingerprint library for similarity search;
* table statistics for the optimizer.

Use :meth:`DrugTree.build` for the common case, or construct empty and
populate through :meth:`add_protein` / :meth:`add_ligand` /
:meth:`add_binding` (which is what the integration pipeline does).
"""

from __future__ import annotations

from typing import Any

from repro.bio.seq import ProteinSequence
from repro.bio.seqsearch import KmerIndex, SearchHit
from repro.bio.tree import PhyloTree
from repro.chem.affinity import BindingRecord
from repro.chem.fingerprint import Fingerprint, circular_fingerprint
from repro.chem.mol import Molecule
from repro.chem.search import FingerprintIndex
from repro.chem.smiles import parse_smiles
from repro.core.labeling import IntervalLabeling
from repro.core.overlay import (
    BINDINGS_TABLE,
    LIGANDS_TABLE,
    PROTEINS_TABLE,
    CladeAggregates,
    make_overlay_tables,
)
from repro.errors import QueryError
from repro.obs import get_metrics, get_tracer
from repro.storage.durable import Database, StorageConfig
from repro.storage.statistics import TableStatistics, analyze
from repro.storage.table import Table

#: A table is re-ANALYZEd once it has seen more than
#: ``max(STALE_MIN_MUTATIONS, STALE_FRACTION * analyzed_rows)``
#: mutations since its last ANALYZE. Below that, slightly stale
#: statistics only perturb cost estimates — never correctness.
STALE_MIN_MUTATIONS = 16
STALE_FRACTION = 0.1


class DrugTree:
    """A queryable protein-ligand overlay over a phylogenetic tree.

    Purely in-memory by default. With
    ``storage=StorageConfig(durable=True, data_dir=...)`` the overlay
    tables write ahead to one shared
    :class:`~repro.storage.durable.db.Database`, and constructing the
    DrugTree over a non-empty data directory *recovers* it: committed
    rows replay through the normal insert listeners (indexes, column
    stores, and clade aggregates rebuild themselves), and ligand
    fingerprints are recomputed from the stored SMILES. The k-mer
    sequence index is the one piece not recovered — sequences live in
    the federation, not the overlay, matching the snapshot layer's
    derived-state policy.
    """

    def __init__(self, tree: PhyloTree,
                 storage: StorageConfig | None = None) -> None:
        self.tree = tree
        self.labeling = IntervalLabeling(tree)
        self.storage = storage if storage is not None else StorageConfig()
        self.database: Database | None = None
        if self.storage.durable:
            self.database = Database.open(self.storage.data_dir,
                                          self.storage)
        self.tables: dict[str, Table] = make_overlay_tables(self.database)
        self.clade_aggregates = CladeAggregates(
            tree, self.labeling, self.tables[BINDINGS_TABLE],
        )
        self.fingerprints: dict[str, Fingerprint] = {}
        self.fingerprint_index = FingerprintIndex()
        self.molecules: dict[str, Molecule] = {}
        self.sequence_index = KmerIndex()
        self._statistics: dict[str, TableStatistics] | None = None
        self._mutation_listeners: list[Any] = []
        self._known_proteins: set[str] = set()
        self._known_ligands: set[str] = set()
        #: Bumped whenever any table's statistics are (re)collected;
        #: the compiled-plan cache keys on it for invalidation.
        self.stats_epoch = 0
        self._mutations_since_analyze: dict[str, int] = {
            name: 0 for name in self.tables
        }
        for name, table in self.tables.items():
            listener = self._make_mutation_listener(name)
            table.add_insert_listener(listener)
            table.add_delete_listener(listener)
        if self.database is not None:
            self._restore_from_database()

    def _restore_from_database(self) -> None:
        """Replay the committed store into the fresh overlay.

        Rows flow through :meth:`Table.restore_row`, firing the same
        listeners as live inserts — so everything derived (indexes,
        clade aggregates, column stores) rebuilds without its own
        persistence format. Chemistry state (parsed molecules,
        fingerprints, the similarity index) is recomputed from the
        recovered ``smiles`` column.
        """
        with get_tracer().span("durable.recover.overlay") as span:
            restored = 0
            for table in self.tables.values():
                restored += table.durable.restore_into(table)
            proteins = self.tables[PROTEINS_TABLE]
            for row in proteins.scan_rows():
                self._known_proteins.add(
                    proteins.value(row, "protein_id")
                )
            ligands = self.tables[LIGANDS_TABLE]
            for row in ligands.scan_rows():
                ligand_id = ligands.value(row, "ligand_id")
                molecule = parse_smiles(ligands.value(row, "smiles"),
                                        name=ligand_id)
                fingerprint = circular_fingerprint(molecule)
                self.fingerprints[ligand_id] = fingerprint
                self.fingerprint_index.add(ligand_id, fingerprint)
                self.molecules[ligand_id] = molecule
                self._known_ligands.add(ligand_id)
            span.set("rows", restored)

    def close(self) -> None:
        """Flush and release the durable store (no-op in-memory)."""
        if self.database is not None:
            self.database.close()

    # -- population ------------------------------------------------------------

    def add_protein(self, protein_id: str,
                    organism: str | None = None,
                    family: str | None = None,
                    ec_number: str | None = None,
                    resolution: float | None = None,
                    sequence: str | None = None) -> int:
        """Attach one protein record to its tree leaf.

        When *sequence* is given, it also enters the k-mer index so the
        DrugTree can answer "which proteins resemble this sequence?".
        """
        if protein_id in self._known_proteins:
            raise QueryError(f"protein {protein_id!r} already added")
        leaf_pre = self.labeling.leaf_position(protein_id)
        row_id = self.tables[PROTEINS_TABLE].insert({
            "protein_id": protein_id,
            "organism": organism,
            "family": family,
            "ec_number": ec_number,
            "resolution": resolution,
            "leaf_pre": leaf_pre,
        })
        if sequence:
            self.sequence_index.add(
                ProteinSequence(protein_id, sequence)
            )
        self._known_proteins.add(protein_id)
        return row_id

    def search_similar_proteins(self, residues: str,
                                top_k: int = 5) -> list[SearchHit]:
        """K-mer + local-alignment search over the stored sequences."""
        if len(self.sequence_index) == 0:
            raise QueryError(
                "no sequences stored; integrate with sequences or pass "
                "them to add_protein"
            )
        query = ProteinSequence("query", residues)
        return self.sequence_index.search(query, top_k=top_k)

    def add_ligand(self, ligand_id: str, smiles: str,
                   descriptors: dict[str, Any],
                   fingerprint: Fingerprint | None = None) -> int:
        """Register one compound with its descriptors and fingerprint."""
        if ligand_id in self._known_ligands:
            raise QueryError(f"ligand {ligand_id!r} already added")
        row_id = self.tables[LIGANDS_TABLE].insert({
            "ligand_id": ligand_id,
            "smiles": smiles,
            "molecular_weight": float(descriptors["molecular_weight"]),
            "logp": float(descriptors["logp"]),
            "tpsa": float(descriptors["tpsa"]),
            "hbd": int(descriptors["hbd"]),
            "hba": int(descriptors["hba"]),
            "rotatable_bonds": int(descriptors["rotatable_bonds"]),
            "ring_count": int(descriptors["ring_count"]),
            "drug_like": bool(descriptors.get("is_drug_like", True)),
        })
        molecule = parse_smiles(smiles, name=ligand_id)
        if fingerprint is None:
            fingerprint = circular_fingerprint(molecule)
        self.fingerprints[ligand_id] = fingerprint
        self.fingerprint_index.add(ligand_id, fingerprint)
        self.molecules[ligand_id] = molecule
        self._known_ligands.add(ligand_id)
        return row_id

    def add_binding(self, record: BindingRecord) -> int:
        """Attach one binding measurement (protein must be added first)."""
        if record.protein_id not in self._known_proteins:
            raise QueryError(
                f"binding references unknown protein {record.protein_id!r}"
            )
        leaf_pre = self.labeling.leaf_position(record.protein_id)
        return self.tables[BINDINGS_TABLE].insert({
            "ligand_id": record.ligand_id,
            "protein_id": record.protein_id,
            "activity_type": record.activity_type.value,
            "value_nm": record.value_nm,
            "p_affinity": record.p_affinity,
            "potent": record.is_potent,
            "leaf_pre": leaf_pre,
        })

    # -- physical design ---------------------------------------------------------

    def create_default_indexes(self) -> None:
        """The physical design the optimized engine assumes.

        Hash indexes on every join/lookup key, sorted indexes on the
        interval-labeling column and the numeric columns queries range
        over. Idempotent-by-name is not attempted: call once.
        """
        bindings = self.tables[BINDINGS_TABLE]
        bindings.create_index(["leaf_pre"], kind="sorted")
        bindings.create_index(["protein_id"], kind="hash")
        bindings.create_index(["ligand_id"], kind="hash")
        bindings.create_index(["p_affinity"], kind="sorted")
        proteins = self.tables[PROTEINS_TABLE]
        proteins.create_index(["protein_id"], kind="hash")
        proteins.create_index(["leaf_pre"], kind="sorted")
        proteins.create_index(["organism"], kind="hash")
        proteins.create_index(["family"], kind="hash")
        ligands = self.tables[LIGANDS_TABLE]
        ligands.create_index(["ligand_id"], kind="hash")
        ligands.create_index(["molecular_weight"], kind="sorted")
        ligands.create_index(["logp"], kind="sorted")

    def refresh_statistics(self) -> dict[str, TableStatistics]:
        """ANALYZE every overlay table; call after bulk loading."""
        self._statistics = {
            name: analyze(table) for name, table in self.tables.items()
        }
        for name in self.tables:
            self._mutations_since_analyze[name] = 0
        self.stats_epoch += 1
        return self._statistics

    def _analyze_table(self, name: str) -> TableStatistics:
        """Re-ANALYZE one table and reset its staleness counter."""
        stats = analyze(self.tables[name])
        if self._statistics is None:
            self._statistics = {}
        self._statistics[name] = stats
        self._mutations_since_analyze[name] = 0
        self.stats_epoch += 1
        return stats

    def _stale_table_names(self) -> list[str]:
        """Tables whose mutation count since ANALYZE crossed threshold."""
        if self._statistics is None:
            return sorted(self.tables)
        stale = []
        for name in self.tables:
            count = self._mutations_since_analyze.get(name, 0)
            if not count:
                continue
            analyzed = self._statistics.get(name)
            if analyzed is None:
                stale.append(name)
                continue
            threshold = max(STALE_MIN_MUTATIONS,
                            int(STALE_FRACTION * analyzed.row_count))
            if count > threshold:
                stale.append(name)
        return stale

    def stale_tables(self) -> list[str]:
        """Names of tables with stale statistics; updates the gauge."""
        stale = self._stale_table_names()
        get_metrics().gauge("stats.stale_tables").set(len(stale))
        return stale

    @property
    def statistics(self) -> dict[str, TableStatistics]:
        if self._statistics is None:
            return self.refresh_statistics()
        for name in self._stale_table_names():
            self._analyze_table(name)
        return self._statistics

    def add_mutation_listener(self, listener) -> None:
        """Called on any overlay change (the semantic cache hooks this)."""
        self._mutation_listeners.append(listener)

    def _make_mutation_listener(self, name: str):
        def on_mutation(row_id: int, row: tuple) -> None:
            self._mutations_since_analyze[name] = (
                self._mutations_since_analyze.get(name, 0) + 1
            )
            for listener in self._mutation_listeners:
                listener()
        return on_mutation

    # -- convenience reads ---------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        return self.labeling.leaf_count

    @property
    def protein_count(self) -> int:
        return len(self._known_proteins)

    @property
    def ligand_count(self) -> int:
        return len(self._known_ligands)

    @property
    def binding_count(self) -> int:
        return self.tables[BINDINGS_TABLE].row_count

    def clade_stats(self, node_name: str) -> dict[str, float]:
        """Materialized binding statistics of one named clade."""
        return self.clade_aggregates.stats_for_name(node_name)

    def bindings_for_protein(self, protein_id: str) -> list[dict[str, Any]]:
        table = self.tables[BINDINGS_TABLE]
        index = table.index_on("protein_id")
        if index is not None:
            return [table.get_dict(row_id)
                    for row_id in index.lookup(protein_id)]
        return [
            table.schema.row_as_dict(row)
            for row in table.scan_rows()
            if table.value(row, "protein_id") == protein_id
        ]

    def __repr__(self) -> str:
        return (
            f"DrugTree(leaves={self.leaf_count}, "
            f"proteins={self.protein_count}, ligands={self.ligand_count}, "
            f"bindings={self.binding_count})"
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, tree: PhyloTree,
              proteins: list[dict[str, Any]] | None = None,
              ligands: list[dict[str, Any]] | None = None,
              bindings: list[BindingRecord] | None = None,
              create_indexes: bool = True,
              storage: StorageConfig | None = None) -> "DrugTree":
        """Assemble a DrugTree from in-memory records.

        ``proteins`` entries are keyword dicts for :meth:`add_protein`
        (``protein_id`` required); ``ligands`` entries for
        :meth:`add_ligand` (``ligand_id``, ``smiles``, ``descriptors``).
        """
        drugtree = cls(tree, storage=storage)
        for protein in proteins or []:
            drugtree.add_protein(**protein)
        for ligand in ligands or []:
            drugtree.add_ligand(**ligand)
        for record in bindings or []:
            drugtree.add_binding(record)
        if create_indexes:
            drugtree.create_default_indexes()
        drugtree.refresh_statistics()
        return drugtree
