"""DrugTree persistence: save and load the integrated overlay.

Integration is the expensive step (it is literally the subject of
experiment E3), so a field deployment integrates once and snapshots the
result. The snapshot is a single JSON document: Newick topology, the
three overlay tables, and the fingerprint library (hex-encoded). Loading
rebuilds indexes, statistics and the materialized clade aggregates from
scratch — those are derived state and cheaper to recompute than to
serialise consistently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bio.tree import parse_newick
from repro.chem.affinity import ActivityType, BindingRecord
from repro.chem.fingerprint import Fingerprint
from repro.core.drugtree import DrugTree
from repro.core.overlay import BINDINGS_TABLE, LIGANDS_TABLE, PROTEINS_TABLE
from repro.errors import QueryError

FORMAT_VERSION = 1


def drugtree_to_dict(drugtree: DrugTree) -> dict[str, Any]:
    """The serialisable snapshot of one DrugTree."""
    tables = drugtree.tables

    def rows_of(name: str) -> list[dict[str, Any]]:
        table = tables[name]
        return [table.schema.row_as_dict(row)
                for row in table.scan_rows()]

    return {
        "format_version": FORMAT_VERSION,
        "newick": drugtree.tree.to_newick(),
        "proteins": rows_of(PROTEINS_TABLE),
        "ligands": rows_of(LIGANDS_TABLE),
        "bindings": rows_of(BINDINGS_TABLE),
        "fingerprints": {
            ligand_id: {
                "bits": format(fp.bits, "x"),
                "n_bits": fp.n_bits,
            }
            for ligand_id, fp in sorted(drugtree.fingerprints.items())
        },
        "sequences": {
            protein_id: sequence.residues
            for protein_id in sorted(
                row[0] for row in tables[PROTEINS_TABLE].scan_rows()
            )
            if (sequence := drugtree.sequence_index.get(protein_id))
            is not None
        },
    }


def drugtree_from_dict(data: dict[str, Any],
                       create_indexes: bool = True) -> DrugTree:
    """Rebuild a DrugTree from a snapshot dict."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise QueryError(
            f"unsupported snapshot format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    drugtree = DrugTree(parse_newick(data["newick"]))

    sequences = data.get("sequences", {})
    for row in data["proteins"]:
        drugtree.add_protein(
            protein_id=row["protein_id"],
            organism=row.get("organism"),
            family=row.get("family"),
            ec_number=row.get("ec_number"),
            resolution=row.get("resolution"),
            sequence=sequences.get(row["protein_id"]),
        )

    fingerprints = data.get("fingerprints", {})
    for row in data["ligands"]:
        ligand_id = row["ligand_id"]
        stored = fingerprints.get(ligand_id)
        fingerprint = None
        if stored is not None:
            fingerprint = Fingerprint(int(stored["bits"], 16),
                                      int(stored["n_bits"]))
        drugtree.add_ligand(
            ligand_id=ligand_id,
            smiles=row["smiles"],
            descriptors={
                "molecular_weight": row["molecular_weight"],
                "logp": row["logp"],
                "tpsa": row["tpsa"],
                "hbd": row["hbd"],
                "hba": row["hba"],
                "rotatable_bonds": row["rotatable_bonds"],
                "ring_count": row["ring_count"],
                "is_drug_like": row["drug_like"],
            },
            fingerprint=fingerprint,
        )

    for row in data["bindings"]:
        drugtree.add_binding(BindingRecord(
            ligand_id=row["ligand_id"],
            protein_id=row["protein_id"],
            activity_type=ActivityType(row["activity_type"]),
            value_nm=row["value_nm"],
        ))

    if create_indexes:
        drugtree.create_default_indexes()
    drugtree.refresh_statistics()
    return drugtree


def save_drugtree(drugtree: DrugTree, path: str | Path) -> Path:
    """Write a snapshot to *path* (JSON); returns the path."""
    target = Path(path)
    payload = drugtree_to_dict(drugtree)
    target.write_text(json.dumps(payload, sort_keys=True), "utf-8")
    return target


def load_drugtree(path: str | Path,
                  create_indexes: bool = True) -> DrugTree:
    """Load a snapshot written by :func:`save_drugtree`."""
    source = Path(path)
    try:
        data = json.loads(source.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise QueryError(f"cannot load snapshot {source}: {exc}") \
            from None
    if not isinstance(data, dict):
        raise QueryError("snapshot must be a JSON object")
    return drugtree_from_dict(data, create_indexes=create_indexes)
