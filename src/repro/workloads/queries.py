"""Query workload generation.

Produces the query mixes the experiments replay: one-off mixed
workloads (E1) and *navigation sessions* (E4) that mimic a scientist
drilling into the tree — start broad, narrow into child clades, re-ask
the same aggregates — which is exactly the access pattern semantic
caching exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chem.generator import Ligand
from repro.core.query.ast import (
    AggregateSpec,
    Comparison,
    OrderBy,
    Query,
    SimilarityFilter,
    SubstructureFilter,
    SubtreeFilter,
)
from repro.errors import WorkloadError
from repro.workloads.families import ProteinFamily

#: Every query kind the generator can draw.
ALL_KINDS: tuple[str, ...] = (
    "subtree_filter", "clade_agg", "organism_filter", "property_range",
    "topk", "similarity", "substructure", "join",
)

#: Default workload mix (kind → weight).
DEFAULT_MIX: dict[str, float] = {
    "subtree_filter": 0.25,
    "clade_agg": 0.25,
    "organism_filter": 0.15,
    "property_range": 0.10,
    "topk": 0.10,
    "similarity": 0.05,
    "join": 0.10,
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one generated workload."""

    n_queries: int = 50
    seed: int = 0
    mix: tuple[tuple[str, float], ...] = tuple(DEFAULT_MIX.items())

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise WorkloadError("need at least one query")
        kinds = dict(self.mix)
        unknown = set(kinds) - set(ALL_KINDS)
        if unknown:
            raise WorkloadError(f"unknown query kinds {sorted(unknown)}")
        if not kinds or sum(kinds.values()) <= 0:
            raise WorkloadError("workload mix must have positive weight")


class QueryGenerator:
    """Draws random queries shaped by a family and ligand library."""

    def __init__(self, family: ProteinFamily, ligands: list[Ligand],
                 seed: int = 0) -> None:
        if not family.clade_names:
            raise WorkloadError("family has no named clades")
        self.family = family
        self.ligands = ligands
        self.rng = random.Random(seed)

    # -- individual query kinds ------------------------------------------------

    def subtree_filter(self, clade: str | None = None) -> Query:
        clade = clade or self.rng.choice(self.family.clade_names)
        threshold = round(self.rng.uniform(5.0, 8.0), 1)
        return Query(
            predicates=(Comparison("p_affinity", ">=", threshold),),
            subtree=SubtreeFilter(clade),
        )

    def clade_agg(self, clade: str | None = None) -> Query:
        clade = clade or self.rng.choice(self.family.clade_names)
        return Query(
            aggregates=(
                AggregateSpec("count", "*"),
                AggregateSpec("mean", "p_affinity"),
                AggregateSpec("max", "p_affinity"),
            ),
            subtree=SubtreeFilter(clade),
        )

    def organism_filter(self) -> Query:
        organism = self.rng.choice(
            sorted(set(self.family.organisms.values()))
        )
        return Query(
            select=("protein_id", "ligand_id", "p_affinity"),
            predicates=(
                Comparison("organism", "=", organism),
                Comparison("potent", "=", True),
            ),
        )

    def property_range(self) -> Query:
        low = round(self.rng.uniform(150.0, 300.0), 1)
        high = low + self.rng.uniform(50.0, 200.0)
        return Query(
            select=("ligand_id", "smiles", "molecular_weight"),
            predicates=(
                Comparison("molecular_weight", ">=", low),
                Comparison("molecular_weight", "<=", round(high, 1)),
                Comparison("drug_like", "=", True),
            ),
        )

    def topk(self) -> Query:
        k = self.rng.choice((5, 10, 20))
        return Query(
            select=("ligand_id", "protein_id", "p_affinity"),
            order_by=OrderBy("p_affinity", descending=True),
            limit=k,
        )

    def similarity(self) -> Query:
        probe = self.rng.choice(self.ligands)
        threshold = round(self.rng.uniform(0.5, 0.8), 2)
        return Query(
            select=("ligand_id", "smiles"),
            similar=SimilarityFilter(probe.smiles, threshold),
        )

    #: Fragments drawn by the substructure query kind — the motifs a
    #: med-chem user actually greps a library for.
    FRAGMENTS = ("c1ccccc1", "c1ccncc1", "C(=O)O", "C(=O)N",
                 "C1CCNCC1", "C(F)(F)F", "c1cc[nH]c1")

    def substructure(self) -> Query:
        fragment = self.rng.choice(self.FRAGMENTS)
        return Query(
            select=("ligand_id", "smiles"),
            substructure=SubstructureFilter(fragment),
        )

    def join(self) -> Query:
        organism = self.rng.choice(
            sorted(set(self.family.organisms.values()))
        )
        return Query(
            select=("protein_id", "ligand_id", "p_affinity", "logp"),
            predicates=(
                Comparison("organism", "=", organism),
                Comparison("logp", "<=", round(self.rng.uniform(1.0, 4.0),
                                               1)),
            ),
        )

    _KINDS = {
        "subtree_filter": subtree_filter,
        "clade_agg": clade_agg,
        "organism_filter": organism_filter,
        "property_range": property_range,
        "topk": topk,
        "similarity": similarity,
        "substructure": substructure,
        "join": join,
    }

    def draw(self, kind: str) -> Query:
        try:
            maker = self._KINDS[kind]
        except KeyError:
            raise WorkloadError(f"unknown query kind {kind!r}") from None
        return maker(self)

    # -- workloads ------------------------------------------------------------

    def workload(self, config: WorkloadConfig) -> list[Query]:
        kinds, weights = zip(*config.mix)
        return [
            self.draw(self.rng.choices(kinds, weights=weights, k=1)[0])
            for _ in range(config.n_queries)
        ]

    def navigation_session(self, steps: int = 10,
                           revisit_probability: float = 0.3,
                           ) -> list[Query]:
        """A drill-down session over the tree.

        Starts at a top clade and walks toward the leaves; each step
        issues the clade aggregate plus a progressively *stricter*
        affinity filter for the current clade, and sometimes re-asks an
        earlier query verbatim. Narrowing clades + tightening filters is
        what makes these sessions subsumption-cacheable.
        """
        if steps < 1:
            raise WorkloadError("session needs at least one step")
        labeled = _clade_children(self.family)
        current = self.family.clade_names[0]
        threshold = 5.0
        history: list[Query] = []
        session: list[Query] = []
        for _ in range(steps):
            if history and self.rng.random() < revisit_probability:
                session.append(self.rng.choice(history))
                continue
            aggregate = self.clade_agg(current)
            filtered = Query(
                predicates=(
                    Comparison("p_affinity", ">=", round(threshold, 1)),
                ),
                subtree=SubtreeFilter(current),
            )
            session.extend((aggregate, filtered))
            history.extend((aggregate, filtered))
            threshold = min(threshold + 0.3, 9.0)
            children = labeled.get(current, [])
            if children:
                current = self.rng.choice(children)
        return session


def _clade_children(family: ProteinFamily) -> dict[str, list[str]]:
    """Named internal children of every named internal node."""
    children: dict[str, list[str]] = {}
    for node in family.tree.preorder():
        if node.is_leaf or not node.name:
            continue
        named = [
            child.name for child in node.children
            if not child.is_leaf and child.name
        ]
        children[node.name] = named
    return children
