"""End-to-end dataset builder: family + ligands + federation.

One call to :func:`build_dataset` produces everything an experiment
needs: a simulated clock, the three populated remote sources behind a
registry, the protein family, and the ligand library. Binding strength
carries *phylogenetic signal* — each ligand binds strongly around a
"center" leaf and decays with tree distance — so clade-level queries
have realistic structure (selective clades exist and are findable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chem.affinity import ActivityType, BindingRecord
from repro.chem.generator import Ligand, generate_library
from repro.core.drugtree import DrugTree
from repro.core.integrate import IntegrationPipeline, IntegrationReport
from repro.errors import WorkloadError
from repro.sources.activity import CompoundEntry, LigandActivitySource
from repro.sources.annotation import AnnotationEntry, AnnotationSource
from repro.sources.base import FaultModel, LatencyModel
from repro.sources.clock import SimulatedClock
from repro.sources.protein import ProteinEntry, ProteinStructureSource
from repro.sources.registry import SourceRegistry
from repro.storage.durable import StorageConfig
from repro.workloads.families import ProteinFamily, make_family

#: Method strings sampled for protein entries.
_METHODS = ("X-RAY DIFFRACTION", "SOLUTION NMR", "ELECTRON MICROSCOPY")


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of one synthetic dataset."""

    n_leaves: int = 60
    n_ligands: int = 150
    seed: int = 0
    sequence_length: int = 100
    branch_scale: float = 0.25
    #: Strongest (center) pAffinity drawn per ligand.
    peak_p_affinity: tuple[float, float] = (6.0, 9.5)
    #: pAffinity lost per unit of tree distance from the center leaf.
    distance_decay: float = 1.2
    #: Gaussian noise added to each measurement (std dev, pAff units).
    noise: float = 0.25
    #: Records below this pAffinity are never measured/recorded.
    detection_floor: float = 4.5
    #: Probability a would-be-detectable interaction was ever assayed.
    assay_coverage: float = 0.65
    #: Per-round-trip base latency of each source, seconds.
    source_latency_s: float = 0.05
    source_per_item_s: float = 0.0005
    source_jitter: float = 0.0
    failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.n_leaves < 2 or self.n_ligands < 1:
            raise WorkloadError("dataset needs >=2 leaves and >=1 ligand")
        if not 0.0 <= self.assay_coverage <= 1.0:
            raise WorkloadError("assay coverage must be in [0, 1]")


@dataclass
class Dataset:
    """A fully wired simulated world."""

    config: DatasetConfig
    clock: SimulatedClock
    family: ProteinFamily
    ligands: list[Ligand]
    bindings: list[BindingRecord]
    registry: SourceRegistry
    protein_source: ProteinStructureSource
    activity_source: LigandActivitySource
    annotation_source: AnnotationSource
    _drugtree: DrugTree | None = field(default=None, repr=False)

    @property
    def tree(self):
        return self.family.tree

    def integrate(self, mode: str = "batched",
                  create_indexes: bool = True,
                  storage: "StorageConfig | None" = None,
                  ) -> tuple[DrugTree, IntegrationReport]:
        """Run the integration pipeline over this dataset's federation."""
        pipeline = IntegrationPipeline(self.registry, mode=mode)
        return pipeline.build_drugtree(self.tree,
                                       create_indexes=create_indexes,
                                       storage=storage)

    def drugtree(self) -> DrugTree:
        """A cached, batched-integration DrugTree for this dataset."""
        if self._drugtree is None:
            self._drugtree, _ = self.integrate()
        return self._drugtree


def _latency(config: DatasetConfig, seed: int) -> LatencyModel:
    return LatencyModel(
        base_s=config.source_latency_s,
        per_item_s=config.source_per_item_s,
        jitter_fraction=config.source_jitter,
        seed=seed,
    )


def generate_bindings(family: ProteinFamily, ligands: list[Ligand],
                      config: DatasetConfig) -> list[BindingRecord]:
    """Draw phylogenetically structured binding records."""
    rng = random.Random(config.seed + 1000)
    names, distances = family.tree.cophenetic_matrix()
    index = {name: i for i, name in enumerate(names)}
    low, high = config.peak_p_affinity
    records: list[BindingRecord] = []
    activity_types = list(ActivityType)
    for ligand in ligands:
        center = rng.choice(names)
        peak = rng.uniform(low, high)
        for protein_id in names:
            distance = float(distances[index[center], index[protein_id]])
            p_affinity = (peak - config.distance_decay * distance
                          + rng.gauss(0.0, config.noise))
            if p_affinity < config.detection_floor:
                continue
            if rng.random() > config.assay_coverage:
                continue
            value_nm = 10.0 ** (9.0 - p_affinity)
            records.append(BindingRecord(
                ligand_id=ligand.ligand_id,
                protein_id=protein_id,
                activity_type=rng.choice(activity_types),
                value_nm=value_nm,
                assay_id=f"assay_{len(records):06d}",
                source="chembl-sim",
            ))
    return records


def build_dataset(config: DatasetConfig | None = None) -> Dataset:
    """Build one complete simulated world from a config."""
    config = config or DatasetConfig()
    rng = random.Random(config.seed)
    family = make_family(
        config.n_leaves,
        seed=config.seed,
        sequence_length=config.sequence_length,
        branch_scale=config.branch_scale,
    )
    ligands = generate_library(config.n_ligands, seed=config.seed + 500)
    bindings = generate_bindings(family, ligands, config)

    clock = SimulatedClock()
    by_protein: dict[str, list[str]] = {}
    for record in bindings:
        by_protein.setdefault(record.protein_id, []).append(
            record.ligand_id
        )

    protein_entries = []
    sequences = {seq.seq_id: seq for seq in family.sequences}
    for protein_id in family.protein_ids:
        bound = by_protein.get(protein_id, [])
        protein_entries.append(ProteinEntry(
            protein_id=protein_id,
            sequence=sequences[protein_id].residues,
            organism=family.organisms[protein_id],
            family=family.families[protein_id],
            resolution_angstrom=round(rng.uniform(1.2, 3.2), 2),
            method=rng.choice(_METHODS),
            ligand_ids=tuple(sorted(set(bound))[:8]),
        ))

    compounds = [
        CompoundEntry(
            ligand_id=ligand.ligand_id,
            smiles=ligand.smiles,
            molecular_weight=ligand.descriptors.molecular_weight,
            logp=ligand.descriptors.logp,
            tpsa=ligand.descriptors.tpsa,
            hbd=ligand.descriptors.hbd,
            hba=ligand.descriptors.hba,
            rotatable_bonds=ligand.descriptors.rotatable_bonds,
            ring_count=ligand.descriptors.ring_count,
        )
        for ligand in ligands
    ]

    annotations = [
        AnnotationEntry(
            protein_id=protein_id,
            go_terms=(f"GO:{4000 + hash(family.families[protein_id]) % 100:07d}",
                      "GO:0005829"),
            ec_number=f"{1 + rng.randrange(6)}.{rng.randrange(20)}."
                      f"{rng.randrange(20)}.{rng.randrange(100)}",
            family=family.families[protein_id],
            keywords=("enzyme", "cytoplasm"),
        )
        for protein_id in family.protein_ids
    ]

    faults = FaultModel(failure_rate=config.failure_rate,
                        seed=config.seed)
    protein_source = ProteinStructureSource(
        clock, protein_entries, latency=_latency(config, 1), faults=faults,
    )
    activity_source = LigandActivitySource(
        clock, compounds, bindings,
        latency=_latency(config, 2), faults=faults,
    )
    annotation_source = AnnotationSource(
        clock, annotations, latency=_latency(config, 3), faults=faults,
    )
    registry = SourceRegistry()
    registry.register(protein_source)
    registry.register(activity_source)
    registry.register(annotation_source)

    return Dataset(
        config=config,
        clock=clock,
        family=family,
        ligands=ligands,
        bindings=bindings,
        registry=registry,
        protein_source=protein_source,
        activity_source=activity_source,
        annotation_source=annotation_source,
    )
