"""Experiment harness: measurement records and text tables.

The benchmarks print their results through :class:`TextTable` so every
experiment reports the same way the paper's evaluation would — aligned
rows of parameters, latencies, and speedups — and ``EXPERIMENTS.md``
can quote the output verbatim.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkloadError
from repro.obs import WallTimer


class TextTable:
    """A fixed-header, aligned, plain-text results table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise WorkloadError("table needs headers")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise WorkloadError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_format_cell(value) for value in values])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(
            header.ljust(widths[i])
            for i, header in enumerate(self.headers)
        ))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(
                cell.rjust(widths[i]) if _is_numeric(cell)
                else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            ))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("x", "")
    try:
        float(stripped)
        return True
    except ValueError:
        return False


@dataclass
class Measurement:
    """One measured configuration within an experiment."""

    label: str
    wall_time_s: float = 0.0
    virtual_latency_s: float = 0.0
    roundtrips: int = 0
    rows: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


def time_wall(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run *fn* once, returning (result, wall seconds)."""
    with WallTimer() as timer:
        result = fn()
    return result, timer.elapsed_s


def speedup(baseline: float, optimized: float) -> str:
    """Human-readable speedup factor, guarding division by ~zero."""
    if optimized <= 0:
        return "inf"
    return f"{baseline / optimized:.1f}x"


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (fraction in [0, 1])."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]
