"""Dataset export in standard bioinformatics interchange formats.

A downstream user should be able to take a synthetic world out of this
library and into their own tools: sequences as FASTA, the tree as
Newick, compounds as a SMILES file, bindings and protein metadata as
CSV. The CSV reader round-trips bindings so exported worlds can be
re-ingested.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.bio.seq import write_fasta
from repro.chem.affinity import ActivityType, BindingRecord
from repro.errors import WorkloadError
from repro.workloads.datasets import Dataset

#: Column order of bindings.csv.
BINDING_COLUMNS = (
    "ligand_id", "protein_id", "activity_type", "value_nm",
    "p_affinity", "assay_id", "source",
)

#: Column order of proteins.csv.
PROTEIN_COLUMNS = ("protein_id", "organism", "family")


def export_dataset(dataset: Dataset,
                   directory: str | Path) -> dict[str, Path]:
    """Write the dataset's standard-format files into *directory*.

    Returns a mapping from artefact name to the written path:
    ``sequences`` (FASTA), ``tree`` (Newick), ``ligands`` (SMILES),
    ``bindings`` and ``proteins`` (CSV).
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}

    paths["sequences"] = target / "sequences.fasta"
    paths["sequences"].write_text(
        write_fasta(dataset.family.sequences), "utf-8",
    )

    paths["tree"] = target / "tree.nwk"
    paths["tree"].write_text(dataset.tree.to_newick() + "\n", "utf-8")

    paths["ligands"] = target / "ligands.smi"
    lines = [
        f"{ligand.smiles}\t{ligand.ligand_id}"
        for ligand in dataset.ligands
    ]
    paths["ligands"].write_text("\n".join(lines) + "\n", "utf-8")

    paths["bindings"] = target / "bindings.csv"
    with paths["bindings"].open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(BINDING_COLUMNS)
        for record in dataset.bindings:
            writer.writerow([
                record.ligand_id,
                record.protein_id,
                record.activity_type.value,
                f"{record.value_nm:.6g}",
                f"{record.p_affinity:.4f}",
                record.assay_id,
                record.source,
            ])

    paths["proteins"] = target / "proteins.csv"
    with paths["proteins"].open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(PROTEIN_COLUMNS)
        for protein_id in dataset.family.protein_ids:
            writer.writerow([
                protein_id,
                dataset.family.organisms[protein_id],
                dataset.family.families[protein_id],
            ])
    return paths


def load_bindings_csv(path: str | Path) -> list[BindingRecord]:
    """Read a ``bindings.csv`` written by :func:`export_dataset`."""
    source = Path(path)
    try:
        text = source.read_text("utf-8")
    except OSError as exc:
        raise WorkloadError(f"cannot read {source}: {exc}") from None
    records: list[BindingRecord] = []
    reader = csv.DictReader(text.splitlines())
    missing = set(BINDING_COLUMNS[:4]) - set(reader.fieldnames or ())
    if missing:
        raise WorkloadError(
            f"bindings CSV is missing columns {sorted(missing)}"
        )
    for line_number, row in enumerate(reader, start=2):
        try:
            records.append(BindingRecord(
                ligand_id=row["ligand_id"],
                protein_id=row["protein_id"],
                activity_type=ActivityType(row["activity_type"]),
                value_nm=float(row["value_nm"]),
                assay_id=row.get("assay_id", ""),
                source=row.get("source", ""),
            ))
        except (KeyError, ValueError) as exc:
            raise WorkloadError(
                f"bad bindings row at line {line_number}: {exc}"
            ) from None
    return records


def load_smiles_file(path: str | Path) -> list[tuple[str, str]]:
    """Read a ``.smi`` file as (smiles, name) pairs."""
    source = Path(path)
    try:
        text = source.read_text("utf-8")
    except OSError as exc:
        raise WorkloadError(f"cannot read {source}: {exc}") from None
    pairs: list[tuple[str, str]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(None, 1)
        smiles = parts[0]
        name = parts[1].strip() if len(parts) > 1 else f"mol_{line_number}"
        pairs.append((smiles, name))
    return pairs
