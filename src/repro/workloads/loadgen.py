"""Open-loop load generation: thousands of phones in virtual time.

The serving experiments need traffic that behaves like a real install
base, not like a benchmark loop. Three properties matter:

* **Open loop** — gesture sessions arrive as a Poisson process whose
  rate is set by the *population*, not by the server's speed. When the
  server falls behind, arrivals keep coming; that is the regime where
  naive queueing collapses and admission control earns its keep.
* **Zipf skew** — navigation targets are drawn Zipf-distributed over
  the family's clades and proteins: a few hot clades soak most of the
  taps (which is what makes the shared cache front effective), with a
  long tail keeping it honest.
* **Sessions, not requests** — each arrival is a whole gesture session
  planned by the same Markov model experiment E5 replays
  (:func:`repro.mobile.workload.plan_session`), its taps spread by
  exponential think times.

Everything is drawn from seeded RNGs keyed by ``(seed, tenant index)``,
so a load description maps to one exact request list, bit-for-bit,
every run.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import Sequence

from repro.errors import ServingError
from repro.mobile.workload import plan_session
from repro.serving.frontend import Request

#: DTQL templates a session's query gestures instantiate (same shapes
#: as the E5 mobile replay, so the engine-side cost profile matches).
_QUERY_TEMPLATES = (
    "SELECT count(*), mean(p_affinity), max(p_affinity) "
    "IN SUBTREE '{clade}'",
    "SELECT ligand_id, p_affinity FROM bindings "
    "WHERE p_affinity >= {threshold} IN SUBTREE '{clade}' "
    "ORDER BY p_affinity DESC LIMIT 10",
)


class ZipfSampler:
    """Draw items with probability proportional to ``1 / rank**s``.

    Rank order is the order of *items*; the caller shuffles first if it
    wants a different popularity assignment. Sampling is O(log n) via a
    cumulative-weight table.
    """

    def __init__(self, items: Sequence[str], s: float = 1.1) -> None:
        if not items:
            raise ServingError("zipf sampler needs at least one item")
        if s < 0:
            raise ServingError("zipf exponent must be >= 0")
        self.items = list(items)
        weights = [1.0 / (rank ** s)
                   for rank in range(1, len(self.items) + 1)]
        self._cumulative = list(accumulate(weights))

    def sample(self, rng: random.Random) -> str:
        point = rng.random() * self._cumulative[-1]
        return self.items[bisect_left(self._cumulative, point)]


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered traffic."""

    tenant_id: str
    #: Target offered request rate, requests per virtual second.
    rps: float

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ServingError("tenant load needs a tenant id")
        if self.rps <= 0:
            raise ServingError("tenant load rate must be positive")


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one generated traffic interval."""

    tenants: tuple[TenantLoad, ...] = (TenantLoad("default", 20.0),)
    duration_s: float = 60.0
    #: Gestures per session (Markov-planned).
    session_steps: int = 8
    #: Mean exponential think time between a session's gestures.
    think_mean_s: float = 2.0
    #: Fraction of render gestures that become details taps.
    details_fraction: float = 0.15
    #: Zipf exponent for clade / protein popularity.
    zipf_s: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServingError("load needs at least one tenant")
        if self.duration_s <= 0:
            raise ServingError("load duration must be positive")
        if self.session_steps < 1:
            raise ServingError("sessions need at least one step")
        if self.think_mean_s < 0:
            raise ServingError("think time must be >= 0")
        if not 0.0 <= self.details_fraction <= 1.0:
            raise ServingError("details fraction must be in [0, 1]")


def generate_load(clades: Sequence[str], proteins: Sequence[str],
                  config: LoadConfig | None = None) -> list[Request]:
    """Generate the full request list for one traffic interval.

    *clades* are render/query targets; *proteins* are details targets.
    Requests are returned unsorted (the frontend orders by arrival);
    ``seq`` breaks arrival ties deterministically.
    """
    config = config or LoadConfig()
    if not clades:
        raise ServingError("load generation needs clade names")
    if not proteins:
        raise ServingError("load generation needs protein ids")
    clade_sampler = ZipfSampler(clades, s=config.zipf_s)
    protein_sampler = ZipfSampler(proteins, s=config.zipf_s)
    requests: list[Request] = []
    seq = 0
    for tenant_index, load in enumerate(config.tenants):
        # Str seeds hash via SHA-512 — stable across processes, unlike
        # tuple seeds (salted ``hash()``).
        rng = random.Random(
            f"{config.seed}:{tenant_index}:{load.tenant_id}")
        # Sessions arrive Poisson at rps / steps, so the offered
        # *gesture* rate lands on the tenant's target.
        session_rate = load.rps / config.session_steps
        arrival = 0.0
        session_index = 0
        while True:
            arrival += rng.expovariate(session_rate)
            if arrival >= config.duration_s:
                break
            session_key = f"{load.tenant_id}-u{session_index}"
            session_index += 1
            plan = plan_session(
                config.session_steps,
                seed=(config.seed * 1_000_003
                      + tenant_index * 1_009 + session_index),
            )
            tap_at = arrival
            for kind in plan.kinds:
                if tap_at >= config.duration_s:
                    break
                requests.append(_gesture_request(
                    load.tenant_id, session_key, kind, tap_at, seq,
                    rng, clade_sampler, protein_sampler, config,
                ))
                seq += 1
                if config.think_mean_s > 0:
                    tap_at += rng.expovariate(
                        1.0 / config.think_mean_s)
    return requests


def _gesture_request(tenant_id: str, session_key: str, gesture: str,
                     arrival_s: float, seq: int, rng: random.Random,
                     clade_sampler: ZipfSampler,
                     protein_sampler: ZipfSampler,
                     config: LoadConfig) -> Request:
    """Resolve one Markov gesture kind into a concrete request."""
    if gesture == "query":
        clade = clade_sampler.sample(rng)
        template = rng.choice(_QUERY_TEMPLATES)
        dtql = template.format(
            clade=clade, threshold=round(rng.uniform(5.0, 7.5), 1))
        return Request(tenant=tenant_id, session=session_key,
                       kind="query", target=dtql,
                       arrival_s=arrival_s, seq=seq)
    # Renders (expand / pan) sometimes become details taps: the user
    # drilled down far enough to touch a leaf card.
    if rng.random() < config.details_fraction:
        return Request(tenant=tenant_id, session=session_key,
                       kind="details",
                       target=protein_sampler.sample(rng),
                       arrival_s=arrival_s, seq=seq)
    return Request(tenant=tenant_id, session=session_key,
                   kind="render", target=clade_sampler.sample(rng),
                   arrival_s=arrival_s, seq=seq)
