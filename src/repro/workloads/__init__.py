"""Synthetic datasets, query workloads, and the experiment harness."""

from repro.workloads.datasets import (
    Dataset,
    DatasetConfig,
    build_dataset,
    generate_bindings,
)
from repro.workloads.export import (
    export_dataset,
    load_bindings_csv,
    load_smiles_file,
)
from repro.workloads.families import (
    FAMILY_POOL,
    ORGANISM_POOL,
    ProteinFamily,
    make_family,
    name_internal_clades,
)
from repro.workloads.harness import (
    Measurement,
    TextTable,
    mean,
    percentile,
    speedup,
    time_wall,
)
from repro.workloads.loadgen import (
    LoadConfig,
    TenantLoad,
    ZipfSampler,
    generate_load,
)
from repro.workloads.queries import (
    DEFAULT_MIX,
    QueryGenerator,
    WorkloadConfig,
)

__all__ = [
    "DEFAULT_MIX",
    "FAMILY_POOL",
    "ORGANISM_POOL",
    "Dataset",
    "DatasetConfig",
    "LoadConfig",
    "Measurement",
    "ProteinFamily",
    "QueryGenerator",
    "TenantLoad",
    "TextTable",
    "WorkloadConfig",
    "ZipfSampler",
    "build_dataset",
    "export_dataset",
    "generate_load",
    "load_bindings_csv",
    "load_smiles_file",
    "generate_bindings",
    "make_family",
    "mean",
    "name_internal_clades",
    "percentile",
    "speedup",
    "time_wall",
]
