"""Synthetic protein families with named clades and organisms.

Produces the protein-side inputs the paper's system pulled from public
databases: a species tree whose internal nodes carry stable clade names
(so queries can address them), evolved sequences, and organism/family
assignments with phylogenetic structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bio.seq import ProteinSequence
from repro.bio.simulate import birth_death_tree, evolve_sequences
from repro.bio.tree import PhyloTree
from repro.errors import WorkloadError

#: Binomial species names assigned to leaves, cycled with a numeric
#: suffix when the tree outgrows the list.
ORGANISM_POOL: tuple[str, ...] = (
    "Homo sapiens", "Mus musculus", "Rattus norvegicus",
    "Danio rerio", "Gallus gallus", "Xenopus laevis",
    "Drosophila melanogaster", "Caenorhabditis elegans",
    "Saccharomyces cerevisiae", "Escherichia coli",
    "Bacillus subtilis", "Mycobacterium tuberculosis",
    "Plasmodium falciparum", "Candida albicans", "Arabidopsis thaliana",
    "Bos taurus", "Sus scrofa", "Canis lupus", "Felis catus",
    "Macaca mulatta",
)

#: Enzyme family names assigned to major clades.
FAMILY_POOL: tuple[str, ...] = (
    "DHFR", "TS", "PTP1B", "CDK2", "HSP90", "COX2", "ACHE", "MAOB",
)


@dataclass
class ProteinFamily:
    """One synthetic family: named tree, sequences, per-leaf metadata."""

    tree: PhyloTree
    sequences: list[ProteinSequence]
    organisms: dict[str, str] = field(default_factory=dict)
    families: dict[str, str] = field(default_factory=dict)
    clade_names: list[str] = field(default_factory=list)

    @property
    def protein_ids(self) -> list[str]:
        return self.tree.leaf_names()


def name_internal_clades(tree: PhyloTree, prefix: str = "clade") -> list[str]:
    """Give every unnamed internal node a stable preorder name.

    Returns the assigned names in preorder. Queries use these names in
    ``IN SUBTREE`` clauses; the mobile client uses them as expansion
    handles.
    """
    names: list[str] = []
    counter = 0
    for node in tree.preorder():
        if node.is_leaf:
            continue
        if not node.name:
            node.name = f"{prefix}_{counter:04d}"
        names.append(node.name)
        counter += 1
    return names


def make_family(n_leaves: int,
                seed: int = 0,
                sequence_length: int = 120,
                branch_scale: float = 0.25,
                leaf_prefix: str = "prot") -> ProteinFamily:
    """Simulate one protein family.

    *branch_scale* shrinks the birth–death branch lengths so sequence
    divergence stays informative (0.25 gives ~60-90%% pairwise identity
    for default-size trees).
    """
    if n_leaves < 2:
        raise WorkloadError("a family needs at least two proteins")
    if branch_scale <= 0:
        raise WorkloadError("branch scale must be positive")
    rng = random.Random(seed)
    tree = birth_death_tree(n_leaves, seed=seed, leaf_prefix=leaf_prefix)
    for node in tree.preorder():
        node.branch_length *= branch_scale
    clade_names = name_internal_clades(tree)
    sequences = evolve_sequences(tree, length=sequence_length,
                                 seed=seed + 1)

    organisms: dict[str, str] = {}
    for position, leaf in enumerate(tree.leaf_names()):
        base = ORGANISM_POOL[position % len(ORGANISM_POOL)]
        cycle = position // len(ORGANISM_POOL)
        organisms[leaf] = base if cycle == 0 else f"{base} str.{cycle}"

    families = _assign_families(tree, rng)
    return ProteinFamily(
        tree=tree,
        sequences=sequences,
        organisms=organisms,
        families=families,
        clade_names=clade_names,
    )


def _assign_families(tree: PhyloTree,
                     rng: random.Random) -> dict[str, str]:
    """Assign an enzyme family to each top-level clade's leaves."""
    assignments: dict[str, str] = {}
    top_clades = tree.root.children if not tree.root.is_leaf else []
    pool = list(FAMILY_POOL)
    rng.shuffle(pool)
    for position, clade in enumerate(top_clades):
        family = pool[position % len(pool)]
        for leaf in clade.leaves():
            assignments[leaf.name] = family
    for leaf in tree.leaves():
        assignments.setdefault(leaf.name, pool[0])
    return assignments
