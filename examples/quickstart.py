"""Quickstart: build a DrugTree and query it.

Builds a synthetic world (protein family + ligand library + simulated
remote sources), integrates it into a DrugTree, and walks through the
query API: DTQL text queries, clade aggregates, the semantic cache, and
EXPLAIN output.

Run with::

    python examples/quickstart.py
"""

from repro import DatasetConfig, NaiveEngine, QueryEngine, build_dataset


def main() -> None:
    # 1. A simulated world: 40-protein family, 80-compound library,
    #    three remote sources behind a federation registry.
    dataset = build_dataset(DatasetConfig(n_leaves=40, n_ligands=80,
                                          seed=42))
    print(f"tree: {dataset.tree.leaf_count} proteins, "
          f"{len(dataset.ligands)} ligands, "
          f"{len(dataset.bindings)} binding records")

    # 2. Integrate the federation into a local DrugTree overlay.
    drugtree, report = dataset.integrate()
    print(f"integration: {report.roundtrips} round-trips, "
          f"{report.virtual_latency_s:.2f}s simulated remote latency")
    print(drugtree)

    # 3. The optimized engine answers DTQL text queries.
    engine = QueryEngine(drugtree)
    clade = dataset.family.clade_names[1]

    result = engine.execute(
        f"SELECT count(*), mean(p_affinity), max(p_affinity) "
        f"IN SUBTREE '{clade}'"
    )
    print(f"\nclade {clade}: {result.rows[0]}")

    result = engine.execute(
        "SELECT ligand_id, protein_id, p_affinity FROM bindings "
        f"WHERE p_affinity >= 7.5 IN SUBTREE '{clade}' "
        "ORDER BY p_affinity DESC LIMIT 5"
    )
    print(f"\ntop binders in {clade}:")
    for row in result.rows:
        print(f"  {row['ligand_id']} -> {row['protein_id']} "
              f"(pAff {row['p_affinity']:.2f})")

    # 4. Re-running a query hits the semantic cache...
    repeat = engine.execute(
        f"SELECT count(*), mean(p_affinity), max(p_affinity) "
        f"IN SUBTREE '{clade}'"
    )
    print(f"\nrepeat query served from cache: {repeat.cache_outcome}")

    # ...and a *narrower* query is answered from a broader cached result.
    engine.execute("SELECT * FROM bindings WHERE p_affinity >= 6.0")
    narrowed = engine.execute(
        "SELECT * FROM bindings WHERE p_affinity >= 8.0"
    )
    print(f"narrower query served by subsumption: "
          f"{narrowed.cache_outcome} ({len(narrowed.rows)} rows)")

    # 5. EXPLAIN shows what the optimizer chose.
    print("\nEXPLAIN SELECT * FROM bindings "
          f"WHERE p_affinity >= 7.5 IN SUBTREE '{clade}':")
    print(engine.explain(
        "SELECT * FROM bindings WHERE p_affinity >= 7.5 "
        f"IN SUBTREE '{clade}'"
    ))

    # 6. The naive engine answers the same query straight from the
    #    remote sources — correct, but at federation prices.
    naive = NaiveEngine(dataset.tree, dataset.registry)
    slow = naive.execute(
        f"SELECT count(*), mean(p_affinity), max(p_affinity) "
        f"IN SUBTREE '{clade}'"
    )
    print(f"\nnaive engine, same answer: {slow.rows[0]}")
    print(f"naive cost: {slow.roundtrips} round-trips, "
          f"{slow.virtual_latency_s:.2f}s simulated latency "
          f"(optimized engine: 0 round-trips)")


if __name__ == "__main__":
    main()
