"""Mobile field session: the same navigation on five networks.

Replays an identical gesture session (drill-downs, pans, clade queries)
against the DrugTree server over each 2013-era network profile, with
the mobile optimizations on and off — showing why level-of-detail
rendering plus delta encoding is what makes the tree usable on a phone.

Run with::

    python examples/mobile_field_session.py
"""

from repro import DatasetConfig, build_dataset
from repro.mobile import (
    DrugTreeServer,
    MobileClient,
    NetworkLink,
    ServerConfig,
    get_profile,
    plan_session,
    replay_session,
)
from repro.workloads import TextTable, mean, percentile


def run_session(dataset, drugtree, profile_name, config):
    server = DrugTreeServer(drugtree, config)
    link = NetworkLink(get_profile(profile_name), dataset.clock, seed=3)
    client = MobileClient(server, link)
    session = plan_session(steps=20, seed=11)
    replay_session(client, session, dataset.family.clade_names)
    latencies = client.latencies()
    return {
        "mean_s": mean(latencies),
        "p95_s": percentile(latencies, 0.95),
        "kb_down": client.total_bytes_down / 1024.0,
    }


def main() -> None:
    dataset = build_dataset(DatasetConfig(n_leaves=120, n_ligands=200,
                                          seed=19))
    drugtree = dataset.drugtree()
    print(f"serving {drugtree} to a simulated phone\n")

    optimized = ServerConfig(use_lod=True, use_delta=True)
    baseline = ServerConfig(use_lod=False, use_delta=False)

    table = TextTable(
        ["network", "protocol", "mean latency s", "p95 latency s",
         "KB downloaded"],
        title="20-gesture session (open + expands + pans + queries)",
    )
    for profile_name in ("edge", "3g", "hspa", "lte", "wifi"):
        for label, config in (("LOD+delta", optimized),
                              ("full tree", baseline)):
            stats = run_session(dataset, drugtree, profile_name, config)
            table.add_row(profile_name, label, stats["mean_s"],
                          stats["p95_s"], stats["kb_down"])
    print(table.render())

    print(
        "\nreading: with the full-tree protocol the user waits for the "
        "whole\ntree on every gesture, so latency tracks tree size and "
        "network speed;\nwith LOD+delta the payload tracks the "
        "*viewport*, so even EDGE stays\ninteractive."
    )


if __name__ == "__main__":
    main()
