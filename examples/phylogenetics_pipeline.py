"""The protein-motivated pipeline: from raw sequences to DrugTree.

The other examples start from a known tree; this one does what the
original system had to do — infer the phylogeny from the federation's
own sequence data, judge its reliability, and only then hang the ligand
overlay on it:

1. pull sequences from the (simulated) structure source;
2. infer a neighbor-joining tree with midpoint rooting;
3. bootstrap the alignment and build a majority-rule consensus to see
   which clades are trustworthy;
4. find where a *novel* sequence belongs via k-mer search;
5. integrate the overlay onto the inferred tree and query it.

Run with::

    python examples/phylogenetics_pipeline.py
"""

from repro import DatasetConfig, QueryEngine, build_dataset
from repro.bio import (
    KmerIndex,
    ProteinSequence,
    ascii_tree,
    bootstrap_support,
    distance_matrix_from_msa,
    majority_rule_consensus,
    neighbor_joining,
    progressive_align,
)
from repro.bio.bootstrap import resample_alignment
from repro.core import IntegrationPipeline


def main() -> None:
    dataset = build_dataset(DatasetConfig(n_leaves=14, n_ligands=30,
                                          seed=27))
    pipeline = IntegrationPipeline(dataset.registry)

    # -- 1+2. sequences -> distances -> rooted NJ tree ----------------------
    tree = pipeline.build_tree_from_sources(method="nj")
    print(f"inferred tree: {tree.leaf_count} proteins, "
          f"RF distance to the (hidden) true tree = "
          f"{tree.robinson_foulds(dataset.tree)}")

    # -- 3. bootstrap + consensus -------------------------------------------
    entries = dataset.protein_source.get_entries(tree.leaf_names())
    sequences = [entries[name].to_sequence()
                 for name in tree.leaf_names()]
    alignment = progressive_align(sequences)
    support = bootstrap_support(tree, alignment, replicates=25, seed=1)
    solid = sum(1 for value in support.values() if value >= 0.7)
    print(f"bootstrap: {solid}/{len(support)} splits at >=70% support")

    replicates = []
    import random
    rng = random.Random(2)
    for _ in range(15):
        draw = resample_alignment(alignment, rng)
        matrix = distance_matrix_from_msa(draw.names, draw.rows,
                                          correction="p")
        replicates.append(neighbor_joining(matrix))
    consensus = majority_rule_consensus(
        [tree.reroot_at_midpoint() for tree in replicates]
    )
    print("\nmajority-rule consensus of 15 bootstrap trees "
          "(internal labels = % support):")
    print(ascii_tree(consensus, max_depth=3))

    # -- 4. placing a novel sequence ----------------------------------------
    index = KmerIndex(k=3)
    index.add_many(sequences)
    template = sequences[4]
    mutated = list(template.residues)
    for position in range(0, len(mutated), 11):
        mutated[position] = "A" if mutated[position] != "A" else "S"
    novel = ProteinSequence("novel_enzyme", "".join(mutated))
    hits = index.search(novel, top_k=3)
    print("\nk-mer search for a novel enzyme:")
    for hit in hits:
        print(f"  {hit.seq_id}: SW score {hit.score}, "
              f"identity {hit.identity:.0%}, "
              f"{hit.shared_kmers} shared 3-mers")

    # -- 5. overlay + query on the inferred tree ----------------------------
    drugtree, report = pipeline.build_drugtree(tree)
    engine = QueryEngine(drugtree)
    home_clade = next(
        node.name for node in tree.preorder()
        if node.name and not node.is_leaf
        and hits[0].seq_id in {leaf.name for leaf in node.leaves()}
        and node.leaf_count() <= 4
    )
    result = engine.execute(
        "SELECT ligand_id, protein_id, p_affinity FROM bindings "
        f"WHERE potent = true IN SUBTREE '{home_clade}' "
        "ORDER BY p_affinity DESC LIMIT 5"
    )
    print(f"\npotent chemical matter near the novel enzyme's home "
          f"clade ({home_clade}):")
    for row in result.rows:
        print(f"  {row['ligand_id']} -> {row['protein_id']} "
              f"(pAff {row['p_affinity']:.2f})")


if __name__ == "__main__":
    main()
