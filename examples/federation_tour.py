"""Federation tour: where the lag comes from, and the standard fixes.

Walks through the multi-source layer the paper's abstract describes —
"data is being obtained from multiple sources, integrated and then
presented to the user" — and shows each optimization working:

1. per-item vs batched integration (round-trips are the cost),
2. a caching wrapper absorbing repeated lookups,
3. a prefetching wrapper exploiting tree locality,
4. a retrying wrapper riding out transient source failures.

Run with::

    python examples/federation_tour.py
"""

from repro import DatasetConfig, build_dataset
from repro.sources import (
    KIND_PROTEIN,
    CachingSource,
    FaultModel,
    LatencyModel,
    PrefetchingSource,
    ProteinStructureSource,
    RetryingSource,
    SimulatedClock,
)
from repro.workloads import TextTable


def integration_modes(seed: int) -> None:
    table = TextTable(
        ["mode", "round-trips", "simulated latency s"],
        title="1. integrating a 50-leaf family from three sources",
    )
    for mode in ("per_item", "batched"):
        dataset = build_dataset(DatasetConfig(n_leaves=50, n_ligands=80,
                                              seed=seed))
        _, report = dataset.integrate(mode=mode)
        table.add_row(mode, report.roundtrips, report.virtual_latency_s)
    print(table.render())


def caching_demo(dataset) -> None:
    source = dataset.protein_source
    cached = CachingSource(source, capacity=1000)
    protein_ids = dataset.family.protein_ids[:10]
    clock = dataset.clock

    t0 = clock.now()
    for protein_id in protein_ids * 3:  # a hot working set, re-read
        cached.fetch(KIND_PROTEIN, protein_id)
    elapsed = clock.now() - t0
    print(f"\n2. caching wrapper: 30 lookups over 10 hot proteins -> "
          f"{cached.misses} remote fetches, hit rate "
          f"{cached.hit_rate:.0%}, {elapsed:.2f}s simulated")


def prefetching_demo(dataset) -> None:
    drugtree = dataset.drugtree()
    labeling = drugtree.labeling

    def neighbours(kind: str, key: str) -> list[str]:
        # A user reading one leaf usually reads its tree neighbours next.
        if kind != KIND_PROTEIN:
            return []
        try:
            return labeling.sibling_leaves(key, window=3)
        except Exception:
            return []

    prefetching = PrefetchingSource(dataset.protein_source, neighbours)
    walk = drugtree.tree.leaf_names()[:12]  # a left-to-right browse
    before = dataset.protein_source.stats.roundtrips
    for protein_id in walk:
        prefetching.fetch(KIND_PROTEIN, protein_id)
    roundtrips = dataset.protein_source.stats.roundtrips - before
    print(f"\n3. prefetching wrapper: browsing 12 adjacent leaves cost "
          f"{roundtrips} round-trips "
          f"({prefetching.prefetched_keys} keys pulled ahead, "
          f"hit rate {prefetching.hit_rate:.0%})")


def retry_demo() -> None:
    clock = SimulatedClock()
    flaky = ProteinStructureSource(
        clock,
        entries=[],
        latency=LatencyModel(base_s=0.05, jitter_fraction=0.0),
        faults=FaultModel(failure_rate=0.4, seed=1),
    )
    retrying = RetryingSource(flaky, max_attempts=5, backoff_s=0.1)
    failures = 0
    for i in range(20):
        try:
            retrying.fetch(KIND_PROTEIN, f"p{i}")
        except Exception:
            failures += 1
    print(f"\n4. retrying wrapper over a 40%-flaky source: "
          f"{retrying.retries} retries absorbed, "
          f"{failures}/20 requests ultimately failed")


def main() -> None:
    integration_modes(seed=31)
    dataset = build_dataset(DatasetConfig(n_leaves=50, n_ligands=80,
                                          seed=31))
    caching_demo(dataset)
    prefetching_demo(dataset)
    retry_demo()


if __name__ == "__main__":
    main()
