"""Drug-discovery screen: the workload the paper's intro motivates.

A medicinal chemist has one promising compound and asks the questions
DrugTree was built for:

1. *Phylogenetic selectivity* — which clades of the protein family does
   my compound hit, and which does it spare? (Off-target risk lives in
   the clades you didn't assay.)
2. *Analog hunting* — which library compounds are structurally similar
   to my hit, and how do their potencies compare?
3. *Clade-focused triage* — inside the most druggable clade, which
   proteins have potent, drug-like chemical matter?
4. *Scaffold hopping* — which potent binders share the hit's core
   scaffold (substructure search), and which clades do the group-level
   statistics say are worth assaying next (GROUP BY ... HAVING)?

Run with::

    python examples/drug_discovery_screen.py
"""

from repro import DatasetConfig, QueryEngine, build_dataset
from repro.workloads import TextTable


def pick_hit(dataset):
    """The most-assayed ligand makes a realistic 'hit' to start from."""
    counts: dict[str, int] = {}
    for record in dataset.bindings:
        counts[record.ligand_id] = counts.get(record.ligand_id, 0) + 1
    hit_id = max(counts, key=counts.get)
    return next(ligand for ligand in dataset.ligands
                if ligand.ligand_id == hit_id)


def main() -> None:
    dataset = build_dataset(DatasetConfig(n_leaves=60, n_ligands=150,
                                          seed=7))
    drugtree = dataset.drugtree()
    engine = QueryEngine(drugtree)
    hit = pick_hit(dataset)
    print(f"hit compound: {hit.ligand_id}  {hit.smiles}")
    print(f"  MW {hit.descriptors.molecular_weight:.1f}, "
          f"logP {hit.descriptors.logp:.2f}, "
          f"drug-like: {hit.descriptors.is_drug_like}")

    # -- 1. Phylogenetic selectivity profile --------------------------------
    table = TextTable(
        ["clade", "leaves", "hit bindings", "mean pAff", "max pAff"],
        title="\nselectivity profile of the hit across top-level clades",
    )
    top_clades = [child.name for child in drugtree.tree.root.children
                  if child.name and not child.is_leaf]
    for clade in top_clades:
        result = engine.execute(
            "SELECT count(*), mean(p_affinity), max(p_affinity) "
            f"FROM bindings WHERE ligand_id = '{hit.ligand_id}' "
            f"IN SUBTREE '{clade}'"
        )
        row = result.rows[0]
        leaves = drugtree.labeling.label_of(clade).leaf_count
        table.add_row(
            clade, leaves, row["count_all"],
            row["mean_p_affinity"] or 0.0,
            row["max_p_affinity"] or 0.0,
        )
    print(table.render())

    # -- 2. Analog hunting by structural similarity --------------------------
    analogs = engine.execute(
        "SELECT ligand_id, smiles, molecular_weight, logp "
        f"SIMILAR TO '{hit.smiles}' >= 0.55"
    )
    print(f"\n{len(analogs.rows)} library analogs at Tanimoto >= 0.55 "
          f"(prefilter examined {analogs.similarity_candidates} of "
          f"{drugtree.ligand_count} fingerprints)")
    analog_table = TextTable(["ligand", "SMILES", "best pAff anywhere"])
    for row in analogs.rows[:8]:
        best = engine.execute(
            "SELECT max(p_affinity) FROM bindings "
            f"WHERE ligand_id = '{row['ligand_id']}'"
        ).scalar()
        analog_table.add_row(row["ligand_id"], row["smiles"][:34],
                             best or 0.0)
    print(analog_table.render())

    # -- 3. Triage inside the most druggable clade ----------------------------
    druggable = max(
        top_clades,
        key=lambda clade: drugtree.clade_stats(clade)["potent_fraction"],
    )
    print(f"\nmost druggable clade: {druggable} "
          f"(potent fraction "
          f"{drugtree.clade_stats(druggable)['potent_fraction']:.2f})")
    triage = engine.execute(
        "SELECT protein_id, organism, ligand_id, p_affinity "
        "WHERE potent = true AND drug_like = true "
        f"IN SUBTREE '{druggable}' "
        "ORDER BY p_affinity DESC LIMIT 10"
    )
    triage_table = TextTable(
        ["protein", "organism", "ligand", "pAff"],
        title=f"potent drug-like matter inside {druggable}",
    )
    for row in triage.rows:
        triage_table.add_row(row["protein_id"], row["organism"],
                             row["ligand_id"], row["p_affinity"])
    print(triage_table.render())

    # -- 4. Scaffold hopping + organism-level triage --------------------------
    scaffold = "c1ccccc1"  # the aromatic core most series share
    scaffold_hits = engine.execute(
        "SELECT ligand_id, p_affinity FROM bindings, ligands "
        "WHERE potent = true "
        f"CONTAINING '{scaffold}' "
        "ORDER BY p_affinity DESC LIMIT 5"
    )
    print(f"\npotent binders containing the {scaffold} scaffold "
          f"(screen examined {scaffold_hits.substructure_candidates} "
          "molecules):")
    for row in scaffold_hits.rows:
        print(f"  {row['ligand_id']} (pAff {row['p_affinity']:.2f})")

    panel = engine.execute(
        "SELECT organism, count(*), mean(p_affinity) "
        "FROM bindings, proteins GROUP BY organism "
        "HAVING count_all >= 10 AND mean_p_affinity >= 6.5 "
        "ORDER BY mean_p_affinity DESC LIMIT 6"
    )
    panel_table = TextTable(
        ["organism", "assays", "mean pAff"],
        title="\norganisms worth assaying next "
              "(>=10 measurements, mean pAff >= 6.5)",
    )
    for row in panel.rows:
        panel_table.add_row(row["organism"], row["count_all"],
                            row["mean_p_affinity"])
    print(panel_table.render())


if __name__ == "__main__":
    main()
